//! A minimal micro-benchmark harness on `std::time::Instant`.
//!
//! The original Criterion benches were rewritten on this harness so the
//! workspace builds fully offline (see README "Offline builds"). The
//! statistics are deliberately simple: warm up, run a fixed number of
//! timed batches, report the best and median per-iteration time. "Best"
//! is the most robust location estimate for a microbenchmark under noise
//! (it bounds the true cost from above with the least scheduler
//! interference).

use std::hint::black_box;
use std::time::Instant;

/// Re-export so benches write `timing::black_box` (or use `std::hint`).
pub use std::hint::black_box as bb;

/// One measured benchmark result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Iterations per timed batch.
    pub batch_iters: u64,
    /// Best observed nanoseconds per iteration.
    pub best_ns: f64,
    /// Median observed nanoseconds per iteration.
    pub median_ns: f64,
}

impl Measurement {
    fn throughput(&self) -> String {
        if self.best_ns <= 0.0 {
            return "-".into();
        }
        let per_sec = 1e9 / self.best_ns;
        if per_sec >= 1e6 {
            format!("{:.1}M/s", per_sec / 1e6)
        } else if per_sec >= 1e3 {
            format!("{:.1}K/s", per_sec / 1e3)
        } else {
            format!("{per_sec:.1}/s")
        }
    }
}

/// A group of related benchmarks, printed as one table section.
#[derive(Debug)]
pub struct Group {
    name: String,
    batches: u32,
}

impl Group {
    /// Creates a named group with default settings (15 timed batches).
    pub fn new(name: &str) -> Self {
        println!("\n== {name} ==");
        println!(
            "{:<36} {:>12} {:>12} {:>10}",
            "benchmark", "best", "median", "thrpt"
        );
        Self {
            name: name.to_string(),
            batches: 15,
        }
    }

    /// Lowers the batch count for long-running benchmarks.
    pub fn slow(mut self) -> Self {
        self.batches = 5;
        self
    }

    /// The group name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Times `f`, auto-calibrating the batch size to ~20ms, and prints one
    /// table row. Returns the measurement for programmatic use.
    pub fn bench<T, F: FnMut() -> T>(&self, label: &str, mut f: F) -> Measurement {
        // Calibrate: grow the batch until it takes long enough to time.
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed.as_millis() >= 20 || iters >= 1 << 30 {
                break;
            }
            // Aim straight for ~25ms based on the observed rate.
            let per_iter = elapsed.as_nanos().max(1) as f64 / iters as f64;
            let target = (25e6 / per_iter).ceil() as u64;
            iters = target.clamp(iters * 2, 1 << 30);
        }

        let mut samples: Vec<f64> = (0..self.batches)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                t.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        let m = Measurement {
            batch_iters: iters,
            best_ns: samples[0],
            median_ns: samples[samples.len() / 2],
        };
        println!(
            "{:<36} {:>12} {:>12} {:>10}",
            label,
            fmt_ns(m.best_ns),
            fmt_ns(m.median_ns),
            m.throughput()
        );
        m
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let g = Group::new("test");
        let m = g.bench("noop_sum", || (0..100u64).sum::<u64>());
        assert!(m.best_ns > 0.0);
        assert!(m.median_ns >= m.best_ns);
        assert!(m.batch_iters >= 1);
    }

    #[test]
    fn formats() {
        assert_eq!(fmt_ns(12.34), "12.3 ns");
        assert_eq!(fmt_ns(12_340.0), "12.34 µs");
        assert_eq!(fmt_ns(12_340_000.0), "12.34 ms");
    }
}
