//! A minimal micro-benchmark harness on `std::time::Instant`, plus the
//! unified machine-readable run-report pipeline ([`Report`]).
//!
//! The original Criterion benches were rewritten on this harness so the
//! workspace builds fully offline (see README "Offline builds"). The
//! statistics are deliberately simple: warm up, run a fixed number of
//! timed batches, report the best and median per-iteration time. "Best"
//! is the most robust location estimate for a microbenchmark under noise
//! (it bounds the true cost from above with the least scheduler
//! interference).
//!
//! The report half centralizes what each binary used to hand-roll: the
//! `[engine]` throughput footer ([`engine_footer`]) and JSON rendering.
//! Every JSON artifact the binaries write — `BENCH_*.json` trajectories,
//! `results/fig*.json` sidecars, `xedstat --telemetry` output — shares
//! the `xed-report-v1` envelope (schema documented on [`Report`]).

use std::fmt::Write as _;
use std::hint::black_box;
use std::path::Path;
use std::time::Instant;
use xed_faultsim::montecarlo::{RunStats, SchemeResult};
use xed_telemetry::export::json_string;

/// Re-export so benches write `timing::black_box` (or use `std::hint`).
pub use std::hint::black_box as bb;

/// One measured benchmark result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Iterations per timed batch.
    pub batch_iters: u64,
    /// Best observed nanoseconds per iteration.
    pub best_ns: f64,
    /// Median observed nanoseconds per iteration.
    pub median_ns: f64,
}

impl Measurement {
    fn throughput(&self) -> String {
        if self.best_ns <= 0.0 {
            return "-".into();
        }
        let per_sec = 1e9 / self.best_ns;
        if per_sec >= 1e6 {
            format!("{:.1}M/s", per_sec / 1e6)
        } else if per_sec >= 1e3 {
            format!("{:.1}K/s", per_sec / 1e3)
        } else {
            format!("{per_sec:.1}/s")
        }
    }
}

/// A group of related benchmarks, printed as one table section.
#[derive(Debug)]
pub struct Group {
    name: String,
    batches: u32,
}

impl Group {
    /// Creates a named group with default settings (15 timed batches).
    pub fn new(name: &str) -> Self {
        println!("\n== {name} ==");
        println!(
            "{:<36} {:>12} {:>12} {:>10}",
            "benchmark", "best", "median", "thrpt"
        );
        Self {
            name: name.to_string(),
            batches: 15,
        }
    }

    /// Lowers the batch count for long-running benchmarks.
    pub fn slow(mut self) -> Self {
        self.batches = 5;
        self
    }

    /// The group name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Times `f`, auto-calibrating the batch size to ~20ms, and prints one
    /// table row. Returns the measurement for programmatic use.
    pub fn bench<T, F: FnMut() -> T>(&self, label: &str, mut f: F) -> Measurement {
        // Calibrate: grow the batch until it takes long enough to time.
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed.as_millis() >= 20 || iters >= 1 << 30 {
                break;
            }
            // Aim straight for ~25ms based on the observed rate.
            let per_iter = elapsed.as_nanos().max(1) as f64 / iters as f64;
            let target = (25e6 / per_iter).ceil() as u64;
            iters = target.clamp(iters * 2, 1 << 30);
        }

        let mut samples: Vec<f64> = (0..self.batches)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                t.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        let m = Measurement {
            batch_iters: iters,
            best_ns: samples[0],
            median_ns: samples[samples.len() / 2],
        };
        println!(
            "{:<36} {:>12} {:>12} {:>10}",
            label,
            fmt_ns(m.best_ns),
            fmt_ns(m.median_ns),
            m.throughput()
        );
        m
    }
}

/// A JSON value in a [`Report`] (hand-rendered; the workspace carries no
/// serialization dependency by design).
#[derive(Debug, Clone, PartialEq)]
pub enum J {
    /// Unsigned integer.
    U(u64),
    /// Float; non-finite values render as `null`.
    F(f64),
    /// String (escaped on render).
    S(String),
    /// Boolean.
    B(bool),
    /// Pre-rendered JSON fragment, embedded verbatim (e.g. a nested
    /// array from [`xed_telemetry::Snapshot::active_to_json_array`]).
    Raw(String),
}

impl J {
    fn render(&self) -> String {
        match self {
            J::U(v) => v.to_string(),
            J::F(v) if v.is_finite() => format!("{v}"),
            J::F(_) => "null".to_string(),
            J::S(s) => json_string(s),
            J::B(b) => b.to_string(),
            J::Raw(s) => s.clone(),
        }
    }
}

/// Builder for the workspace's machine-readable run reports
/// (`xed-report-v1`, documented in DESIGN.md §11):
///
/// ```json
/// {
///   "schema": "xed-report-v1",
///   "report": "<binary name>",
///   "params": { "samples": 2000000, "seed": 2016, ... },
///   "series": [ { ...one row per reported data point... } ],
///   "engine": { ...Monte-Carlo RunStats, when one backed the report... },
///   "telemetry": [ ...active registry metrics at render time... ]
/// }
/// ```
///
/// `params` holds the run's inputs, `series` its report-specific outputs
/// (one object per scheme/point/system), `engine` the wall-clock footer
/// data, and `telemetry` the active [`xed_telemetry::registry`] samples —
/// the same objects `Snapshot::to_json_lines` emits.
#[derive(Debug, Default)]
pub struct Report {
    name: String,
    params: Vec<(String, J)>,
    series: Vec<String>,
    engine: Option<String>,
}

impl Report {
    /// Starts a report named after the producing binary.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            ..Self::default()
        }
    }

    /// Records one run parameter.
    pub fn param(&mut self, key: &str, value: J) -> &mut Self {
        self.params.push((key.to_string(), value));
        self
    }

    /// Appends one series row (field order is preserved).
    pub fn row(&mut self, fields: &[(&str, J)]) -> &mut Self {
        let mut obj = String::from("{");
        for (i, (k, v)) in fields.iter().enumerate() {
            if i > 0 {
                obj.push_str(", ");
            }
            let _ = write!(obj, "{}: {}", json_string(k), v.render());
        }
        obj.push('}');
        self.series.push(obj);
        self
    }

    /// Attaches the Monte-Carlo engine stats (the JSON twin of the text
    /// [`engine_footer`]).
    pub fn engine(&mut self, stats: &RunStats) -> &mut Self {
        self.engine = Some(format!(
            "{{\"samples\": {}, \"threads\": {}, \"wall_seconds\": {:.6}, \
             \"samples_per_sec\": {:.0}, \"zero_fault_samples\": {}}}",
            stats.samples,
            stats.threads,
            stats.wall_seconds,
            stats.samples_per_sec,
            stats.zero_fault_samples
        ));
        self
    }

    /// Renders the `xed-report-v1` envelope, embedding the active
    /// telemetry metrics captured at this moment.
    pub fn render(&self) -> String {
        let mut j = String::from("{\n");
        let _ = writeln!(j, "  \"schema\": \"xed-report-v1\",");
        let _ = writeln!(j, "  \"report\": {},", json_string(&self.name));
        j.push_str("  \"params\": {");
        for (i, (k, v)) in self.params.iter().enumerate() {
            if i > 0 {
                j.push_str(", ");
            }
            let _ = write!(j, "{}: {}", json_string(k), v.render());
        }
        j.push_str("},\n");
        j.push_str("  \"series\": [\n");
        for (i, row) in self.series.iter().enumerate() {
            let comma = if i + 1 < self.series.len() { "," } else { "" };
            let _ = writeln!(j, "    {row}{comma}");
        }
        j.push_str("  ],\n");
        if let Some(engine) = &self.engine {
            let _ = writeln!(j, "  \"engine\": {engine},");
        }
        let _ = writeln!(
            j,
            "  \"telemetry\": {}",
            xed_telemetry::snapshot().active_to_json_array()
        );
        j.push_str("}\n");
        j
    }

    /// Renders and writes the report, creating parent directories.
    ///
    /// # Panics
    ///
    /// Panics with the path on any I/O error (reports are produced by
    /// binaries, where aborting with context is the right behavior).
    pub fn write(&self, path: impl AsRef<Path>) {
        let path = path.as_ref();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)
                    .unwrap_or_else(|e| panic!("creating {}: {e}", dir.display()));
            }
        }
        std::fs::write(path, self.render())
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        println!("wrote {}", path.display());
    }
}

/// Writes the JSON sidecar shared by the reliability figures
/// (`results/figNN.json` next to the checked-in `figNN.txt`): one series
/// row per scheme with the 7-year failure probability, the raw DUE/SDC
/// tallies, and the cumulative year-1..7 failure curve, plus the engine
/// stats and active telemetry of the run that produced them.
pub fn write_reliability_sidecar(
    name: &str,
    out: &str,
    samples: u64,
    seed: u64,
    labels: &[String],
    results: &[SchemeResult],
    stats: &RunStats,
) {
    let mut report = Report::new(name);
    report
        .param("samples", J::U(samples))
        .param("seed", J::U(seed));
    for (label, r) in labels.iter().zip(results) {
        let curve: Vec<String> = r.curve().iter().map(|&p| J::F(p).render()).collect();
        // Binomial confidence half-widths on the lifetime probability; the
        // relative width (ci95 / p) is the per-scheme precision figure the
        // rare-event engine is benchmarked against (renders null when no
        // failure was observed).
        let p = r.lifetime_failure_probability();
        let rel = if p > 0.0 {
            J::F(r.confidence95() / p)
        } else {
            J::F(f64::INFINITY)
        };
        report.row(&[
            ("scheme", J::S(label.clone())),
            ("p_fail_7y", J::F(r.failure_probability(7.0))),
            ("due", J::U(r.due)),
            ("sdc", J::U(r.sdc)),
            ("ci95", J::F(r.confidence95())),
            ("ci99", J::F(r.confidence99())),
            ("relative_ci95", rel),
            ("curve", J::Raw(format!("[{}]", curve.join(",")))),
        ]);
    }
    report.engine(stats);
    report.write(out);
}

/// Formats the engine-throughput footer shared by the Monte-Carlo
/// binaries: wall time and samples/sec for the invocation that produced
/// the figures above it (the simulated results themselves are
/// thread-count-invariant; see `xed_faultsim::montecarlo`).
pub fn engine_footer(stats: &RunStats) -> String {
    format!(
        "\n[engine] {:.3e} samples/sec — {} samples in {:.2} s on {} thread(s), \
         {:.1}% zero-fault fast path",
        stats.samples_per_sec,
        stats.samples,
        stats.wall_seconds,
        stats.threads,
        100.0 * stats.zero_fault_samples as f64 / stats.samples as f64
    )
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let g = Group::new("test");
        let m = g.bench("noop_sum", || (0..100u64).sum::<u64>());
        assert!(m.best_ns > 0.0);
        assert!(m.median_ns >= m.best_ns);
        assert!(m.batch_iters >= 1);
    }

    #[test]
    fn formats() {
        assert_eq!(fmt_ns(12.34), "12.3 ns");
        assert_eq!(fmt_ns(12_340.0), "12.34 µs");
        assert_eq!(fmt_ns(12_340_000.0), "12.34 ms");
    }

    #[test]
    fn report_envelope_shape() {
        let mut r = Report::new("unit_test");
        r.param("samples", J::U(42))
            .param("label", J::S("a \"quoted\" name".into()))
            .row(&[("scheme", J::S("Xed".into())), ("p", J::F(1.5e-7))])
            .row(&[("ok", J::B(true)), ("nested", J::Raw("[1,2]".into()))]);
        let json = r.render();
        assert!(json.starts_with("{\n  \"schema\": \"xed-report-v1\",\n"));
        assert!(json.contains("\"report\": \"unit_test\""));
        assert!(json.contains("\"samples\": 42"));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"p\": 0.00000015"));
        assert!(json.contains("\"nested\": [1,2]"));
        assert!(json.contains("\"telemetry\": ["));
        assert!(!json.contains("\"engine\""), "no engine stats attached");
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(J::F(f64::NAN).render(), "null");
        assert_eq!(J::F(f64::INFINITY).render(), "null");
        assert_eq!(J::F(0.25).render(), "0.25");
    }

    #[test]
    fn engine_footer_formats() {
        let stats = RunStats {
            samples: 1000,
            zero_fault_samples: 900,
            wall_seconds: 0.5,
            samples_per_sec: 2000.0,
            threads: 4,
        };
        let footer = engine_footer(&stats);
        assert!(footer.contains("samples/sec"));
        assert!(footer.contains("1000 samples"));
        assert!(footer.contains("4 thread(s)"));
        assert!(footer.contains("90.0% zero-fault"));
    }
}
