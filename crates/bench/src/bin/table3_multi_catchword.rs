//! Table III: likelihood of receiving multiple catch-words in one access,
//! as a function of the scaling-fault rate.
//!
//! Paper result: 2×10⁻⁵ at rate 10⁻⁴, falling quadratically (2×10⁻⁷ at
//! 10⁻⁵, 2×10⁻⁹ at 10⁻⁶) — rare enough that serial-mode overhead is
//! negligible ("once every 200K accesses").
//!
//! `cargo run --release -p xed-bench --bin table3_multi_catchword`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xed_bench::{rule, sci, Options};
use xed_faultsim::scaling::ScalingFaults;

fn main() {
    let opts = Options::from_args();
    println!("Table III: likelihood of multiple catch-words per access\n");
    println!(
        "{:>14} {:>22} {:>22} {:>16}",
        "scaling rate", "analytic P(>=2 CW)", "Monte-Carlo", "paper"
    );
    rule(80);
    let paper = ["2e-5", "2e-7", "2e-9"];
    for (i, rate) in [1e-4, 1e-5, 1e-6].into_iter().enumerate() {
        let scaling = ScalingFaults::with_rate(rate);
        let analytic = scaling.p_multi_catch_word(8, 2);
        let mc = monte_carlo(&scaling, opts.trials.max(2_000_000), opts.seed);
        println!(
            "{:>14e} {:>22} {:>22} {:>16}",
            rate,
            sci(analytic),
            sci(mc),
            paper[i]
        );
    }
    rule(80);
    println!(
        "\nModel note: we treat each of the 8 data chips' 64-bit words as independently\n\
         scaling-faulty with p = 1-(1-r)^64 (= {:.2e} at r = 1e-4), giving C(8,2)p^2 ~ 1.1e-3;\n\
         the paper's 2e-5 corresponds to a smaller per-access trigger probability\n\
         (~8r per chip). The quadratic scaling in r — the property that makes serial\n\
         mode rare — reproduces exactly. See EXPERIMENTS.md.",
        ScalingFaults::paper_default().p_word_faulty()
    );
}

/// Direct Monte-Carlo: sample 8 chips' words for scaling faults and count
/// accesses with ≥ 2 faulty words.
fn monte_carlo(scaling: &ScalingFaults, trials: u64, seed: u64) -> f64 {
    let p = scaling.p_word_faulty();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut multi = 0u64;
    for _ in 0..trials {
        let mut faulty = 0;
        for _ in 0..8 {
            if rng.gen::<f64>() < p {
                faulty += 1;
                if faulty == 2 {
                    multi += 1;
                    break;
                }
            }
        }
    }
    multi as f64 / trials as f64
}
