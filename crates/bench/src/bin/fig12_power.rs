//! Figure 12: normalized memory power (vs the SECDED ECC-DIMM baseline)
//! for XED, Chipkill, XED-on-Chipkill and Double-Chipkill.
//!
//! Paper result: XED ≈ 1.00; Chipkill ≈ 0.92 (its longer execution time
//! spreads the energy); XED-on-Chipkill ≈ 0.92; Double-Chipkill ≈ 1.084
//! (36 activated chips overwhelm the time-stretching effect).
//!
//! `cargo run --release -p xed-bench --bin fig12_power`

use xed_bench::{Options, Report, J};
use xed_memsim::overlay::ReliabilityScheme;
use xed_memsim::sim::{SimConfig, SimResult, Simulation};
use xed_memsim::workloads::{geometric_mean, ALL};

fn main() {
    let opts = Options::from_args();
    let schemes = ReliabilityScheme::figure11_set();

    println!(
        "Figure 12: normalized memory power (8 cores x {} instructions, DDR3-1600)\n",
        opts.instructions
    );
    print!("{:12}", "benchmark");
    for s in &schemes[1..] {
        print!(" {:>12}", s.name.split(' ').next().unwrap());
    }
    println!();

    let mut report = Report::new("fig12_power");
    report
        .param("instructions", J::U(opts.instructions))
        .param("seed", J::U(opts.seed))
        .param("baseline", J::S(schemes[0].name.to_string()));

    let mut per_scheme: Vec<Vec<f64>> = vec![Vec::new(); schemes.len() - 1];
    let mut suite = None;
    for w in ALL {
        if suite != Some(w.suite) {
            suite = Some(w.suite);
            println!("--- {} ---", w.suite.label());
        }
        let base = run(w.name, schemes[0], opts.instructions, opts.seed).power_mw();
        print!("{:12}", w.name);
        let mut row: Vec<(&str, J)> = vec![("benchmark", J::S(w.name.to_string()))];
        for (i, s) in schemes[1..].iter().enumerate() {
            let r = run(w.name, *s, opts.instructions, opts.seed);
            let ratio = r.power_mw() / base;
            per_scheme[i].push(ratio);
            print!(" {:>12.3}", ratio);
            row.push((s.name.split(' ').next().unwrap(), J::F(ratio)));
        }
        report.row(&row);
        println!();
    }

    let mut gmean_row: Vec<(&str, J)> = vec![("benchmark", J::S("Gmean".to_string()))];
    print!("{:12}", "Gmean");
    for (i, ratios) in per_scheme.iter().enumerate() {
        let g = geometric_mean(ratios.iter().copied());
        print!(" {g:>12.3}");
        gmean_row.push((schemes[1 + i].name.split(' ').next().unwrap(), J::F(g)));
    }
    report.row(&gmean_row);
    println!(
        "\n\npaper Gmeans: XED 1.00, Chipkill 0.92, XED+Chipkill 0.92, Double-Chipkill 1.084\n\
         (our Chipkill lands above 1.0 because we charge ganged x8 accesses their physical\n\
         2x activation + overfetch transfer energy; see EXPERIMENTS.md)"
    );
    report.write("results/fig12.json");
}

fn run(name: &str, scheme: ReliabilityScheme, instructions: u64, seed: u64) -> SimResult {
    Simulation::new(SimConfig {
        workload: xed_memsim::workloads::Workload::by_name(name).unwrap(),
        scheme,
        instructions_per_core: instructions,
        seed,
        ..Default::default()
    })
    .run()
}
