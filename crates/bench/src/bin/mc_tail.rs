//! `mc_tail`: rare-event tail-probability benchmark (DESIGN.md §14).
//!
//! Compares the importance-sampled rare-event engine
//! ([`xed_faultsim::rareevent`]) against plain Monte-Carlo **at fixed
//! wall-clock** on the Chipkill-class schemes, whose lifetime failure
//! probabilities (10⁻⁶ … 10⁻⁸) sit far below what unweighted trials can
//! resolve. For each scheme:
//!
//! 1. run the tail estimator for `--samples` conditioned trials (timed);
//! 2. measure the plain engine's throughput on the same scheme and run it
//!    for the same wall-clock the tail estimator used;
//! 3. report both estimates side by side with their relative 95 % CI
//!    widths; the headline is the **CI-width improvement** — how much
//!    tighter the importance-sampled interval is than the plain one the
//!    same compute budget buys (equivalently, `√(effective-trial
//!    multiplier)` after normalizing for per-trial cost).
//!
//! With `--check`, the run *gates*: the improvement must be ≥ 10x for
//! XedChipkill and DoubleChipkill (the PR's acceptance bar; the effective
//! trial multiplier target is ≥ 100x).
//!
//! Results merge into the `mc_throughput` trajectory file as a `"tail"`
//! section when `--out` points at an existing report (the default,
//! `BENCH_faultsim.json`, is written by `scripts/bench.sh` in that order),
//! or become a standalone report otherwise.
//!
//! ```text
//! cargo run --release -p xed-bench --bin mc_tail -- \
//!     [--samples N] [--seed N] [--out PATH] [--check] [--smoke]
//! ```

use std::fmt::Write as _;
use xed_bench::rule;
use xed_faultsim::engine::{self, Estimate, Query, Sweep};
use xed_faultsim::rareevent::TailEstimate;
use xed_faultsim::schemes::Scheme;

/// The schemes with tail-class failure probabilities. The first two carry
/// the `--check` gate; the plain-Chipkill pair is context.
const TAIL_SCHEMES: [Scheme; 4] = [
    Scheme::XedChipkill,
    Scheme::DoubleChipkill,
    Scheme::Chipkill,
    Scheme::ChipkillX4,
];

/// Schemes the `--check` gate applies to.
const GATED: [Scheme; 2] = [Scheme::XedChipkill, Scheme::DoubleChipkill];

/// Acceptance bar: IS relative CI width must beat plain MC's by this
/// factor at fixed wall-clock on the gated schemes.
const MIN_CI_IMPROVEMENT: f64 = 10.0;

struct Args {
    samples: u64,
    seed: u64,
    out: String,
    check: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        samples: 1_000_000,
        seed: 2016,
        out: "BENCH_faultsim.json".to_string(),
        check: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut grab =
            |name: &str| -> String { it.next().unwrap_or_else(|| panic!("usage: {name} <value>")) };
        match arg.as_str() {
            "--samples" => args.samples = grab("--samples").parse().expect("--samples <u64>"),
            "--seed" => args.seed = grab("--seed").parse().expect("--seed <u64>"),
            "--out" => args.out = grab("--out"),
            "--check" => args.check = true,
            "--smoke" => args.samples = 100_000,
            other => eprintln!("(ignoring unknown argument {other})"),
        }
    }
    assert!(args.samples > 0, "--samples must be positive");
    args
}

/// The side-by-side comparison for one scheme.
struct Comparison {
    tail: TailEstimate,
    /// Plain-MC trials the tail run's wall-clock buys on this scheme.
    plain_trials: u64,
    /// Plain-MC estimate from actually running those trials.
    plain_p: f64,
    plain_failures: u64,
    /// Plain relative 95 % CI width at `plain_trials`, computed from the
    /// (sharper) tail estimate of `p` so a zero-failure plain run still
    /// yields a finite width.
    plain_relative_ci95: f64,
    /// `plain_relative_ci95 / tail.relative_ci95()`: the fixed-wall-clock
    /// precision multiplier.
    ci_improvement: f64,
    /// `effective_trials / plain_trials`: effective-throughput multiplier
    /// at fixed wall-clock (`ci_improvement²`, up to rounding).
    effective_multiplier: f64,
}

fn compare(scheme: Scheme, args: &Args) -> Comparison {
    // The tail run goes through the engine facade — the same entry the
    // `xedd` daemon serves `kind=tail` queries from.
    let est = engine::evaluate(&Query::tail(scheme, args.samples, args.seed))
        .expect("paper-default tail query is valid");
    let Estimate::Tail(tail) = est else {
        unreachable!("tail queries produce tail estimates")
    };
    let tail = *tail;

    // Measure the plain engine on this scheme, then give it the same
    // wall-clock the tail estimator consumed.
    let probe = Sweep::new(500_000, args.seed).run_one(scheme);
    let plain_trials = ((probe.stats.samples_per_sec * tail.wall_seconds) as u64).max(10_000);
    let plain = Sweep::new(plain_trials, args.seed).run_one(scheme).result;

    // Plain MC's precision at that trial count. Using the tail estimate of
    // p keeps this finite when the plain run observes zero failures —
    // which on these schemes it usually does.
    let p = tail.p_fail;
    let plain_relative_ci95 = if p > 0.0 {
        1.96 * (p * (1.0 - p) / plain_trials as f64).sqrt() / p
    } else {
        f64::INFINITY
    };
    let ci_improvement = plain_relative_ci95 / tail.relative_ci95();
    let effective_multiplier = tail.effective_trials() / plain_trials as f64;
    Comparison {
        tail,
        plain_trials,
        plain_p: plain.lifetime_failure_probability(),
        plain_failures: plain.failures(),
        plain_relative_ci95,
        ci_improvement,
        effective_multiplier,
    }
}

fn main() {
    let args = parse_args();
    println!("mc_tail: importance-sampled rare-event benchmark");
    println!(
        "({} conditioned samples/scheme, seed {}, plain MC at matched wall-clock)\n",
        args.samples, args.seed
    );
    println!(
        "{:26} {:>15} {:>10} {:>11} {:>11} {:>9} {:>9}",
        "scheme", "mode", "p_fail", "rel ci95", "plain rel", "ci gain", "eff gain"
    );
    rule(97);

    let mut rows: Vec<(Scheme, Comparison)> = Vec::new();
    for scheme in TAIL_SCHEMES {
        let c = compare(scheme, &args);
        println!(
            "{:26} {:>15} {:>10.3e} {:>11.5} {:>11.5} {:>8.1}x {:>8.0}x",
            scheme.label(),
            c.tail.mode.label(),
            c.tail.p_fail,
            c.tail.relative_ci95(),
            c.plain_relative_ci95,
            c.ci_improvement,
            c.effective_multiplier,
        );
        rows.push((scheme, c));
    }
    rule(97);

    for (scheme, c) in &rows {
        println!(
            "{}: plain MC spent the same wall-clock on {} trials and saw {} failure(s) \
             (p = {})",
            scheme.label(),
            c.plain_trials,
            c.plain_failures,
            xed_bench::sci(c.plain_p),
        );
    }

    let json = render_tail_json(&args, &rows);
    write_merged(&args.out, &json);

    if args.check {
        let mut failed = false;
        for scheme in GATED {
            let c = &rows
                .iter()
                .find(|(s, _)| *s == scheme)
                .expect("gated scheme is in TAIL_SCHEMES")
                .1;
            let ok = c.ci_improvement >= MIN_CI_IMPROVEMENT;
            println!(
                "check {scheme:?}: ci-width improvement {:.1}x (need ≥ {MIN_CI_IMPROVEMENT}x) — {}",
                c.ci_improvement,
                if ok { "ok" } else { "FAIL" }
            );
            failed |= !ok;
        }
        assert!(
            !failed,
            "rare-event engine misses the fixed-wall-clock CI-improvement bar"
        );
    }
}

/// Renders the `"tail"` section object.
fn render_tail_json(args: &Args, rows: &[(Scheme, Comparison)]) -> String {
    let mut j = String::new();
    j.push_str("{\n");
    let _ = writeln!(j, "    \"samples\": {},", args.samples);
    let _ = writeln!(j, "    \"seed\": {},", args.seed);
    let _ = writeln!(j, "    \"schemes\": [");
    for (i, (scheme, c)) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "      {{\"scheme\": \"{scheme:?}\", \"mode\": \"{}\", \"min_faults\": {}, \
             \"conditioning_probability\": {:.6e}, \"clique_rho\": {:.6e}, \
             \"p_fail\": {:.6e}, \"p_due\": {:.6e}, \"p_sdc\": {:.6e}, \
             \"failures\": {}, \"ci95\": {:.6e}, \"ci99\": {:.6e}, \
             \"relative_ci95\": {:.6}, \"effective_trials\": {:.3e}, \
             \"wall_seconds\": {:.4}, \
             \"plain\": {{\"trials_same_wall\": {}, \"p_fail\": {:.6e}, \
             \"failures\": {}, \"relative_ci95\": {}}}, \
             \"ci_width_improvement\": {:.2}, \
             \"effective_trial_multiplier\": {:.1}}}{comma}",
            c.tail.mode.label(),
            c.tail.min_faults,
            c.tail.conditioning_probability,
            c.tail.clique_rho,
            c.tail.p_fail,
            c.tail.p_due,
            c.tail.p_sdc,
            c.tail.failures,
            c.tail.ci95(),
            c.tail.ci99(),
            c.tail.relative_ci95(),
            c.tail.effective_trials(),
            c.tail.wall_seconds,
            c.plain_trials,
            c.plain_p,
            c.plain_failures,
            if c.plain_relative_ci95.is_finite() {
                format!("{:.6}", c.plain_relative_ci95)
            } else {
                "null".to_string()
            },
            c.ci_improvement,
            c.effective_multiplier,
        );
    }
    let _ = writeln!(j, "    ]");
    j.push_str("  }");
    j
}

/// Merges the tail section into an existing `mc_throughput` report, or
/// writes a minimal standalone report when none exists.
fn write_merged(path: &str, tail_json: &str) {
    let merged = match std::fs::read_to_string(path) {
        Ok(existing) => {
            let trimmed = existing.trim_end();
            let body = trimmed.strip_suffix('}').unwrap_or_else(|| {
                panic!("{path} does not end with a JSON object; refusing to merge")
            });
            // Drop a stale tail section from a previous merge so reruns
            // stay idempotent.
            let body = match body.find("  \"tail\": {") {
                Some(idx) => body[..idx].trim_end().trim_end_matches(','),
                None => body.trim_end(),
            };
            format!("{body},\n  \"tail\": {tail_json}\n}}\n")
        }
        Err(_) => format!(
            "{{\n  \"schema\": \"xed-report-v1\",\n  \"report\": \"mc_tail\",\n  \
             \"tail\": {tail_json}\n}}\n"
        ),
    };
    std::fs::write(path, merged).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("\nwrote tail section into {path}");
}
