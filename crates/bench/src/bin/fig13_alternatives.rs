//! Figure 13: the cost of exposing on-die ECC with an extra burst or an
//! extra transaction instead of XED's catch-words, for both the
//! Chipkill-class (9-chip) and Double-Chipkill-class (18-chip)
//! configurations.
//!
//! Paper result: both alternatives cost noticeably more execution time and
//! power than XED (which costs nothing): an extra burst is a 25% bus
//! occupancy tax, an extra transaction roughly doubles read traffic.
//!
//! `cargo run --release -p xed-bench --bin fig13_alternatives`

use xed_bench::{Options, Report, J};
use xed_memsim::overlay::ReliabilityScheme;
use xed_memsim::sim::{SimConfig, SimResult, Simulation};
use xed_memsim::workloads::{geometric_mean, ALL};

fn main() {
    let opts = Options::from_args();
    let variants: [(&str, ReliabilityScheme, ReliabilityScheme); 4] = [
        (
            "Chipkill / extra burst",
            ReliabilityScheme::xed(),
            ReliabilityScheme::chipkill_extra_burst(),
        ),
        (
            "Chipkill / extra transaction",
            ReliabilityScheme::xed(),
            ReliabilityScheme::chipkill_extra_transaction(),
        ),
        (
            "Double-Chipkill / extra burst",
            ReliabilityScheme::xed_chipkill(),
            ReliabilityScheme::double_chipkill_extra_burst(),
        ),
        (
            "Double-Chipkill / extra transaction",
            ReliabilityScheme::xed_chipkill(),
            ReliabilityScheme::double_chipkill_extra_transaction(),
        ),
    ];

    // A representative subset keeps the sweep fast; pass --instructions to
    // deepen it.
    let names = [
        "libquantum",
        "mcf",
        "lbm",
        "comm1",
        "comm3",
        "sphinx",
        "dealII",
        "stream",
    ];

    println!(
        "Figure 13: alternatives to catch-words, normalized to the XED implementation\n\
         of the same protection level ({} benchmarks x {} instructions)\n",
        names.len(),
        opts.instructions
    );
    println!(
        "{:38} {:>12} {:>12}",
        "alternative", "exec time", "memory power"
    );

    let mut report = Report::new("fig13_alternatives");
    report
        .param("instructions", J::U(opts.instructions))
        .param("seed", J::U(opts.seed))
        .param("benchmarks", J::U(names.len() as u64));

    for (label, xed_base, alt) in variants {
        let mut time_ratios = Vec::new();
        let mut power_ratios = Vec::new();
        for name in names {
            let base = run(name, xed_base, opts.instructions, opts.seed);
            let r = run(name, alt, opts.instructions, opts.seed);
            time_ratios.push(r.cycles as f64 / base.cycles as f64);
            power_ratios.push(r.power_mw() / base.power_mw());
        }
        let g_time = geometric_mean(time_ratios.iter().copied());
        let g_power = geometric_mean(power_ratios.iter().copied());
        println!("{label:38} {g_time:>12.3} {g_power:>12.3}");
        report.row(&[
            ("alternative", J::S(label.to_string())),
            ("exec_time", J::F(g_time)),
            ("memory_power", J::F(g_power)),
        ]);
    }
    println!(
        "\npaper reference: both alternatives land in the ~1.05-1.30 range on both axes,\n\
         while XED itself is 1.00 by construction."
    );
    report.write("results/fig13.json");
    let _ = ALL; // roster available for --full variants
}

fn run(name: &str, scheme: ReliabilityScheme, instructions: u64, seed: u64) -> SimResult {
    Simulation::new(SimConfig {
        workload: xed_memsim::workloads::Workload::by_name(name).unwrap(),
        scheme,
        instructions_per_core: instructions,
        seed,
        ..Default::default()
    })
    .run()
}
