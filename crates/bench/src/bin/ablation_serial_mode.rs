//! Ablation: how sensitive is XED's performance to the serial-mode
//! frequency?
//!
//! The paper argues serial-mode episodes (multiple catch-words) happen
//! once per ~200K accesses at a 10⁻⁴ scaling rate, making their cost
//! invisible. This sweep cranks the frequency by orders of magnitude to
//! find where XED's performance advantage would actually erode.
//!
//! `cargo run --release -p xed-bench --bin ablation_serial_mode`

use xed_bench::{ratio, rule, Options};
use xed_memsim::overlay::ReliabilityScheme;
use xed_memsim::sim::{SimConfig, Simulation};
use xed_memsim::workloads::{geometric_mean, Workload};

fn main() {
    let opts = Options::from_args();
    let names = ["libquantum", "mcf", "comm1"];
    println!(
        "Ablation: XED execution time vs serial-mode frequency\n\
         (normalized to SECDED baseline; {} benchmarks x {} instructions)\n",
        names.len(),
        opts.instructions
    );
    println!("{:>22} {:>12}", "serial mode every", "exec time");
    rule(38);
    for every in [200_000u64, 20_000, 2_000, 200, 20] {
        let mut ratios = Vec::new();
        for name in names {
            let base = run(name, ReliabilityScheme::baseline_secded(), opts);
            let scheme = ReliabilityScheme {
                serial_mode_every: Some(every),
                ..ReliabilityScheme::xed()
            };
            let xed = run_scheme(name, scheme, opts);
            ratios.push(xed as f64 / base as f64);
        }
        println!(
            "{:>18} rds {:>12}",
            every,
            ratio(geometric_mean(ratios.iter().copied()))
        );
    }
    rule(38);
    println!(
        "\nEven 1000x the paper's episode rate (every 200 reads) costs only a few\n\
         percent — the serial-mode design is robust far beyond the 1e-4 scaling\n\
         rates it was sized for."
    );
}

fn run(name: &str, scheme: ReliabilityScheme, opts: Options) -> u64 {
    run_scheme(name, scheme, opts)
}

fn run_scheme(name: &str, scheme: ReliabilityScheme, opts: Options) -> u64 {
    Simulation::new(SimConfig {
        workload: Workload::by_name(name).unwrap(),
        scheme,
        instructions_per_core: opts.instructions,
        seed: opts.seed,
        ..Default::default()
    })
    .run()
    .cycles
}
