//! Utility: export a synthetic benchmark's memory behavior as a
//! USIMM-format trace file, consumable by `xed_memsim::tracefile` (or by
//! USIMM itself).
//!
//! ```text
//! cargo run --release -p xed-bench --bin trace_gen -- libquantum 100000 > lq.trace
//! ```
//!
//! Arguments: `<benchmark> [operations] [seed]`. The output format is one
//! operation per line: `<instruction-gap> <R|W> <hex byte address>`.

use xed_memsim::addrmap::Topology;
use xed_memsim::trace::TraceGen;
use xed_memsim::tracefile::LINE_BYTES;
use xed_memsim::workloads::Workload;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map_or("libquantum", String::as_str);
    let Some(workload) = Workload::by_name(name) else {
        eprintln!("unknown benchmark {name:?}; available:");
        for w in xed_memsim::workloads::ALL {
            eprintln!("  {}", w.name);
        }
        std::process::exit(1);
    };
    let ops: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(10_000);
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2016);

    println!(
        "# synthetic {} trace ({} operations, seed {})",
        workload.name, ops, seed
    );
    println!(
        "# profile: {:.1} read MPKI, {:.1} write MPKI, {:.0}% row-buffer locality",
        workload.read_mpki,
        workload.write_mpki,
        workload.row_hit * 100.0
    );
    let mut generator = TraceGen::new(workload, Topology::baseline(), 0, 1, seed);
    for _ in 0..ops {
        let op = generator.next_op();
        println!(
            "{} {} {:#x}",
            op.gap,
            if op.is_write { "W" } else { "R" },
            op.line_addr * LINE_BYTES
        );
    }
}
