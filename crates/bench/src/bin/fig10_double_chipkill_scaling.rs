//! Figure 10: Single-Chipkill, Double-Chipkill and XED-on-Single-Chipkill
//! (x4 devices) in the presence of scaling faults at rate 10⁻⁴.
//!
//! Paper result: Double-Chipkill stays ~5.5x better than Single-Chipkill,
//! and XED on Single-Chipkill stays ~8.5x better than Double-Chipkill.
//!
//! `cargo run --release -p xed-bench --bin fig10_double_chipkill_scaling`

use xed_bench::{rule, sci, throughput_footer, write_reliability_sidecar, Options};
use xed_faultsim::engine::Sweep;
use xed_faultsim::scaling::ScalingFaults;
use xed_faultsim::schemes::{ModelParams, Scheme};

fn main() {
    let opts = Options::from_args();
    let samples = opts.samples.max(4_000_000);
    let params = ModelParams {
        scaling: ScalingFaults::paper_default(),
        ..Default::default()
    };
    let sweep = Sweep::new(samples, opts.seed).with_params(params);

    println!("Figure 10: x4 chipkill-class schemes with scaling faults at 1e-4");
    println!("({samples} systems/scheme, 7-year lifetime)\n");
    println!(
        "{:42} {:>10}  cumulative by year 1..7",
        "scheme", "P(fail,7y)"
    );
    rule(100);

    let schemes = [
        Scheme::ChipkillX4,
        Scheme::DoubleChipkill,
        Scheme::XedChipkill,
    ];
    let (batch, stats) = sweep.run_all(&schemes);
    let mut results = Vec::new();
    for (scheme, r) in schemes.iter().zip(&batch) {
        let curve: Vec<String> = r.curve().iter().map(|&p| sci(p)).collect();
        println!(
            "{:42} {:>10}  [{}]",
            scheme.label(),
            sci(r.failure_probability(7.0)),
            curve.join(", ")
        );
        results.push(r.failure_probability(7.0));
    }
    rule(100);
    let (single, double, xed) = (results[0], results[1], results[2]);
    if double > 0.0 {
        println!(
            "Double-CK vs Single-CK:  {:.1}x  (paper: 5.5x)",
            single / double
        );
    }
    if xed > 0.0 {
        println!(
            "XED+CK  vs Double-CK:    {:.1}x  (paper: 8.5x)",
            double / xed
        );
    } else {
        println!("XED+CK saw no failures at this sample count; increase --samples.");
    }
    throughput_footer(&stats);

    let labels: Vec<String> = schemes.iter().map(|s| s.label().to_string()).collect();
    write_reliability_sidecar(
        "fig10_double_chipkill_scaling",
        "results/fig10.json",
        samples,
        opts.seed,
        &labels,
        &batch,
        &stats,
    );
}
