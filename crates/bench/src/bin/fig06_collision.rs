//! Figure 6: probability of a catch-word collision as a function of time.
//!
//! Paper narrative: with a 64-bit catch-word and a write every 4 ns, a
//! collision is negligible over any realistic system lifetime and — when
//! it finally happens — is detected and resolved by re-keying the
//! catch-word (Section V-D). For x4 devices the catch-word shrinks to 32
//! bits and collisions become frequent (Section IX-A), which is fine for
//! the same reason.
//!
//! `cargo run --release -p xed-bench --bin fig06_collision`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xed_bench::{rule, Options};
use xed_core::analysis::CollisionModel;
use xed_core::catch_word::CatchWord;

fn main() {
    let opts = Options::from_args();
    let x8 = CollisionModel::x8_paper();
    let x4 = CollisionModel::x4_paper();

    println!("Figure 6: probability of catch-word collision over time (x8, 64-bit CW)\n");
    println!("{:>12} {:>22}", "years", "P(collision by then)");
    rule(36);
    for exp in 0..=8 {
        let years = 10f64.powi(exp - 2);
        println!(
            "{:>12} {:>22.3e}",
            format!("1e{}", exp - 2),
            x8.p_collision_by(years)
        );
    }
    rule(36);
    println!(
        "mean time to collision (x8): {:.2e} years  (2^64 writes x 4 ns)",
        x8.mean_years_to_collision()
    );
    println!(
        "mean time to collision (x4): {:.1} seconds (2^32 writes x 4 ns; paper quotes hours\n\
         at realistic per-chip write rates — either way the CWR update costs only ~100s of ns)",
        x4.mean_secs_to_collision()
    );
    println!(
        "\nNote: the paper's prose quotes 3.2 million years for x8; 2^64 x 4 ns evaluates to\n\
         ~2.3e3 years. The same ~1400x factor separates the x4 figures (17 s vs 6.6 h),\n\
         suggesting the paper assumed a per-chip write roughly every 5.5 us. The conclusion\n\
         (collisions are vanishingly rare and recoverable) is unchanged. See EXPERIMENTS.md."
    );

    // Empirical spot check of the per-write collision probability for a
    // truncated catch-word (a full 64-bit test is infeasible by design).
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let bits = 24;
    let cw = CatchWord::from_value(rng.gen::<u64>() & ((1 << bits) - 1));
    let trials = 40_000_000u64;
    let mut hits = 0u64;
    for _ in 0..trials {
        if cw.matches(rng.gen::<u64>() & ((1 << bits) - 1)) {
            hits += 1;
        }
    }
    let measured = hits as f64 / trials as f64;
    let expected = 0.5f64.powi(bits);
    println!(
        "\nempirical check ({bits}-bit CW, {trials} random writes): p = {measured:.3e} \
         (expected 2^-{bits} = {expected:.3e})"
    );
}
