//! Table II: detection rate of random and burst errors for the (72,64)
//! Hamming code and the (72,64) CRC8-ATM code.
//!
//! Paper result: both codes detect 1–3 bit errors perfectly; Hamming drops
//! to ~51% on 4- and 8-bit *burst* errors while CRC8-ATM detects 100% of
//! all bursts up to 8 bits — the paper's reason for recommending CRC8-ATM
//! as the on-die code.
//!
//! `cargo run --release -p xed-bench --bin table2_detection`
//! (`--trials N` to change the Monte-Carlo size per cell.)

use xed_bench::{rule, Options};
use xed_ecc::detection::table2_rows;
use xed_ecc::{Crc8Atm, Hamming7264};

fn main() {
    let opts = Options::from_args();
    println!(
        "Table II: detection rate of random and burst errors ({} trials/cell)\n",
        opts.trials
    );
    println!(
        "{:>7} | {:>17} {:>17} | {:>17} {:>17}",
        "", "(72,64) Hamming", "", "(72,64) CRC8-ATM", ""
    );
    println!(
        "{:>7} | {:>17} {:>17} | {:>17} {:>17}",
        "errors", "random", "burst", "random", "burst"
    );
    rule(84);

    let hamming = table2_rows(&Hamming7264::new(), opts.trials, opts.seed);
    let crc = table2_rows(&Crc8Atm::new(), opts.trials, opts.seed);
    for k in 0..8 {
        let (hr, hb) = &hamming[k];
        let (cr, cb) = &crc[k];
        println!(
            "{:>7} | {:>16.2}% {:>16.2}% | {:>16.2}% {:>16.2}%",
            k + 1,
            hr.percent(),
            hb.percent(),
            cr.percent(),
            cb.percent()
        );
    }
    rule(84);
    println!(
        "Paper reference: Hamming burst-4 = 50.73%, burst-8 = 50.75%; CRC8-ATM burst = 100%.\n\
         (Exact Hamming burst rates depend on the bit layout of the specific H-matrix;\n\
         the qualitative gap — Hamming misses aligned bursts, CRC8-ATM never does — holds.)"
    );
}
