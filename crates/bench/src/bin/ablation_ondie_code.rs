//! End-to-end ablation across all three layers: **which on-die code
//! should vendors pick?** (the paper's Section V-E recommendation, traced
//! from code properties to system reliability).
//!
//! Pipeline:
//! 1. measure each code's *undetected* fraction empirically on the error
//!    patterns real chip faults produce — dense random corruption and
//!    burst corruption (`xed-ecc`);
//! 2. feed the resulting on-die miss rate into the fault-response model;
//! 3. Monte-Carlo the XED system's 7-year failure probability
//!    (`xed-faultsim`).
//!
//! `cargo run --release -p xed-bench --bin ablation_ondie_code`

use xed_bench::{rule, sci, throughput_footer, Options};
use xed_ecc::detection::{measure, ErrorModel};
use xed_ecc::secded::SecDed;
use xed_ecc::{Crc8Atm, Hamming7264};
use xed_faultsim::engine::Sweep;
use xed_faultsim::schemes::{ModelParams, Scheme};

/// Fraction of multi-bit chip-fault patterns assumed burst-shaped (I/O,
/// column-decoder and wordline failures produce adjacent-bit damage).
const BURST_FRACTION: f64 = 0.5;

fn main() {
    let opts = Options::from_args();
    println!("Ablation: on-die code choice -> measured miss rate -> XED system reliability\n");
    println!(
        "{:16} {:>16} {:>16} {:>16} {:>14}",
        "on-die code", "random-8 miss", "burst-8 miss", "weighted miss", "XED P(fail,7y)"
    );
    rule(84);

    let hamming = Hamming7264::new();
    let crc = Crc8Atm::new();
    let mut results = Vec::new();
    let mut total_stats: Option<xed_faultsim::montecarlo::RunStats> = None;
    for (name, code) in [
        ("Hamming(72,64)", &hamming as &dyn SecDed),
        ("CRC8-ATM(72,64)", &crc),
    ] {
        let random = 1.0
            - measure_dyn(code, 8, ErrorModel::Random, opts.trials, opts.seed).percent() / 100.0;
        let burst = 1.0
            - measure_dyn(code, 8, ErrorModel::Burst, opts.trials, opts.seed ^ 1).percent() / 100.0;
        let weighted = random * (1.0 - BURST_FRACTION) + burst * BURST_FRACTION;

        let params = ModelParams {
            on_die_miss: weighted,
            ..Default::default()
        };
        let report = Sweep::new(opts.samples, opts.seed)
            .with_params(params)
            .run_one(Scheme::Xed);
        let p = report.result.failure_probability(7.0);
        total_stats = Some(match total_stats {
            None => report.stats,
            Some(acc) => report.stats.merge(&acc),
        });

        println!(
            "{:16} {:>15.3}% {:>15.3}% {:>15.3}% {:>14}",
            name,
            random * 100.0,
            burst * 100.0,
            weighted * 100.0,
            sci(p)
        );
        results.push(p);
    }
    rule(84);
    println!(
        "\nCRC8-ATM's zero burst-miss rate keeps XED's DUE term at the multi-chip floor;\n\
         Hamming's ~25% burst-8 miss rate lifts it by {:.1}x — the quantitative form of\n\
         the paper's \"we recommend CRC8-ATM as a design choice for On-Die ECC\".",
        results[0] / results[1].max(1e-12)
    );
    if let Some(stats) = total_stats {
        throughput_footer(&stats);
    }
}

fn measure_dyn(
    code: &dyn SecDed,
    k: u32,
    model: ErrorModel,
    trials: u64,
    seed: u64,
) -> xed_ecc::detection::DetectionRate {
    // `measure` is generic; a small shim keeps the table loop tidy.
    struct Shim<'a>(&'a dyn SecDed);
    impl SecDed for Shim<'_> {
        fn encode(&self, data: u64) -> xed_ecc::CodeWord72 {
            self.0.encode(data)
        }
        fn decode(&self, received: xed_ecc::CodeWord72) -> xed_ecc::DecodeOutcome {
            self.0.decode(received)
        }
        fn is_valid(&self, received: xed_ecc::CodeWord72) -> bool {
            self.0.is_valid(received)
        }
    }
    measure(&Shim(code), k, model, trials, seed)
}
