//! Figure 11: normalized execution time (vs the SECDED ECC-DIMM baseline)
//! for XED, Chipkill, XED-on-Chipkill and Double-Chipkill, across the
//! paper's benchmark roster.
//!
//! Paper result: XED ≈ 1.00 (overhead < 0.01%); Chipkill averages 1.21
//! (libquantum up to 1.63, mcf 1.51); XED-on-Chipkill ≈ 1.21; traditional
//! Double-Chipkill averages 1.82 (libquantum up to 3.2).
//!
//! `cargo run --release -p xed-bench --bin fig11_exec_time`
//! (`--instructions N` per core; `--show-config` prints Table V.)

use xed_bench::{Options, Report, J};
use xed_memsim::overlay::ReliabilityScheme;
use xed_memsim::sim::{SimConfig, Simulation};
use xed_memsim::workloads::{geometric_mean, ALL};

fn main() {
    let opts = Options::from_args();
    if std::env::args().any(|a| a == "--show-config") {
        print_table_v();
    }
    let schemes = ReliabilityScheme::figure11_set();

    println!(
        "Figure 11: normalized execution time (8 cores x {} instructions, DDR3-1600)\n",
        opts.instructions
    );
    print!("{:12}", "benchmark");
    for s in &schemes[1..] {
        print!(" {:>12}", short(s.name));
    }
    println!();

    let mut report = Report::new("fig11_exec_time");
    report
        .param("instructions", J::U(opts.instructions))
        .param("seed", J::U(opts.seed))
        .param("baseline", J::S(schemes[0].name.to_string()));

    let mut per_scheme: Vec<Vec<f64>> = vec![Vec::new(); schemes.len() - 1];
    let mut suite = None;
    for w in ALL {
        if suite != Some(w.suite) {
            suite = Some(w.suite);
            println!("--- {} ---", w.suite.label());
        }
        let base = run(w.name, schemes[0], opts.instructions, opts.seed);
        print!("{:12}", w.name);
        let mut row: Vec<(&str, J)> = vec![("benchmark", J::S(w.name.to_string()))];
        for (i, s) in schemes[1..].iter().enumerate() {
            let r = run(w.name, *s, opts.instructions, opts.seed);
            let ratio = r as f64 / base as f64;
            per_scheme[i].push(ratio);
            print!(" {:>12.3}", ratio);
            row.push((short(s.name), J::F(ratio)));
        }
        report.row(&row);
        println!();
    }

    let mut gmean_row: Vec<(&str, J)> = vec![("benchmark", J::S("Gmean".to_string()))];
    print!("{:12}", "Gmean");
    for (i, ratios) in per_scheme.iter().enumerate() {
        let g = geometric_mean(ratios.iter().copied());
        print!(" {g:>12.3}");
        gmean_row.push((short(schemes[1 + i].name), J::F(g)));
    }
    println!("\n\npaper Gmeans: XED 1.00, Chipkill 1.21, XED+Chipkill 1.21, Double-Chipkill 1.82");
    report.row(&gmean_row);
    report.write("results/fig11.json");
}

fn run(name: &str, scheme: ReliabilityScheme, instructions: u64, seed: u64) -> u64 {
    Simulation::new(SimConfig {
        workload: xed_memsim::workloads::Workload::by_name(name).unwrap(),
        scheme,
        instructions_per_core: instructions,
        seed,
        ..Default::default()
    })
    .run()
    .cycles
}

fn short(name: &str) -> &str {
    name.split(' ').next().unwrap_or(name)
}

fn print_table_v() {
    println!("Table V: baseline system configuration");
    for (k, v) in [
        ("Number of cores", "8"),
        ("Processor clock speed", "3.2 GHz"),
        ("Processor ROB size", "160"),
        ("Processor retire width", "4"),
        ("Processor fetch width", "4"),
        (
            "Last Level Cache",
            "modeled via per-benchmark LLC MPKI profiles",
        ),
        ("Memory bus speed", "800 MHz (DDR3-1600)"),
        ("DDR3 Memory channels", "4"),
        ("Ranks per channel", "2"),
        ("Banks per rank", "8"),
        ("Rows per bank", "32K"),
        ("Columns (cache lines) per row", "128"),
    ] {
        println!("  {k:32} {v}");
    }
    println!();
}
