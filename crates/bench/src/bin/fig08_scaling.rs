//! Figure 8: reliability of ECC-DIMM, XED and Chipkill when runtime faults
//! occur in the presence of scaling faults at rate 10⁻⁴.
//!
//! Paper result: the ordering (and roughly the factors) of Figure 7 hold —
//! XED 172x over ECC-DIMM, Chipkill 43x — because on-die ECC absorbs
//! scaling faults and XED corrects multi-catch-word episodes in serial
//! mode.
//!
//! `cargo run --release -p xed-bench --bin fig08_scaling`

use xed_bench::{rule, sci, throughput_footer, write_reliability_sidecar, Options};
use xed_faultsim::engine::Sweep;
use xed_faultsim::scaling::ScalingFaults;
use xed_faultsim::schemes::{ModelParams, Scheme};

fn main() {
    let opts = Options::from_args();
    let params = ModelParams {
        scaling: ScalingFaults::paper_default(),
        ..Default::default()
    };
    let sweep = Sweep::new(opts.samples, opts.seed).with_params(params);

    println!("Figure 8: reliability with scaling faults at 1e-4");
    println!("({} systems/scheme, 7-year lifetime)\n", opts.samples);
    println!(
        "{:42} {:>10}  cumulative by year 1..7",
        "scheme", "P(fail,7y)"
    );
    rule(100);

    let schemes = [Scheme::EccDimm, Scheme::Chipkill, Scheme::Xed];
    let (batch, stats) = sweep.run_all(&schemes);
    let mut results = Vec::new();
    for (scheme, r) in schemes.iter().zip(&batch) {
        let curve: Vec<String> = r.curve().iter().map(|&p| sci(p)).collect();
        println!(
            "{:42} {:>10}  [{}]",
            scheme.label(),
            sci(r.failure_probability(7.0)),
            curve.join(", ")
        );
        results.push(r.failure_probability(7.0));
    }
    rule(100);
    let (ecc, ck, xed) = (results[0], results[1], results[2]);
    if xed > 0.0 && ck > 0.0 {
        println!("XED vs ECC-DIMM:  {:.0}x  (paper: 172x)", ecc / xed);
        println!("Chipkill vs ECC:  {:.0}x  (paper: 43x)", ecc / ck);
    }
    println!(
        "\nScaling-fault side effects modeled: runtime bit faults landing in \
         scaling-faulty words\n(p_word = {:.2e}) become 2-bit on-die-uncorrectable errors; \
         XED turns them into catch-words,\nECC-DIMM suffers extra DUEs.",
        ScalingFaults::paper_default().p_word_faulty()
    );
    throughput_footer(&stats);

    let labels: Vec<String> = schemes.iter().map(|s| s.label().to_string()).collect();
    write_reliability_sidecar(
        "fig08_scaling",
        "results/fig08.json",
        opts.samples,
        opts.seed,
        &labels,
        &batch,
        &stats,
    );
}
