//! Figure 14: execution time of LOT-ECC (with write coalescing) relative
//! to XED, by benchmark suite.
//!
//! Paper result: LOT-ECC — a chipkill alternative that maintains tiered
//! localized checksums — runs ~6.6% slower than XED because every write
//! spawns checksum-update writes.
//!
//! `cargo run --release -p xed-bench --bin fig14_lotecc`

use xed_bench::{Options, Report, J};
use xed_memsim::overlay::ReliabilityScheme;
use xed_memsim::sim::{SimConfig, Simulation};
use xed_memsim::workloads::{geometric_mean, Suite, ALL};

fn main() {
    let opts = Options::from_args();
    println!(
        "Figure 14: LOT-ECC (write-coalescing) execution time normalized to XED\n\
         (8 cores x {} instructions)\n",
        opts.instructions
    );
    println!("{:12} {:>14}", "suite", "LOT-ECC / XED");

    let mut report = Report::new("fig14_lotecc");
    report
        .param("instructions", J::U(opts.instructions))
        .param("seed", J::U(opts.seed));

    let mut all_ratios = Vec::new();
    for suite in [
        Suite::Spec2006,
        Suite::Parsec,
        Suite::BioBench,
        Suite::Commercial,
    ] {
        let mut ratios = Vec::new();
        for w in ALL.iter().filter(|w| w.suite == suite) {
            let xed = run(
                w.name,
                ReliabilityScheme::xed(),
                opts.instructions,
                opts.seed,
            );
            let lot = run(
                w.name,
                ReliabilityScheme::lot_ecc(),
                opts.instructions,
                opts.seed,
            );
            ratios.push(lot as f64 / xed as f64);
        }
        let g = geometric_mean(ratios.iter().copied());
        all_ratios.extend(ratios);
        println!("{:12} {:>14.3}", suite.label(), g);
        report.row(&[
            ("suite", J::S(suite.label().to_string())),
            ("lotecc_over_xed", J::F(g)),
        ]);
    }
    let gmean = geometric_mean(all_ratios.iter().copied());
    println!("{:12} {gmean:>14.3}", "GMEAN");
    println!("\npaper reference: LOT-ECC is 6.6% slower than XED on average (write overheads).");
    report.row(&[
        ("suite", J::S("GMEAN".to_string())),
        ("lotecc_over_xed", J::F(gmean)),
    ]);
    report.write("results/fig14.json");
}

fn run(name: &str, scheme: ReliabilityScheme, instructions: u64, seed: u64) -> u64 {
    Simulation::new(SimConfig {
        workload: xed_memsim::workloads::Workload::by_name(name).unwrap(),
        scheme,
        instructions_per_core: instructions,
        seed,
        ..Default::default()
    })
    .run()
    .cycles
}
