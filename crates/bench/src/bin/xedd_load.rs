//! `xedd_load`: load harness for the `xedd` reliability daemon
//! (DESIGN.md §15).
//!
//! Boots an in-process daemon on an ephemeral port and drives it over
//! real TCP through three phases:
//!
//! 1. **cold** — distinct queries, every one a cache miss that runs the
//!    full Monte-Carlo evaluation;
//! 2. **warm** — a multi-threaded client storm over the now-memoized
//!    keys, measuring the O(1) repeat-query path;
//! 3. **coalesce** — K concurrent identical requests against a fresh
//!    key, held provably in-flight (the harness reads the leader's first
//!    streamed partial before launching followers), asserting exactly
//!    one evaluation served all K.
//!
//! Writes an `xed-report-v1` trajectory to `--out` (default
//! `BENCH_xedd.json`). `--check` gates the PR acceptance bar: warm-cache
//! p50 latency at least 100x below cold p50.
//!
//! ```text
//! cargo run --release -p xed-bench --bin xedd_load -- \
//!     [--samples N] [--seed N] [--clients N] [--requests N] \
//!     [--out PATH] [--check] [--smoke]
//! ```

use std::time::Instant;
use xed_bench::{rule, Report, J};
use xedd::http::{self, ChunkStream};
use xedd::{Server, XeddConfig};

struct Args {
    /// Trials per cold query (sets how expensive a miss is).
    samples: u64,
    seed: u64,
    /// Warm-phase client threads.
    clients: usize,
    /// Warm-phase requests per client.
    requests: usize,
    /// Distinct cold keys (and the warm working set).
    cold_queries: usize,
    out: String,
    check: bool,
    smoke: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        samples: 4_000_000,
        seed: 2016,
        clients: 4,
        requests: 50,
        cold_queries: 6,
        out: "BENCH_xedd.json".to_string(),
        check: false,
        smoke: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut grab =
            |name: &str| -> String { it.next().unwrap_or_else(|| panic!("usage: {name} <value>")) };
        match arg.as_str() {
            "--samples" => args.samples = grab("--samples").parse().expect("--samples <u64>"),
            "--seed" => args.seed = grab("--seed").parse().expect("--seed <u64>"),
            "--clients" => args.clients = grab("--clients").parse().expect("--clients <usize>"),
            "--requests" => args.requests = grab("--requests").parse().expect("--requests <usize>"),
            "--out" => args.out = grab("--out"),
            "--check" => args.check = true,
            "--smoke" => {
                // Quick non-gating CI smoke: exercise every phase in well
                // under a second; latency ratios at this scale are noise,
                // so --check is ignored under --smoke.
                args.samples = 100_000;
                args.requests = 10;
                args.cold_queries = 3;
                args.smoke = true;
            }
            other => eprintln!("(ignoring unknown argument {other})"),
        }
    }
    assert!(args.clients >= 1 && args.requests >= 1 && args.cold_queries >= 1);
    args
}

/// Sorted-latency percentile (nearest-rank), in microseconds.
fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted_us.len() as f64).ceil() as usize;
    sorted_us[rank.clamp(1, sorted_us.len()) - 1]
}

/// Latency summary of one phase.
#[derive(Debug, Clone, Copy)]
struct Phase {
    requests: usize,
    p50_us: f64,
    p99_us: f64,
    mean_us: f64,
}

fn summarize(mut latencies_us: Vec<f64>) -> Phase {
    latencies_us.sort_by(|a, b| a.total_cmp(b));
    let mean = latencies_us.iter().sum::<f64>() / latencies_us.len().max(1) as f64;
    Phase {
        requests: latencies_us.len(),
        p50_us: percentile(&latencies_us, 50.0),
        p99_us: percentile(&latencies_us, 99.0),
        mean_us: mean,
    }
}

fn timed_get(addr: &str, target: &str) -> (f64, http::ClientResponse) {
    let t = Instant::now();
    let resp = http::client_get(addr, target).unwrap_or_else(|e| panic!("GET {target}: {e}"));
    (t.elapsed().as_nanos() as f64 / 1e3, resp)
}

fn query_target(args: &Args, key: usize) -> String {
    format!(
        "/v1/query?scheme=xed&samples={}&seed={}",
        args.samples,
        args.seed + key as u64
    )
}

fn main() {
    let args = parse_args();
    let server = Server::start(XeddConfig {
        workers: (args.clients + 2).max(4),
        ..XeddConfig::default()
    })
    .expect("bind an ephemeral port");
    let addr = server.addr();

    println!("xedd_load: daemon load harness on {addr}");
    println!(
        "({} trials/query, {} cold keys, {} clients x {} warm requests)\n",
        args.samples, args.cold_queries, args.clients, args.requests
    );

    // -- phase 1: cold misses ---------------------------------------------
    let mut cold_lat = Vec::with_capacity(args.cold_queries);
    for key in 0..args.cold_queries {
        let (us, resp) = timed_get(&addr, &query_target(&args, key));
        assert_eq!(resp.status, 200, "cold query failed: {}", resp.body);
        assert_eq!(
            resp.header("x-xedd-cache"),
            Some("miss"),
            "cold query was unexpectedly cached"
        );
        cold_lat.push(us);
    }
    let cold = summarize(cold_lat);

    // -- phase 2: warm storm over the memoized working set ----------------
    let warm_lat: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.clients)
            .map(|client| {
                let addr = addr.clone();
                let args = &args;
                scope.spawn(move || {
                    let mut lat = Vec::with_capacity(args.requests);
                    for i in 0..args.requests {
                        let key = (client + i) % args.cold_queries;
                        let (us, resp) = timed_get(&addr, &query_target(args, key));
                        assert_eq!(
                            resp.header("x-xedd-cache"),
                            Some("hit"),
                            "warm request missed the cache"
                        );
                        lat.push(us);
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("warm client thread"))
            .collect()
    });
    let warm = summarize(warm_lat);

    // -- phase 3: coalescing under concurrency ----------------------------
    // Fresh key, streamed partials. Reading the leader's first chunk
    // before launching followers proves the flight is still open when
    // they arrive, making "one evaluation for K requests" deterministic.
    let evals_before = xed_telemetry::registry::metrics::XEDD_EVALUATIONS.value();
    let coalesced_before = xed_telemetry::registry::metrics::XEDD_COALESCED.value();
    let fresh = format!(
        "/v1/query?scheme=xed&samples={}&block={}&seed={}&partials=1",
        args.samples.max(4),
        (args.samples.max(4) / 4).max(1),
        args.seed + args.cold_queries as u64
    );
    let coalesce_clients = args.clients.max(3);
    let mut leader = ChunkStream::open(&addr, &fresh).expect("open leader stream");
    let first = leader
        .next_chunk()
        .expect("leader first chunk")
        .expect("leader stream ended early");
    let follower_bodies: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..coalesce_clients)
            .map(|_| {
                let addr = addr.clone();
                let fresh = fresh.clone();
                scope.spawn(move || {
                    let mut stream = ChunkStream::open(&addr, &fresh).expect("follower stream");
                    let chunks = stream.drain().expect("follower chunks");
                    chunks.last().expect("follower saw no chunks").clone()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("follower thread"))
            .collect()
    });
    let mut leader_chunks = vec![first];
    leader_chunks.extend(leader.drain().expect("leader chunks"));
    let leader_body = leader_chunks.last().expect("leader saw no chunks");
    for body in &follower_bodies {
        assert_eq!(body, leader_body, "follower diverged from the leader");
    }
    let evaluations = xed_telemetry::registry::metrics::XEDD_EVALUATIONS.value() - evals_before;
    let coalesced = xed_telemetry::registry::metrics::XEDD_COALESCED.value() - coalesced_before;
    assert_eq!(
        evaluations,
        1,
        "{} concurrent identical requests ran {evaluations} evaluations",
        coalesce_clients + 1
    );

    // -- report -----------------------------------------------------------
    println!(
        "{:<10} {:>9} {:>12} {:>12} {:>12}",
        "phase", "requests", "p50", "p99", "mean"
    );
    rule(60);
    for (name, phase) in [("cold", &cold), ("warm", &warm)] {
        println!(
            "{:<10} {:>9} {:>9.0} us {:>9.0} us {:>9.0} us",
            name, phase.requests, phase.p50_us, phase.p99_us, phase.mean_us
        );
    }
    rule(60);
    let speedup = cold.p50_us / warm.p50_us.max(1e-9);
    println!(
        "\nwarm-cache speedup: {speedup:.0}x at p50 ({:.0} us -> {:.0} us)",
        cold.p50_us, warm.p50_us
    );
    println!(
        "coalescing: {} concurrent identical requests -> {evaluations} evaluation ({coalesced} coalesced)",
        coalesce_clients + 1
    );

    let mut report = Report::new("xedd_load");
    report
        .param("samples_per_query", J::U(args.samples))
        .param("seed", J::U(args.seed))
        .param("cold_queries", J::U(args.cold_queries as u64))
        .param("clients", J::U(args.clients as u64))
        .param("requests_per_client", J::U(args.requests as u64))
        .param("warm_speedup_p50", J::F(speedup));
    for (name, phase) in [("cold", &cold), ("warm", &warm)] {
        report.row(&[
            ("phase", J::S(name.to_string())),
            ("requests", J::U(phase.requests as u64)),
            ("p50_us", J::F(phase.p50_us)),
            ("p99_us", J::F(phase.p99_us)),
            ("mean_us", J::F(phase.mean_us)),
        ]);
    }
    report.row(&[
        ("phase", J::S("coalesce".to_string())),
        ("requests", J::U(coalesce_clients as u64 + 1)),
        ("evaluations", J::U(evaluations)),
        ("coalesced", J::U(coalesced)),
    ]);
    report.write(&args.out);

    server.shutdown();

    if args.check && !args.smoke {
        assert!(
            speedup >= 100.0,
            "acceptance: warm p50 ({:.0} us) must be >=100x below cold p50 ({:.0} us), got {speedup:.1}x",
            warm.p50_us,
            cold.p50_us
        );
        println!("check passed: warm p50 is {speedup:.0}x below cold (bar: 100x)");
    } else if args.check {
        println!("(--check ignored under --smoke: latency ratios at smoke scale are noise)");
    }
}
