//! Runs every table/figure reproduction in sequence (the full evaluation
//! of the paper). Pass `--quick` for a fast smoke pass, or the individual
//! binaries for deeper runs of one experiment.
//!
//! `cargo run --release -p xed-bench --bin all_experiments`

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "fig01_motivation",
    "table2_detection",
    "fig06_collision",
    "table3_multi_catchword",
    "fig07_reliability",
    "fig08_scaling",
    "table4_sdc_due",
    "fig09_double_chipkill",
    "fig10_double_chipkill_scaling",
    "fig11_exec_time",
    "fig12_power",
    "fig13_alternatives",
    "fig14_lotecc",
    "ablation_intersection",
    "ablation_ondie_detection",
    "ablation_scrubbing",
    "ablation_serial_mode",
    "ablation_catchword_width",
    "ablation_ondie_code",
    "ablation_inferred_code",
    "failure_attribution",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let me = std::env::current_exe().expect("own path");
    let bin_dir = me.parent().expect("bin dir").to_path_buf();

    for (i, exp) in EXPERIMENTS.iter().enumerate() {
        println!("\n{}", "=".repeat(100));
        println!("[{}/{}] {exp}", i + 1, EXPERIMENTS.len());
        println!("{}", "=".repeat(100));
        let path = bin_dir.join(exp);
        let status = Command::new(&path)
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {exp} at {path:?}: {e}"));
        assert!(status.success(), "{exp} exited with {status}");
    }
    println!("\nall {} experiments completed", EXPERIMENTS.len());
}
