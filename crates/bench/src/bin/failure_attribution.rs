//! Diagnostic study: which fault mode actually kills each scheme?
//!
//! The paper's core argument rests on *large-granularity* faults dominating
//! system failures once on-die ECC absorbs bit faults (Section I). This
//! study attributes every Monte-Carlo failure to the extent of the fault
//! whose arrival triggered it.
//!
//! `cargo run --release -p xed-bench --bin failure_attribution`

use xed_bench::{rule, throughput_footer, Options};
use xed_faultsim::engine::Sweep;
use xed_faultsim::fault::FaultExtent;
use xed_faultsim::schemes::Scheme;

fn main() {
    let opts = Options::from_args();
    let sweep = Sweep::new(opts.samples, opts.seed);

    println!(
        "Failure attribution by triggering fault extent ({} systems/scheme)\n",
        opts.samples
    );
    print!("{:42}", "scheme");
    for e in FaultExtent::ALL {
        print!(" {:>8}", e.to_string());
    }
    println!(" {:>8}", "total");
    rule(104);

    let schemes = [
        Scheme::EccDimm,
        Scheme::Xed,
        Scheme::Chipkill,
        Scheme::DoubleChipkill,
    ];
    let (results, stats) = sweep.run_all(&schemes);
    for (scheme, r) in schemes.iter().zip(&results) {
        print!("{:42}", scheme.label());
        for (_, count) in r.attribution() {
            print!(" {:>8}", count);
        }
        println!(" {:>8}", r.failures());
    }
    rule(104);
    println!(
        "\nReading: for ECC-DIMM, bank/row/column faults dominate (the \"9th chip is\n\
         superfluous\" argument); for XED and Chipkill, failures require a *pair* of\n\
         faults intersecting, so the attribution shifts toward the wide extents\n\
         (chip/bank) that overlap everything."
    );
    throughput_footer(&stats);
}
