//! Figure 1: probability of system failure over 7 years for a Non-ECC
//! DIMM, an ECC-DIMM (SECDED) and Chipkill — all with On-Die ECC inside
//! the devices.
//!
//! Paper result: with on-die ECC, the 9-chip ECC-DIMM is barely better
//! than the 8-chip non-ECC DIMM (large-granularity faults defeat SECDED
//! either way), while Chipkill is ~43x more reliable than the ECC-DIMM.
//!
//! `cargo run --release -p xed-bench --bin fig01_motivation`
//! (`--samples N` to change the Monte-Carlo size, `--show-fits` to print
//! the Table I input rates.)

use xed_bench::{rule, sci, throughput_footer, write_reliability_sidecar, Options};
use xed_faultsim::engine::Sweep;
use xed_faultsim::fit::FitRates;
use xed_faultsim::schemes::Scheme;

fn main() {
    let opts = Options::from_args();
    if std::env::args().any(|a| a == "--show-fits") {
        print_table_i();
    }

    let sweep = Sweep::new(opts.samples, opts.seed);

    println!("Figure 1: effectiveness of reliability solutions in presence of On-Die ECC");
    println!("({} systems/scheme, 7-year lifetime)\n", opts.samples);
    println!(
        "{:42} {:>10}  cumulative by year 1..7",
        "scheme", "P(fail,7y)"
    );
    rule(100);

    let schemes = [Scheme::NonEcc, Scheme::EccDimm, Scheme::Chipkill];
    let (results, stats) = sweep.run_all(&schemes);
    let mut probs = Vec::new();
    for (scheme, r) in schemes.iter().zip(&results) {
        let curve: Vec<String> = r.curve().iter().map(|&p| sci(p)).collect();
        println!(
            "{:42} {:>10}  [{}]",
            scheme.label(),
            sci(r.failure_probability(7.0)),
            curve.join(", ")
        );
        probs.push(r.failure_probability(7.0));
    }
    rule(100);
    if probs[2] > 0.0 {
        println!(
            "Chipkill vs ECC-DIMM: {:.0}x more reliable (paper: 43x)",
            probs[1] / probs[2]
        );
    }
    println!(
        "ECC-DIMM vs Non-ECC:  {:.2}x (paper: \"almost no reliability benefit\")",
        probs[0] / probs[1]
    );
    throughput_footer(&stats);

    let labels: Vec<String> = schemes.iter().map(|s| s.label().to_string()).collect();
    write_reliability_sidecar(
        "fig01_motivation",
        "results/fig01.json",
        opts.samples,
        opts.seed,
        &labels,
        &results,
        &stats,
    );
}

fn print_table_i() {
    println!("Table I: DRAM failures per billion hours (FIT) [Sridharan & Liberty]");
    println!("{:12} {:>10} {:>10}", "mode", "transient", "permanent");
    for row in FitRates::table_i().rows() {
        println!(
            "{:12} {:>10} {:>10}",
            row.extent.to_string(),
            row.transient_fit,
            row.permanent_fit
        );
    }
    println!();
}
