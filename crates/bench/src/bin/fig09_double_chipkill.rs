//! Figure 9: Single-Chipkill vs Double-Chipkill vs XED-on-Single-Chipkill
//! (x4 devices), without scaling faults.
//!
//! Paper result: Double-Chipkill is ~an order of magnitude better than
//! Single-Chipkill, and XED on Single-Chipkill hardware beats
//! Double-Chipkill by ~8.5x while using half the chips per access.
//!
//! `cargo run --release -p xed-bench --bin fig09_double_chipkill`

use xed_bench::{rule, sci, throughput_footer, write_reliability_sidecar, Options};
use xed_faultsim::engine::Sweep;
use xed_faultsim::schemes::Scheme;

fn main() {
    let opts = Options::from_args();
    // The x4 schemes fail rarely; use more samples by default.
    let samples = opts.samples.max(4_000_000);
    let sweep = Sweep::new(samples, opts.seed);

    println!("Figure 9: Single-Chipkill, Double-Chipkill, and XED-based Single-Chipkill (x4)");
    println!("({samples} systems/scheme, 7-year lifetime)\n");
    println!(
        "{:42} {:>10}  cumulative by year 1..7",
        "scheme", "P(fail,7y)"
    );
    rule(100);

    let schemes = [
        Scheme::ChipkillX4,
        Scheme::DoubleChipkill,
        Scheme::XedChipkill,
    ];
    let (batch, stats) = sweep.run_all(&schemes);
    let mut results = Vec::new();
    for (scheme, r) in schemes.iter().zip(&batch) {
        let curve: Vec<String> = r.curve().iter().map(|&p| sci(p)).collect();
        println!(
            "{:42} {:>10}  [{}]",
            scheme.label(),
            sci(r.failure_probability(7.0)),
            curve.join(", ")
        );
        results.push(r.failure_probability(7.0));
    }
    rule(100);
    let (single, double, xed) = (results[0], results[1], results[2]);
    if double > 0.0 {
        println!(
            "Double-CK vs Single-CK:  {:.1}x  (paper: ~10x)",
            single / double
        );
    }
    if xed > 0.0 {
        println!(
            "XED+CK  vs Double-CK:    {:.1}x  (paper: 8.5x)",
            double / xed
        );
    } else {
        println!("XED+CK saw no failures at this sample count; increase --samples.");
    }
    throughput_footer(&stats);

    let labels: Vec<String> = schemes.iter().map(|s| s.label().to_string()).collect();
    write_reliability_sidecar(
        "fig09_double_chipkill",
        "results/fig09.json",
        samples,
        opts.seed,
        &labels,
        &batch,
        &stats,
    );
}
