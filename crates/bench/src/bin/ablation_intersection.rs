//! Ablation: does requiring faults to *intersect at a common cache line*
//! (FaultSim's range model) matter, versus counting any two coexisting
//! faulty chips in a protection domain?
//!
//! This is the main modeling knob behind the differences between our
//! measured reliability ratios and the paper's (EXPERIMENTS.md): the
//! coarse model inflates multi-fault failure rates by ~2-4x because e.g.
//! two bank failures in different banks never actually corrupt a common
//! codeword.
//!
//! `cargo run --release -p xed-bench --bin ablation_intersection`

use xed_bench::{rule, sci, throughput_footer, Options};
use xed_faultsim::engine::Sweep;
use xed_faultsim::montecarlo::{RunStats, SchemeResult};
use xed_faultsim::schemes::{ModelParams, Scheme};

fn main() {
    let opts = Options::from_args();
    println!(
        "Ablation: line-intersection fault model vs coarse domain-coexistence model\n\
         ({} systems/scheme)\n",
        opts.samples
    );
    println!(
        "{:42} {:>14} {:>14} {:>8}",
        "scheme", "intersection", "coarse", "ratio"
    );
    rule(84);
    let schemes = [
        Scheme::Xed,
        Scheme::Chipkill,
        Scheme::XedChipkill,
        Scheme::DoubleChipkill,
    ];
    let (strict, strict_stats) = run_all(&schemes, true, opts.samples, opts.seed);
    let (coarse, coarse_stats) = run_all(&schemes, false, opts.samples, opts.seed);
    for ((scheme, s), c) in schemes.iter().zip(&strict).zip(&coarse) {
        let sp = s.failure_probability(7.0);
        let cp = c.failure_probability(7.0);
        let ratio = if sp > 0.0 { cp / sp } else { f64::NAN };
        println!(
            "{:42} {:>14} {:>14} {:>7.1}x",
            scheme.label(),
            sci(sp),
            sci(cp),
            ratio
        );
    }
    rule(84);
    println!(
        "\nThe coarse model overstates failures most for schemes whose failures need\n\
         high-order chip coincidences; the paper's 43x/172x ratios sit between the\n\
         two models."
    );
    throughput_footer(&strict_stats.merge(&coarse_stats));
}

fn run_all(
    schemes: &[Scheme],
    intersection: bool,
    samples: u64,
    seed: u64,
) -> (Vec<SchemeResult>, RunStats) {
    let params = ModelParams {
        require_line_intersection: intersection,
        ..Default::default()
    };
    Sweep::new(samples, seed)
        .with_params(params)
        .run_all(schemes)
}
