//! Ablation: what does *not knowing* the vendor's on-die code cost?
//!
//! DRAM vendors do not disclose their on-die ECC, so a real XED
//! controller either runs a BEER-style inference campaign (DESIGN.md
//! §17) or operates under residual ambiguity. This sweep walks the
//! canonical knowledge ladder — known matrix, bit-exact inferred
//! matrix, then 1/2/4/8 unresolved check rows — and prints each
//! scheme estimate under it. The first two lines must be identical
//! (exact recovery is free); the rest quantify the price of a
//! pattern-starved campaign.
//!
//! `cargo run --release -p xed-bench --bin ablation_inferred_code`

use xed_bench::{rule, sci, throughput_footer, Options};
use xed_faultsim::engine::{code_model_family, code_model_ladder, Sweep};
use xed_faultsim::montecarlo::RunStats;
use xed_faultsim::schemes::Scheme;

fn main() {
    let opts = Options::from_args();
    println!(
        "Ablation: XED reliability vs controller knowledge of the on-die code\n\
         ({} systems per point)\n",
        opts.samples
    );
    println!(
        "{:>14} {:>14} {:>10} {:>10}",
        "code model", "P(fail,7y)", "DUE", "SDC"
    );
    rule(52);
    let sweep = Sweep::new(opts.samples, opts.seed);
    let points = code_model_family(&sweep, Scheme::Xed, &code_model_ladder());
    let mut total_stats: Option<RunStats> = None;
    for point in &points {
        let r = &point.report.result;
        total_stats = Some(match total_stats {
            None => point.report.stats,
            Some(acc) => point.report.stats.merge(&acc),
        });
        println!(
            "{:>14} {:>14} {:>10} {:>10}",
            point.code_model.to_string(),
            sci(r.failure_probability(7.0)),
            r.due,
            r.sdc
        );
    }
    rule(52);
    println!(
        "\nThe `known` and `inferred` rows are bit-identical — a full BEER recovery\n\
         restores the disclosed-matrix estimate exactly. Each unresolved check row\n\
         roughly doubles the plausible-escape syndrome set, so the ambiguous rows\n\
         degrade toward the no-on-die-detection floor by `ambiguous:3`."
    );
    if let Some(stats) = total_stats {
        throughput_footer(&stats);
    }
}
