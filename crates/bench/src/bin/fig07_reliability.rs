//! Figure 7: reliability of ECC-DIMM, XED and Chipkill (all with On-Die
//! ECC, no scaling faults).
//!
//! Paper result: XED is 172x more reliable than the ECC-DIMM and ~4x more
//! reliable than Chipkill, because XED's erasure domain is one 9-chip rank
//! while Chipkill's is 18 chips.
//!
//! `cargo run --release -p xed-bench --bin fig07_reliability`

use xed_bench::{rule, sci, throughput_footer, write_reliability_sidecar, Options};
use xed_faultsim::engine::Sweep;
use xed_faultsim::schemes::Scheme;

fn main() {
    let opts = Options::from_args();
    let sweep = Sweep::new(opts.samples, opts.seed);

    println!("Figure 7: reliability of ECC-DIMM, XED, and Chipkill");
    println!(
        "({} systems/scheme, 7-year lifetime, Table I FITs)\n",
        opts.samples
    );
    println!(
        "{:42} {:>10}  cumulative by year 1..7",
        "scheme", "P(fail,7y)"
    );
    rule(100);

    let schemes = [Scheme::EccDimm, Scheme::Chipkill, Scheme::Xed];
    let (results, stats) = sweep.run_all(&schemes);
    let mut probs = Vec::new();
    for (scheme, r) in schemes.iter().zip(&results) {
        let curve: Vec<String> = r.curve().iter().map(|&p| sci(p)).collect();
        println!(
            "{:42} {:>10}  [{}]",
            scheme.label(),
            sci(r.failure_probability(7.0)),
            curve.join(", ")
        );
        probs.push(r.failure_probability(7.0));
    }
    rule(100);
    let (ecc, ck, xed) = (probs[0], probs[1], probs[2]);
    if xed > 0.0 {
        println!("XED vs ECC-DIMM:   {:.0}x   (paper: 172x)", ecc / xed);
        println!("XED vs Chipkill:   {:.1}x   (paper: 4x)", ck / xed);
    }
    if ck > 0.0 {
        println!("Chipkill vs ECC:   {:.0}x   (paper: 43x)", ecc / ck);
    }
    throughput_footer(&stats);

    let labels: Vec<String> = schemes.iter().map(|s| s.label().to_string()).collect();
    write_reliability_sidecar(
        "fig07_reliability",
        "results/fig07.json",
        opts.samples,
        opts.seed,
        &labels,
        &results,
        &stats,
    );
}
