//! `xedstat`: one-shot observability report for the functional DIMM
//! organizations (DESIGN.md §11).
//!
//! Drives a deterministic fault-injection workload through each of the
//! three functional memory systems — the conventional SECDED **EccDimm**,
//! the 9-chip **XED** controller, and the 18-chip **Double-Chipkill**
//! configuration — and reports what the telemetry registry observed: one
//! aligned text table per system, and (with `--telemetry PATH`) a single
//! `xed-report-v1` JSON report whose `series` rows embed each system's
//! active metrics.
//!
//! The run doubles as an end-to-end equivalence check: for every system
//! the legacy stats struct is asserted equal to the corresponding
//! telemetry counters before anything is printed.
//!
//! ```text
//! cargo run --release -p xed-bench --bin xedstat -- \
//!     [--lines N] [--seed N] [--telemetry PATH] [--smoke]
//! ```

use xed_bench::{rule, Report, J};
use xed_core::chip::{ChipGeometry, OnDieCode};
use xed_core::controller::XedController;
use xed_core::fault::{FaultKind, InjectedFault};
use xed_core::secded_dimm::SecdedDimm;
use xed_core::xed_chipkill::XedChipkillSystem;
use xed_telemetry::registry;

struct Args {
    lines: u64,
    seed: u64,
    telemetry_out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        lines: 512,
        seed: 2016,
        telemetry_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut grab =
            |name: &str| -> String { it.next().unwrap_or_else(|| panic!("usage: {name} <value>")) };
        match arg.as_str() {
            "--lines" => args.lines = grab("--lines").parse().expect("--lines <u64>"),
            "--seed" => args.seed = grab("--seed").parse().expect("--seed <u64>"),
            "--telemetry" => args.telemetry_out = Some(grab("--telemetry")),
            "--smoke" => args.lines = 64,
            other => eprintln!("(ignoring unknown argument {other})"),
        }
    }
    assert!(args.lines >= 8, "--lines must be at least 8");
    args
}

/// One system's reported outcome: label, legacy-stat rows for the JSON
/// series, and the telemetry metrics it lit up.
struct Section {
    system: &'static str,
    fields: Vec<(&'static str, u64)>,
    telemetry_json: String,
}

/// Runs `workload` against a freshly reset registry and captures the
/// metrics it produced.
fn section(system: &'static str, workload: impl FnOnce() -> Vec<(&'static str, u64)>) -> Section {
    registry::reset_all();
    let fields = workload();
    let snap = xed_telemetry::snapshot();

    println!("\n== {system} ==");
    print!("{}", snap.to_table());

    // Equivalence gate: the legacy stats the workload returned must match
    // the registry counter of the same name bit-for-bit.
    for (id, legacy) in &fields {
        let counted = snap
            .counter(id)
            .unwrap_or_else(|| panic!("{system}: metric {id} missing from the registry"));
        assert_eq!(
            counted, *legacy,
            "{system}: telemetry {id} diverged from the legacy stats struct"
        );
    }

    Section {
        system,
        fields,
        telemetry_json: snap.active_to_json_array(),
    }
}

/// EccDimm: clean reads, then a chip failure SECDED cannot correct.
fn run_secded(lines: u64) -> Vec<(&'static str, u64)> {
    let mut dimm = SecdedDimm::new(ChipGeometry::small());
    let data = [0x0102_0304_0506_0708u64, 2, 3, 4, 5, 6, 7, 8];
    for l in 0..lines {
        dimm.write_line(l, &data);
    }
    for l in 0..lines {
        let _ = dimm.read_line(l);
    }
    dimm.inject_fault(3, InjectedFault::chip(FaultKind::Permanent));
    for l in 0..lines {
        let _ = dimm.read_line(l);
    }
    let s = dimm.stats();
    vec![
        ("core.secded.reads", s.reads),
        ("core.secded.corrections", s.corrections),
        ("core.secded.due", s.due_events),
    ]
}

/// XED: transient word fault (reconstruct + scrub), a row failure
/// (catch-words on every column), and a catch-word collision.
fn run_xed(lines: u64, seed: u64) -> Vec<(&'static str, u64)> {
    let mut c = XedController::new(ChipGeometry::small(), OnDieCode::Crc8Atm, seed, 8, 10);
    let geometry = c.geometry();
    let data = [11u64, 22, 33, 44, 55, 66, 77, 88];
    for l in 0..lines {
        c.write_line(geometry.addr(l), &data);
    }
    // Transient word fault: one reconstruction, healed by the scrub.
    let a = geometry.addr(1);
    c.inject_fault(2, InjectedFault::word(a, FaultKind::Transient));
    let _ = c.read_line(a);
    let _ = c.read_line(a);
    // Collision: store chip 4's catch-word as data (detected, re-keyed).
    let cw = c.catch_word(4).value();
    let mut line = data;
    line[4] = cw;
    let a = geometry.addr(2);
    c.write_line(a, &line);
    let _ = c.read_line(a);
    c.write_line(a, &data);
    // Permanent row failure: every read of the row reconstructs.
    let row_addr = geometry.addr(lines / 2);
    c.inject_fault(
        5,
        InjectedFault::row(row_addr.bank, row_addr.row, FaultKind::Permanent),
    );
    for l in 0..lines {
        let _ = c.read_line(geometry.addr(l));
    }
    let s = c.stats();
    vec![
        ("core.xed.reads", s.reads),
        ("core.xed.writes", s.writes),
        ("core.xed.catch_words", s.catch_words_observed),
        ("core.xed.reconstructions", s.reconstructions),
        ("core.xed.serial_modes", s.serial_modes),
        ("core.xed.catchword_collisions", s.collisions),
        (
            "core.xed.diagnosis_runs",
            s.inter_line_runs + s.intra_line_runs,
        ),
        ("core.xed.due", s.due_events),
        ("core.xed.scrub_writes", s.scrub_writes),
    ]
}

/// Double-Chipkill: two whole chips die; RS(18,16) erasure decode
/// recovers every line (`ecc.rs.*` counters light up).
fn run_chipkill(lines: u64, seed: u64) -> Vec<(&'static str, u64)> {
    let mut sys = XedChipkillSystem::new(seed);
    let data = [0xAB00_0001u32; 16];
    for l in 0..lines {
        sys.write_line(l, &data);
    }
    sys.inject_fault(3, InjectedFault::chip(FaultKind::Permanent));
    sys.inject_fault(11, InjectedFault::chip(FaultKind::Permanent));
    for l in 0..lines {
        let _ = sys.read_line(l);
    }
    let s = sys.stats();
    vec![
        ("core.xed.reads", s.reads),
        ("core.xed.writes", s.writes),
        ("core.xed.catch_words", s.catch_words_observed),
        ("core.xed.reconstructions", s.reconstructions),
        ("core.xed.catchword_collisions", s.collisions),
        ("core.xed.due", s.due_events),
        ("core.xed.scrub_writes", s.scrub_writes),
    ]
}

fn main() {
    let args = parse_args();
    println!("xedstat: telemetry report for the functional DIMM organizations");
    println!("({} lines/system, seed {})", args.lines, args.seed);
    rule(72);

    let sections = [
        section("EccDimm (9-chip DIMM-level SECDED)", || {
            run_secded(args.lines)
        }),
        section("XED (9-chip, catch-words + RAID-3 parity)", || {
            run_xed(args.lines, args.seed)
        }),
        section("Double-Chipkill (18-chip, RS(18,16) erasures)", || {
            run_chipkill(args.lines, args.seed)
        }),
    ];

    println!(
        "\ntelemetry/legacy equivalence verified for all {} systems",
        sections.len()
    );

    if let Some(out) = &args.telemetry_out {
        let mut report = Report::new("xedstat");
        report
            .param("lines", J::U(args.lines))
            .param("seed", J::U(args.seed));
        for s in &sections {
            let mut fields: Vec<(&str, J)> = vec![("system", J::S(s.system.to_string()))];
            for (k, v) in &s.fields {
                fields.push((k, J::U(*v)));
            }
            fields.push(("telemetry", J::Raw(s.telemetry_json.clone())));
            report.row(&fields);
        }
        // The per-system metrics live in the series rows; clear the
        // registry so the envelope's own telemetry array doesn't repeat
        // the final section.
        registry::reset_all();
        report.write(out);
    }
}
