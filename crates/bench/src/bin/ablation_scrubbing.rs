//! Ablation: transient-fault exposure (scrub latency).
//!
//! The paper's model (and our default) assumes a corrected transient
//! fault's corruption is scrubbed essentially immediately — so two
//! transient faults never coexist. Real systems scrub on a patrol
//! interval. This sweep lets corrected transient corruption linger and
//! measures the reliability cost for the erasure-based schemes.
//!
//! `cargo run --release -p xed-bench --bin ablation_scrubbing`

use xed_bench::{rule, sci, throughput_footer, Options};
use xed_faultsim::engine::Sweep;
use xed_faultsim::schemes::{ModelParams, Scheme};

fn main() {
    let opts = Options::from_args();
    let windows: [(&str, f64); 5] = [
        ("immediate", 0.0),
        ("1 day", 24.0),
        ("1 week", 7.0 * 24.0),
        ("1 month", 30.0 * 24.0),
        ("never (7y)", 7.0 * 365.0 * 24.0),
    ];
    println!(
        "Ablation: XED and Chipkill failure probability vs transient-fault exposure\n\
         window before scrub ({} systems per point)\n",
        opts.samples
    );
    println!("{:>12} {:>14} {:>14}", "window", "XED", "Chipkill");
    rule(46);
    let mut total_stats = None;
    for (label, hours) in windows {
        let params = ModelParams {
            transient_exposure_hours: hours,
            ..Default::default()
        };
        let sweep = Sweep::new(opts.samples, opts.seed).with_params(params);
        let (results, stats) = sweep.run_all(&[Scheme::Xed, Scheme::Chipkill]);
        total_stats = Some(match total_stats {
            None => stats,
            Some(acc) => stats.merge(&acc),
        });
        println!(
            "{:>12} {:>14} {:>14}",
            label,
            sci(results[0].failure_probability(7.0)),
            sci(results[1].failure_probability(7.0))
        );
    }
    rule(46);
    println!(
        "\nTransient large-granularity faults are ~5 FIT/chip vs 28 FIT permanent, so\n\
         even month-long exposure moves the floor only modestly — supporting the\n\
         paper's decision not to model scrubbing explicitly."
    );
    if let Some(stats) = total_stats {
        throughput_footer(&stats);
    }
}
