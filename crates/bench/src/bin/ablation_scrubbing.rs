//! Ablation: transient-fault exposure (scrub latency).
//!
//! The paper's model (and our default) assumes a corrected transient
//! fault's corruption is scrubbed essentially immediately — so two
//! transient faults never coexist. Real systems scrub on a patrol
//! interval. This sweep lets corrected transient corruption linger and
//! measures the reliability cost for the erasure-based schemes.
//!
//! `cargo run --release -p xed-bench --bin ablation_scrubbing`

use xed_bench::{rule, sci, Options};
use xed_faultsim::montecarlo::{MonteCarlo, MonteCarloConfig};
use xed_faultsim::schemes::{ModelParams, Scheme};

fn main() {
    let opts = Options::from_args();
    let windows: [(&str, f64); 5] = [
        ("immediate", 0.0),
        ("1 day", 24.0),
        ("1 week", 7.0 * 24.0),
        ("1 month", 30.0 * 24.0),
        ("never (7y)", 7.0 * 365.0 * 24.0),
    ];
    println!(
        "Ablation: XED and Chipkill failure probability vs transient-fault exposure\n\
         window before scrub ({} systems per point)\n",
        opts.samples
    );
    println!("{:>12} {:>14} {:>14}", "window", "XED", "Chipkill");
    rule(46);
    for (label, hours) in windows {
        let xed = run(Scheme::Xed, hours, opts.samples, opts.seed);
        let ck = run(Scheme::Chipkill, hours, opts.samples, opts.seed);
        println!("{:>12} {:>14} {:>14}", label, sci(xed), sci(ck));
    }
    rule(46);
    println!(
        "\nTransient large-granularity faults are ~5 FIT/chip vs 28 FIT permanent, so\n\
         even month-long exposure moves the floor only modestly — supporting the\n\
         paper's decision not to model scrubbing explicitly."
    );
}

fn run(scheme: Scheme, exposure: f64, samples: u64, seed: u64) -> f64 {
    let params = ModelParams {
        transient_exposure_hours: exposure,
        ..Default::default()
    };
    MonteCarlo::new(MonteCarloConfig {
        samples,
        seed,
        params,
        ..Default::default()
    })
    .run(scheme)
    .failure_probability(7.0)
}
