//! `mc_throughput`: benchmark trajectory harness for the Monte-Carlo
//! engine (DESIGN.md §9).
//!
//! Measures steady-state engine throughput — samples simulated per
//! wall-clock second — per scheme, as a thread-scaling curve, and for a
//! whole-suite `run_all` sweep sharing one work-stealing pool. Each
//! measurement is the best of `--repeats` runs (the container this runs
//! in shows run-to-run CPU contention noise; best-of-N recovers the
//! engine's actual speed). Results, including the speedup over the
//! pre-rewrite engine's recorded baseline, are written as JSON to
//! `--out` (default `BENCH_faultsim.json`).
//!
//! Throughput is reporting-only metadata: the simulated `SchemeResult`s
//! are bit-identical for any thread count, and this harness *asserts*
//! that across the thread-scaling sweep rather than trusting the tests.
//!
//! ```text
//! cargo run --release -p xed-bench --bin mc_throughput -- \
//!     [--samples N] [--seed N] [--repeats N] [--baseline SPS] \
//!     [--out PATH] [--smoke] [--no-telemetry] [--trace]
//! ```
//!
//! `--trace` enables the request-tracing span path (DESIGN.md §16) with
//! a live root span, so every work-stealing chunk records a
//! `scheduler_chunk` span into the flight rings — the configuration
//! `scripts/bench.sh` uses to bound tracing overhead against the
//! default run.

use std::fmt::Write as _;
use xed_bench::rule;
use xed_faultsim::engine::Sweep;
use xed_faultsim::montecarlo::{RunStats, SchemeResult};
use xed_faultsim::schemes::Scheme;
use xed_telemetry::trace::{next_span_id, next_trace_id, set_current, set_trace_enabled, SpanCtx};

/// Throughput of the engine before the counter-based-stream rewrite
/// (static partitioning, per-trial heap allocation): `Scheme::EccDimm`,
/// 1 M samples, seed 2016, measured on this container at commit f846d95.
/// The rewrite's acceptance bar is ≥3x this number.
const PRE_PR_BASELINE_SPS: f64 = 23_780_432.0;

struct Args {
    samples: u64,
    seed: u64,
    repeats: u32,
    baseline: f64,
    out: String,
    telemetry: bool,
    trace: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        samples: 1_000_000,
        seed: 2016,
        repeats: 5,
        baseline: PRE_PR_BASELINE_SPS,
        out: "BENCH_faultsim.json".to_string(),
        telemetry: true,
        trace: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut grab =
            |name: &str| -> String { it.next().unwrap_or_else(|| panic!("usage: {name} <value>")) };
        match arg.as_str() {
            "--samples" => args.samples = grab("--samples").parse().expect("--samples <u64>"),
            "--seed" => args.seed = grab("--seed").parse().expect("--seed <u64>"),
            "--repeats" => args.repeats = grab("--repeats").parse().expect("--repeats <u32>"),
            "--baseline" => args.baseline = grab("--baseline").parse().expect("--baseline <f64>"),
            "--out" => args.out = grab("--out"),
            "--no-telemetry" => args.telemetry = false,
            "--trace" => args.trace = true,
            "--smoke" => {
                // Quick non-gating CI smoke: exercise every code path in a
                // few hundred milliseconds; numbers are not representative.
                args.samples = 100_000;
                args.repeats = 1;
            }
            other => eprintln!("(ignoring unknown argument {other})"),
        }
    }
    assert!(args.repeats >= 1, "--repeats must be at least 1");
    args
}

/// One measured configuration: best-of-N stats plus the (invariant)
/// simulation outcome of the final run.
struct Measurement {
    stats: RunStats,
    results: Vec<SchemeResult>,
}

/// Runs `schemes` under `sweep` `repeats` times and keeps the fastest
/// run's stats (the results are identical across repeats by construction;
/// debug-asserted here).
fn best_of(sweep: &Sweep, schemes: &[Scheme], repeats: u32) -> Measurement {
    let (mut results, mut stats) = sweep.run_all(schemes);
    for _ in 1..repeats {
        let (r, s) = sweep.run_all(schemes);
        assert_eq!(r, results, "engine must be deterministic across repeats");
        if s.samples_per_sec > stats.samples_per_sec {
            stats = s;
        }
        results = r;
    }
    Measurement { stats, results }
}

fn main() {
    let args = parse_args();
    if !args.telemetry {
        // The ci.sh overhead check compares this path against the default
        // to bound the cost of the always-on telemetry counters.
        xed_telemetry::set_enabled(false);
    }
    if args.trace {
        // With recording on and a current span installed, every scheduler
        // chunk records a span — the worst-case tracing configuration the
        // bench.sh overhead check measures.
        set_trace_enabled(true);
        set_current(Some(SpanCtx {
            trace_id: next_trace_id(),
            span_id: next_span_id(),
        }));
    }
    let base = Sweep::new(args.samples, args.seed);

    println!("mc_throughput: Monte-Carlo engine benchmark");
    println!(
        "({} samples/scheme, seed {}, best of {} repeat(s))\n",
        args.samples, args.seed, args.repeats
    );

    // Per-scheme throughput (each scheme alone, default thread count).
    println!(
        "{:38} {:>14} {:>9} {:>10} {:>8} {:>10}",
        "scheme", "samples/sec", "ns/trial", "failures", "zero%", "rel ci95"
    );
    rule(95);
    let mut per_scheme: Vec<(Scheme, Measurement)> = Vec::new();
    for scheme in Scheme::ALL {
        let m = best_of(&base, &[scheme], args.repeats);
        let p = m.results[0].lifetime_failure_probability();
        let rel = if p > 0.0 {
            format!("{:.3}", m.results[0].confidence95() / p)
        } else {
            "inf".to_string()
        };
        println!(
            "{:38} {:>14.0} {:>9.1} {:>10} {:>7.1}% {:>10}",
            scheme.label(),
            m.stats.samples_per_sec,
            1e9 / m.stats.samples_per_sec,
            m.results[0].failures(),
            100.0 * m.stats.zero_fault_samples as f64 / m.stats.samples as f64,
            rel,
        );
        per_scheme.push((scheme, m));
    }
    rule(95);

    // Headline: EccDimm vs the pre-rewrite baseline.
    let headline = &per_scheme
        .iter()
        .find(|(s, _)| *s == Scheme::EccDimm)
        .expect("EccDimm is in Scheme::ALL")
        .1;
    let speedup = headline.stats.samples_per_sec / args.baseline;
    println!(
        "\nheadline (EccDimm): {:.0} samples/sec = {:.2}x over pre-rewrite baseline ({:.0})",
        headline.stats.samples_per_sec, speedup, args.baseline
    );

    // Thread-scaling curve; asserts the tentpole invariant as it goes.
    println!("\nthread scaling (EccDimm, results asserted bit-identical):");
    let mut scaling: Vec<(usize, RunStats)> = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let pinned = base.clone().with_threads(threads);
        let m = best_of(&pinned, &[Scheme::EccDimm], args.repeats);
        assert_eq!(
            m.results[0], headline.results[0],
            "thread count changed the simulation result"
        );
        println!(
            "  {threads} thread(s): {:>14.0} samples/sec",
            m.stats.samples_per_sec
        );
        scaling.push((threads, m.stats));
    }

    // Whole-suite sweep: all schemes sharing one work-stealing pool.
    let sweep = best_of(&base, &Scheme::ALL, args.repeats);
    for ((scheme, solo), swept) in per_scheme.iter().zip(&sweep.results) {
        assert_eq!(
            &solo.results[0], swept,
            "{scheme}: batched run diverged from solo run"
        );
    }
    println!(
        "\nrun_all ({} schemes, one pool): {:.0} samples/sec aggregate",
        Scheme::ALL.len(),
        sweep.stats.samples_per_sec
    );

    let json = render_json(&args, &per_scheme, headline, speedup, &scaling, &sweep);
    std::fs::write(&args.out, json).unwrap_or_else(|e| panic!("writing {}: {e}", args.out));
    println!("\nwrote {}", args.out);
}

/// Hand-rendered JSON (the workspace is dependency-free by design).
fn render_json(
    args: &Args,
    per_scheme: &[(Scheme, Measurement)],
    headline: &Measurement,
    speedup: f64,
    scaling: &[(usize, RunStats)],
    sweep: &Measurement,
) -> String {
    let mut j = String::new();
    j.push_str("{\n");
    let _ = writeln!(j, "  \"schema\": \"xed-report-v1\",");
    let _ = writeln!(j, "  \"report\": \"mc_throughput\",");
    let _ = writeln!(j, "  \"samples_per_scheme\": {},", args.samples);
    let _ = writeln!(j, "  \"seed\": {},", args.seed);
    let _ = writeln!(j, "  \"repeats\": {},", args.repeats);
    let _ = writeln!(j, "  \"baseline_samples_per_sec\": {:.0},", args.baseline);
    let _ = writeln!(j, "  \"headline\": {{");
    let _ = writeln!(j, "    \"scheme\": \"EccDimm\",");
    let _ = writeln!(
        j,
        "    \"samples_per_sec\": {:.0},",
        headline.stats.samples_per_sec
    );
    let _ = writeln!(
        j,
        "    \"ns_per_trial\": {:.2},",
        1e9 / headline.stats.samples_per_sec
    );
    let _ = writeln!(j, "    \"speedup_vs_baseline\": {speedup:.2},");
    let _ = writeln!(j, "    \"threads\": {}", headline.stats.threads);
    let _ = writeln!(j, "  }},");
    let _ = writeln!(j, "  \"per_scheme\": [");
    for (i, (scheme, m)) in per_scheme.iter().enumerate() {
        let comma = if i + 1 < per_scheme.len() { "," } else { "" };
        let r = &m.results[0];
        let p = r.lifetime_failure_probability();
        // Relative CI width renders null when no failure was observed —
        // exactly the plain-MC blind spot the mc_tail lane quantifies.
        let rel = if p > 0.0 {
            format!("{:.6}", r.confidence95() / p)
        } else {
            "null".to_string()
        };
        let _ = writeln!(
            j,
            "    {{\"scheme\": \"{scheme:?}\", \"samples_per_sec\": {:.0}, \
             \"failures\": {}, \"due\": {}, \"sdc\": {}, \"p_fail\": {:.3e}, \
             \"ci95\": {:.3e}, \"ci99\": {:.3e}, \"relative_ci95\": {rel}, \
             \"zero_fault_fraction\": {:.4}}}{comma}",
            m.stats.samples_per_sec,
            r.failures(),
            r.due,
            r.sdc,
            p,
            r.confidence95(),
            r.confidence99(),
            m.stats.zero_fault_samples as f64 / m.stats.samples as f64,
        );
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"thread_scaling\": [");
    for (i, (threads, stats)) in scaling.iter().enumerate() {
        let comma = if i + 1 < scaling.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    {{\"threads\": {threads}, \"samples_per_sec\": {:.0}, \
             \"identical_result\": true}}{comma}",
            stats.samples_per_sec
        );
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"run_all\": {{");
    let _ = writeln!(j, "    \"schemes\": {},", Scheme::ALL.len());
    let _ = writeln!(j, "    \"total_samples\": {},", sweep.stats.samples);
    let _ = writeln!(
        j,
        "    \"samples_per_sec\": {:.0}",
        sweep.stats.samples_per_sec
    );
    let _ = writeln!(j, "  }},");
    let _ = writeln!(
        j,
        "  \"telemetry\": {}",
        xed_telemetry::snapshot().active_to_json_array()
    );
    j.push_str("}\n");
    j
}
