//! Table IV: the SDC and DUE budget of XED over a 7-year period.
//!
//! Paper values (per 9-chip DIMM):
//! * scaling-related faults — no SDC or DUE;
//! * row/column/bank failure (Inter-Line misidentification) — 1.4e-13 SDC;
//! * word failure (transient, on-die miss, diagnosis fails) — 6.1e-6 DUE;
//! * data loss from multi-chip failures — 5.8e-4 (the reliability floor).
//!
//! `cargo run --release -p xed-bench --bin table4_sdc_due`

use xed_bench::{rule, sci, throughput_footer, Options};
use xed_faultsim::analytic::xed_vulnerability;
use xed_faultsim::engine::Sweep;
use xed_faultsim::fit::FitRates;
use xed_faultsim::schemes::Scheme;
use xed_faultsim::system::SystemConfig;

fn main() {
    let opts = Options::from_args();
    let rates = FitRates::table_i();
    let cfg = SystemConfig::x8_ecc_dimm();
    let v = xed_vulnerability(&rates, &cfg, 9, 0.008, 7.0);

    println!("Table IV: SDC and DUE rate of XED (per 9-chip DIMM, 7 years)\n");
    println!(
        "{:48} {:>14} {:>12}",
        "source of vulnerability", "ours", "paper"
    );
    rule(80);
    println!(
        "{:48} {:>14} {:>12}",
        "scaling-related faults", "none", "none"
    );
    println!(
        "{:48} {:>14} {:>12}",
        "row/column/bank failure (SDC)",
        sci(v.sdc_diagnosis),
        "1.4e-13"
    );
    println!(
        "{:48} {:>14} {:>12}",
        "transient word failure (DUE)",
        sci(v.due_word_fault),
        "6.1e-6"
    );
    println!(
        "{:48} {:>14} {:>12}",
        "data loss from multi-chip failures",
        sci(v.multi_chip_loss),
        "5.8e-4"
    );
    rule(80);

    // Cross-check the analytic multi-chip floor and DUE split against the
    // full Monte-Carlo (which reports whole-system = 8 DIMM-rank numbers).
    let report = Sweep::new(opts.samples, opts.seed).run_one(Scheme::Xed);
    let r = &report.result;
    println!(
        "\nMonte-Carlo cross-check ({} systems of 8 DIMM-ranks):",
        opts.samples
    );
    println!(
        "  whole-system P(fail,7y) = {}   (analytic floor x 8 ranks = {})",
        sci(r.failure_probability(7.0)),
        sci(v.multi_chip_loss)
    );
    println!("  all failures were DUE: {} DUE, {} SDC", r.due, r.sdc);
    throughput_footer(&report.stats);
}
