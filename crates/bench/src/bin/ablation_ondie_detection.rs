//! Ablation: how strong must the on-die code's multi-bit *detection* be?
//!
//! XED hinges on the on-die ECC flagging multi-bit errors so the chip can
//! send its catch-word (Section V-E argues for CRC8-ATM over Hamming for
//! this reason). This sweep varies the on-die detection miss rate from the
//! paper's 0.8% (an 8-bit-syndrome code's design point) up to 50% and
//! measures XED's system failure probability and DUE composition.
//!
//! `cargo run --release -p xed-bench --bin ablation_ondie_detection`

use xed_bench::{rule, sci, throughput_footer, Options};
use xed_faultsim::engine::Sweep;
use xed_faultsim::montecarlo::RunStats;
use xed_faultsim::schemes::{ModelParams, Scheme};

fn main() {
    let opts = Options::from_args();
    println!(
        "Ablation: XED reliability vs on-die multi-bit detection miss rate\n\
         ({} systems per point)\n",
        opts.samples
    );
    println!(
        "{:>12} {:>14} {:>10} {:>10}",
        "miss rate", "P(fail,7y)", "DUE", "SDC"
    );
    rule(52);
    let mut total_stats: Option<RunStats> = None;
    for miss in [0.0, 0.004, 0.008, 0.05, 0.2, 0.5] {
        let params = ModelParams {
            on_die_miss: miss,
            ..Default::default()
        };
        let report = Sweep::new(opts.samples, opts.seed)
            .with_params(params)
            .run_one(Scheme::Xed);
        let r = &report.result;
        total_stats = Some(match total_stats {
            None => report.stats,
            Some(acc) => report.stats.merge(&acc),
        });
        println!(
            "{:>11}% {:>14} {:>10} {:>10}",
            miss * 100.0,
            sci(r.failure_probability(7.0)),
            r.due,
            r.sdc
        );
    }
    rule(52);
    println!(
        "\nAt the paper's 0.8% the transient-word DUE term is negligible next to the\n\
         multi-chip floor; by tens of percent it dominates — quantifying why the\n\
         paper recommends a burst-proof code (CRC8-ATM) for the on-die engine."
    );
    if let Some(stats) = total_stats {
        throughput_footer(&stats);
    }
}
