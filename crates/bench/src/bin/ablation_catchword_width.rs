//! Ablation: catch-word width vs collision behavior.
//!
//! Section IX-A notes that x4 devices shrink the catch-word to 32 bits,
//! collapsing the expected time between collisions from millennia to
//! seconds–hours — and argues this is fine because collisions are
//! detected and re-keyed in hundreds of nanoseconds. This sweep computes
//! the collision statistics across widths and *functionally demonstrates*
//! a 32-bit collision storm on the XED-on-Chipkill system.
//!
//! `cargo run --release -p xed-bench --bin ablation_catchword_width [--seed N]`

use xed_bench::{rule, Options};
use xed_core::analysis::CollisionModel;
use xed_core::fault::{FaultKind, InjectedFault};
use xed_core::xed_chipkill::XedChipkillSystem;

fn main() {
    let opts = Options::from_args();
    println!("Ablation: catch-word width vs expected collision interval (write every 4 ns)");
    println!("seed: {}\n", opts.seed);
    println!(
        "{:>8} {:>24} {:>24}",
        "bits", "mean time to collision", "P(collision in 7y)"
    );
    rule(60);
    for bits in [16u32, 24, 32, 40, 48, 56, 64] {
        let m = CollisionModel {
            word_bits: bits,
            write_interval_secs: 4e-9,
        };
        let mean = m.mean_secs_to_collision();
        let human = if mean < 120.0 {
            format!("{mean:.2} s")
        } else if mean < 86400.0 * 2.0 {
            format!("{:.2} h", mean / 3600.0)
        } else {
            format!("{:.2e} years", mean / (365.25 * 86400.0))
        };
        println!("{:>8} {:>24} {:>24.3e}", bits, human, m.p_collision_by(7.0));
    }
    rule(60);

    // Functional demonstration: hammer the 32-bit XED-on-Chipkill system
    // with lines containing its own catch-words; every collision must be
    // detected, re-keyed and served correctly.
    let mut sys = XedChipkillSystem::new(opts.seed);
    let mut collisions = 0u64;
    for round in 0..50u64 {
        let victim = (round % 16) as usize;
        let mut line = [0x1111_1111u32 * (round as u32 % 14 + 1); 16];
        line[victim] = sys.catch_word(victim);
        sys.write_line(round % 8, &line);
        let out = sys
            .read_line(round % 8)
            .expect("collisions are always recoverable");
        assert_eq!(out.data, line, "round {round}");
        if out.collision {
            collisions += 1;
        }
    }
    println!(
        "\nfunctional check: 50 deliberate 32-bit collisions on XED+Chipkill -> \
         {collisions} detected+re-keyed, 0 data errors"
    );

    // And collisions coexist safely with a real chip failure (derived
    // stream, so the two systems never share catch-words).
    let mut sys = XedChipkillSystem::new(opts.seed.wrapping_add(1));
    sys.inject_fault(9, InjectedFault::chip(FaultKind::Permanent));
    let mut line = [7u32; 16];
    line[2] = sys.catch_word(2);
    sys.write_line(0, &line);
    let out = sys
        .read_line(0)
        .expect("1 failure + 1 collision = 2 erasures, correctable");
    assert_eq!(out.data, line);
    println!("functional check: chip failure + simultaneous collision -> corrected");
}
