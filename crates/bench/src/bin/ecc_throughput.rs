//! `ecc_throughput`: end-to-end decode-throughput harness for the
//! coding-theory kernels (DESIGN.md §10).
//!
//! Measures words decoded per wall-clock second for the word-parallel,
//! allocation-free kernels in `xed-ecc` — (72,64) Hamming, (72,64)
//! CRC8-ATM, RS(18,16) error and erasure decoding, and the full 8-beat XED
//! line decode — and, in the same process, the seed's bit-serial /
//! `Vec`-allocating implementations preserved in `xed_ecc::reference`.
//! The baseline is therefore *measured live*, not a recorded constant: the
//! reference module IS the pre-PR hot path, so the reported speedup is the
//! exact ratio the rewrite bought on this machine. Each measurement is the
//! best of `--repeats` passes (best-of-N shrugs off container CPU-
//! contention noise), and every pass folds decode outcomes into a checksum
//! that is asserted identical across repeats and across implementations —
//! the harness re-proves kernel equivalence while it times them.
//!
//! ```text
//! cargo run --release -p xed-bench --bin ecc_throughput -- \
//!     [--samples N] [--seed N] [--repeats N] [--out PATH] [--smoke] [--no-telemetry]
//! ```

use std::fmt::Write as _;
use std::time::Instant;
use xed_bench::rule;
use xed_ecc::gf::Field;
use xed_ecc::reference::{RefCrc8Atm, RefHamming7264};
use xed_ecc::rs::{ReedSolomon, RsScratch};
use xed_ecc::secded::{DecodeOutcome, SecDed, BEATS_PER_LINE};
use xed_ecc::{CodeWord72, Crc8Atm, Hamming7264};

struct Args {
    samples: u64,
    seed: u64,
    repeats: u32,
    out: String,
    telemetry: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        samples: 1_000_000,
        seed: 2016,
        repeats: 5,
        out: "BENCH_ecc.json".to_string(),
        telemetry: true,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut grab =
            |name: &str| -> String { it.next().unwrap_or_else(|| panic!("usage: {name} <value>")) };
        match arg.as_str() {
            "--samples" => args.samples = grab("--samples").parse().expect("--samples <u64>"),
            "--seed" => args.seed = grab("--seed").parse().expect("--seed <u64>"),
            "--repeats" => args.repeats = grab("--repeats").parse().expect("--repeats <u32>"),
            "--out" => args.out = grab("--out"),
            "--no-telemetry" => args.telemetry = false,
            "--smoke" => {
                // Quick non-gating CI smoke: exercise every code path in a
                // few hundred milliseconds; numbers are not representative.
                args.samples = 40_000;
                args.repeats = 1;
            }
            other => eprintln!("(ignoring unknown argument {other})"),
        }
    }
    assert!(args.repeats >= 1, "--repeats must be at least 1");
    args
}

/// splitmix64: the deterministic workload generator (no RNG state).
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Received (72,64) words with the access path's outcome mix: mostly
/// clean, a slice of single-bit corrections, a sliver of double-bit DUEs.
fn gen_words<C: SecDed>(code: &C, seed: u64, n: usize) -> Vec<CodeWord72> {
    (0..n)
        .map(|i| {
            let h = mix64(seed ^ i as u64);
            let w = code.encode(mix64(h));
            match h % 100 {
                0..=79 => w,
                80..=94 => w.with_bit_flipped((h >> 32) as u32 % 72),
                _ => {
                    let a = (h >> 32) as u32 % 72;
                    let b = (a + 1 + (h >> 40) as u32 % 71) % 72;
                    w.with_bit_flipped(a).with_bit_flipped(b)
                }
            }
        })
        .collect()
}

/// One throughput row: a fast and a reference pass over the same workload.
struct Row {
    label: &'static str,
    words: u64,
    fast_wps: f64,
    ref_wps: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.fast_wps / self.ref_wps
    }
}

/// Times `pass` (which returns a fold checksum) `repeats` times; returns
/// (best words/sec, checksum), asserting the checksum never changes.
fn best_of<F: FnMut() -> u64>(words: u64, repeats: u32, mut pass: F) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut checksum = None;
    for _ in 0..repeats {
        let t0 = Instant::now();
        let c = pass();
        let dt = t0.elapsed().as_secs_f64();
        match checksum {
            None => checksum = Some(c),
            Some(prev) => assert_eq!(prev, c, "pass must be deterministic across repeats"),
        }
        best = best.min(dt);
    }
    (words as f64 / best, checksum.unwrap())
}

fn fold_outcome(acc: u64, out: DecodeOutcome) -> u64 {
    match out {
        DecodeOutcome::Clean { data } => acc ^ data,
        DecodeOutcome::Corrected { data, bit } => acc ^ data ^ u64::from(bit),
        DecodeOutcome::Detected => acc.rotate_left(1) ^ 0xD0E5_0DE7_EC7E_D000,
    }
}

/// Benchmarks a fast/reference SecDed pair over the same received words.
fn secded_row<F: SecDed, R: SecDed>(
    label: &'static str,
    fast: &F,
    reference: &R,
    words: &[CodeWord72],
    repeats: u32,
) -> Row {
    let n = words.len() as u64;
    let (fast_wps, fast_sum) = best_of(n, repeats, || {
        words
            .iter()
            .fold(0u64, |acc, &w| fold_outcome(acc, fast.decode(w)))
    });
    let (ref_wps, ref_sum) = best_of(n, repeats, || {
        words
            .iter()
            .fold(0u64, |acc, &w| fold_outcome(acc, reference.decode(w)))
    });
    assert_eq!(fast_sum, ref_sum, "{label}: kernels disagree");
    Row {
        label,
        words: n,
        fast_wps,
        ref_wps,
    }
}

/// Words per RS workload buffer. Sized to stay cache-resident (16 Ki
/// words ≈ 288 KiB of codewords + 512 KiB of erasure sets): the row
/// measures *decoder* throughput, which mirrors the real access path where
/// a controller decodes a line the DRAM model just produced — still warm —
/// rather than DRAM-streaming a hundred-megabyte synthetic array. Both the
/// fast and the reference pass loop the same buffer the same number of
/// times, so the ratio is unaffected.
const RS_BUF_WORDS: usize = 16 * 1024;

/// RS(18,16) received words: codeword + (erasure indices, count) per item.
/// Erasure sets are inline fixed arrays, not per-word `Vec`s, so a
/// measurement pass walks plain contiguous memory.
struct RsWorkload {
    received: Vec<[u8; 18]>,
    erasures: Vec<([usize; 2], usize)>,
}

/// Workload flavor for [`gen_rs`].
#[derive(Clone, Copy, PartialEq, Eq)]
enum RsMix {
    /// The access path's outcome mix (mirrors [`gen_words`]): 80% clean
    /// words, 20% with one unknown-position symbol error.
    AccessPath,
    /// Every word carries one unknown-position symbol error — the full
    /// syndrome → BM → Chien → Forney pipeline on each decode.
    AllErrors,
    /// Every word has two erased chips (XED catch-word erasure decoding).
    Erasures,
}

fn gen_rs(rs: &ReedSolomon, seed: u64, n: usize, mix: RsMix) -> RsWorkload {
    let mut received = Vec::with_capacity(n);
    let mut erasures = Vec::with_capacity(n);
    let mut buf = [0u8; 18];
    for i in 0..n {
        let h = mix64(seed ^ (i as u64) << 1);
        let mut data = [0u8; 16];
        for (j, d) in data.iter_mut().enumerate() {
            *d = (mix64(h ^ j as u64) & 0xFF) as u8;
        }
        rs.encode_into(&data, &mut buf);
        match mix {
            RsMix::Erasures => {
                // Two erased chips with arbitrary garbage.
                let a = (h >> 8) as usize % 18;
                let b = (a + 1 + (h >> 16) as usize % 17) % 18;
                buf[a] = (h >> 24) as u8;
                buf[b] = (h >> 32) as u8;
                erasures.push(([a.min(b), a.max(b)], 2));
            }
            RsMix::AccessPath | RsMix::AllErrors => {
                let errored = mix == RsMix::AllErrors || h % 10 < 2;
                if errored {
                    let p = (h >> 8) as usize % 18;
                    buf[p] ^= ((h >> 24) as u8).max(1);
                }
                erasures.push(([0, 0], 0));
            }
        }
        received.push(buf);
    }
    RsWorkload { received, erasures }
}

fn rs_row(
    label: &'static str,
    rs: &ReedSolomon,
    wl: &RsWorkload,
    passes: usize,
    repeats: u32,
) -> Row {
    let n = (wl.received.len() * passes) as u64;
    let mut scratch = RsScratch::new();
    let (fast_wps, fast_sum) = best_of(n, repeats, || {
        let mut acc = 0u64;
        for _ in 0..passes {
            acc = wl
                .received
                .iter()
                .zip(&wl.erasures)
                .fold(acc, |acc, (rx, &(er, ne))| {
                    match rs.decode_with(rx, &er[..ne], &mut scratch) {
                        Ok(d) => d
                            .codeword
                            .iter()
                            .fold(acc, |a, &s| a.wrapping_mul(31) ^ u64::from(s)),
                        Err(_) => acc.rotate_left(3) ^ 0xBAD,
                    }
                });
        }
        acc
    });
    let (ref_wps, ref_sum) = best_of(n, repeats, || {
        let mut acc = 0u64;
        for _ in 0..passes {
            acc = wl
                .received
                .iter()
                .zip(&wl.erasures)
                .fold(acc, |acc, (rx, &(er, ne))| match rs.decode(rx, &er[..ne]) {
                    Ok(d) => d
                        .codeword
                        .iter()
                        .fold(acc, |a, &s| a.wrapping_mul(31) ^ u64::from(s)),
                    Err(_) => acc.rotate_left(3) ^ 0xBAD,
                });
        }
        acc
    });
    assert_eq!(fast_sum, ref_sum, "{label}: decoders disagree");
    Row {
        label,
        words: n,
        fast_wps,
        ref_wps,
    }
}

/// Full XED line decode: 8 beats batched vs 8 reference decodes.
fn line_row(seed: u64, lines: usize, repeats: u32) -> Row {
    let fast = Crc8Atm::new();
    let reference = RefCrc8Atm::new();
    let words = gen_words(&fast, seed, lines * BEATS_PER_LINE);
    let beats: Vec<[CodeWord72; BEATS_PER_LINE]> = words
        .chunks_exact(BEATS_PER_LINE)
        .map(|c| {
            let mut line = [CodeWord72::default(); BEATS_PER_LINE];
            line.copy_from_slice(c);
            line
        })
        .collect();
    let n = (lines * BEATS_PER_LINE) as u64;
    let (fast_wps, fast_sum) = best_of(n, repeats, || {
        beats.iter().fold(0u64, |acc, line| {
            let out = fast.decode_line(line);
            let d = out.data.iter().fold(acc, |a, &w| a ^ w.rotate_left(7));
            d ^ (u64::from(out.corrected_beats) << 8) ^ u64::from(out.bad_beats)
        })
    });
    let (ref_wps, ref_sum) = best_of(n, repeats, || {
        beats.iter().fold(0u64, |acc, line| {
            // The pre-PR shape: one bit-serial decode per beat.
            let mut corrected = 0u8;
            let mut bad = 0u8;
            let mut d = acc;
            for (i, &w) in line.iter().enumerate() {
                match reference.decode(w) {
                    DecodeOutcome::Clean { data } => d ^= data.rotate_left(7),
                    DecodeOutcome::Corrected { data, .. } => {
                        d ^= data.rotate_left(7);
                        corrected |= 1 << i;
                    }
                    DecodeOutcome::Detected => {
                        d ^= w.data().rotate_left(7);
                        bad |= 1 << i;
                    }
                }
            }
            d ^ (u64::from(corrected) << 8) ^ u64::from(bad)
        })
    });
    assert_eq!(fast_sum, ref_sum, "line decode: kernels disagree");
    Row {
        label: "XED line decode (8 beats, CRC8)",
        words: n,
        fast_wps,
        ref_wps,
    }
}

fn main() {
    let args = parse_args();
    if !args.telemetry {
        xed_telemetry::set_enabled(false);
    }
    println!("ecc_throughput: word-parallel ECC kernel benchmark");
    println!(
        "({} words/kernel, seed {}, best of {} repeat(s); baseline = bit-serial \
         reference kernels measured live)\n",
        args.samples, args.seed, args.repeats
    );

    let n = args.samples as usize;
    let repeats = args.repeats;
    let mut rows: Vec<Row> = Vec::new();

    let hamming_words = gen_words(&Hamming7264::new(), args.seed, n);
    rows.push(secded_row(
        "Hamming(72,64) decode",
        &Hamming7264::new(),
        &RefHamming7264::new(),
        &hamming_words,
        repeats,
    ));
    let crc_words = gen_words(&Crc8Atm::new(), args.seed ^ 0xC8C8, n);
    rows.push(secded_row(
        "CRC8-ATM(72,64) decode",
        &Crc8Atm::new(),
        &RefCrc8Atm::new(),
        &crc_words,
        repeats,
    ));

    let rs = ReedSolomon::new(Field::gf256(), 18, 16);
    let rs_n = (n / 4).max(1);
    let rs_len = rs_n.min(RS_BUF_WORDS);
    let rs_passes = (rs_n / rs_len).max(1);
    let mixed = gen_rs(&rs, args.seed ^ 0x1816, rs_len, RsMix::AccessPath);
    rows.push(rs_row(
        "RS(18,16) decode (access-path mix)",
        &rs,
        &mixed,
        rs_passes,
        repeats,
    ));
    let errors = gen_rs(&rs, args.seed ^ 0xA11E, rs_len, RsMix::AllErrors);
    rows.push(rs_row(
        "RS(18,16) decode (all errored)",
        &rs,
        &errors,
        rs_passes,
        repeats,
    ));
    let erasures = gen_rs(&rs, args.seed ^ 0xE4A5, rs_len, RsMix::Erasures);
    rows.push(rs_row(
        "RS(18,16) erasure decode (2 chips)",
        &rs,
        &erasures,
        rs_passes,
        repeats,
    ));

    rows.push(line_row(args.seed ^ 0x11FE, n / BEATS_PER_LINE, repeats));

    println!(
        "{:34} {:>10} {:>14} {:>14} {:>8}",
        "kernel", "words", "words/sec", "ref words/sec", "speedup"
    );
    rule(84);
    for r in &rows {
        println!(
            "{:34} {:>10} {:>14.0} {:>14.0} {:>7.2}x",
            r.label,
            r.words,
            r.fast_wps,
            r.ref_wps,
            r.speedup()
        );
    }
    rule(84);

    let hamming = &rows[0];
    let rs_mix = &rows[2];
    let rs_err = &rows[3];
    println!(
        "\nheadline: Hamming decode {:.2}x, RS(18,16) decode {:.2}x (access-path mix; \
         {:.2}x all-errored) over the pre-PR bit-serial kernels",
        hamming.speedup(),
        rs_mix.speedup(),
        rs_err.speedup()
    );

    let json = render_json(&args, &rows);
    std::fs::write(&args.out, json).unwrap_or_else(|e| panic!("writing {}: {e}", args.out));
    println!("wrote {}", args.out);
}

/// Hand-rendered JSON (the workspace is dependency-free by design).
fn render_json(args: &Args, rows: &[Row]) -> String {
    let mut j = String::new();
    j.push_str("{\n");
    let _ = writeln!(j, "  \"schema\": \"xed-report-v1\",");
    let _ = writeln!(j, "  \"report\": \"ecc_throughput\",");
    let _ = writeln!(j, "  \"samples\": {},", args.samples);
    let _ = writeln!(j, "  \"seed\": {},", args.seed);
    let _ = writeln!(j, "  \"repeats\": {},", args.repeats);
    let _ = writeln!(
        j,
        "  \"baseline\": \"bit-serial reference kernels, measured live in-process\","
    );
    let _ = writeln!(j, "  \"headline\": {{");
    let _ = writeln!(
        j,
        "    \"hamming_decode_speedup\": {:.2},",
        rows[0].speedup()
    );
    let _ = writeln!(
        j,
        "    \"rs_18_16_decode_speedup\": {:.2},",
        rows[2].speedup()
    );
    let _ = writeln!(
        j,
        "    \"rs_18_16_all_errored_decode_speedup\": {:.2}",
        rows[3].speedup()
    );
    let _ = writeln!(j, "  }},");
    let _ = writeln!(j, "  \"kernels\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    {{\"kernel\": \"{}\", \"words\": {}, \"words_per_sec\": {:.0}, \
             \"ref_words_per_sec\": {:.0}, \"speedup\": {:.2}}}{comma}",
            r.label,
            r.words,
            r.fast_wps,
            r.ref_wps,
            r.speedup()
        );
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(
        j,
        "  \"telemetry\": {}",
        xed_telemetry::snapshot().active_to_json_array()
    );
    j.push_str("}\n");
    j
}
