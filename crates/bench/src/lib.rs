//! Shared infrastructure for the reproduction binaries.
//!
//! Each paper table/figure has a binary under `src/bin/` (see DESIGN.md §5
//! for the experiment index). The binaries share simple command-line
//! handling (`--samples`, `--instructions`, `--seed`, `--quick`) and small
//! formatting helpers used to render results the way the paper reports
//! them.

use std::env;

pub mod timing;

pub use timing::{engine_footer, write_reliability_sidecar, Report, J};

/// Command-line options shared by the reproduction binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Options {
    /// Monte-Carlo samples per scheme (reliability experiments).
    pub samples: u64,
    /// Instructions per core (performance experiments).
    pub instructions: u64,
    /// RNG seed.
    pub seed: u64,
    /// Monte-Carlo trials per Table II cell.
    pub trials: u64,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            samples: 2_000_000,
            instructions: 200_000,
            seed: 2016,
            trials: 1_000_000,
        }
    }
}

impl Options {
    /// Parses `--samples N`, `--instructions N`, `--trials N`, `--seed N`
    /// and `--quick` from the process arguments; everything else is
    /// ignored with a note.
    ///
    /// # Panics
    ///
    /// Panics (with a usage message) on a malformed numeric value.
    pub fn from_args() -> Self {
        let mut opts = Self::default();
        let mut args = env::args().skip(1);
        while let Some(arg) = args.next() {
            let mut grab = |name: &str| -> u64 {
                args.next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("usage: {name} <number>"))
            };
            match arg.as_str() {
                "--samples" => opts.samples = grab("--samples"),
                "--instructions" => opts.instructions = grab("--instructions"),
                "--seed" => opts.seed = grab("--seed"),
                "--trials" => opts.trials = grab("--trials"),
                "--quick" => {
                    opts.samples = 200_000;
                    opts.instructions = 50_000;
                    opts.trials = 100_000;
                }
                other => eprintln!("(ignoring unknown argument {other})"),
            }
        }
        opts
    }
}

/// Prints a rule line sized to `width`.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Prints the engine-throughput footer shared by the Monte-Carlo
/// binaries (the text twin of [`Report::engine`]; both render from
/// [`timing::engine_footer`]'s data).
pub fn throughput_footer(stats: &xed_faultsim::montecarlo::RunStats) {
    println!("{}", engine_footer(stats));
}

/// Formats a probability in the scientific style the paper's figures use.
pub fn sci(p: f64) -> String {
    if p == 0.0 {
        "0 (none observed)".to_string()
    } else {
        format!("{p:.2e}")
    }
}

/// Formats a ratio as `N.NNx`.
pub fn ratio(r: f64) -> String {
    format!("{r:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_reasonable() {
        let o = Options::default();
        assert!(o.samples >= 100_000);
        assert!(o.instructions >= 10_000);
    }

    #[test]
    fn sci_formats() {
        assert_eq!(sci(0.0), "0 (none observed)");
        assert_eq!(sci(1.234e-4), "1.23e-4");
    }

    #[test]
    fn ratio_formats() {
        assert_eq!(ratio(1.21), "1.21x");
    }
}
