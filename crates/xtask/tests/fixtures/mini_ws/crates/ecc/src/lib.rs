//! Fixture for the xed-analyze integration tests: the `ecc-decode` hot
//! group with seeded XA100/XA101 violations. This crate is never
//! compiled; only its token stream matters.

pub struct SecDed;

impl SecDed {
    /// Seeded: a panic macro and an unjustified non-literal index.
    pub fn decode_line(&self, word: u64, at: usize, table: &[u64]) -> u64 {
        if word == 0 {
            panic!("zero word"); // seed XA100 (panic macro)
        }
        table[at] // seed XA100 (unjustified index)
    }
}

pub struct SyndromeCode;

impl SyndromeCode {
    /// Clean: the `ecc-infer` hot group must prove this closure with no
    /// findings (the seeded violations all live in `ecc-decode`).
    pub fn syndrome(&self, data: u64, check: u32) -> u32 {
        let mut syn = check;
        let mut rest = data;
        while rest != 0 {
            syn ^= (rest & 1) as u32;
            rest >>= 1;
        }
        syn
    }

    /// Clean: calls only `syndrome` above.
    pub fn decode(&self, data: u64, check: u32) -> u32 {
        self.syndrome(data, check)
    }
}

pub struct ReedSolomon;

impl ReedSolomon {
    /// Seeded: a `format!` allocation, plus a transitive unwrap through
    /// the `first_symbol` helper below.
    pub fn decode_with(&self, received: &[u8]) -> usize {
        let label = format!("n={}", received.len()); // seed XA101 (format macro)
        first_symbol(received) as usize + label.len()
    }
}

/// Reached only from `ReedSolomon::decode_with`; the unwrap here must
/// be reported transitively under the `ecc-decode` group.
fn first_symbol(received: &[u8]) -> u8 {
    received.first().copied().unwrap() // seed XA100 (transitive unwrap)
}
