//! Fixture for the xed-analyze integration tests: the full
//! `telemetry-write` hot group, the reconciliation boundaries (one
//! seeded ordering violation), and the metric registry module. This
//! crate is never compiled; only its token stream matters.

pub mod registry;

use core::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Hot: single Relaxed flag read.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Boundary: publication of the enable flag.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Release);
}

pub struct Counter {
    cell: AtomicU64,
}

impl Counter {
    /// Hot: Relaxed accumulate.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Hot: Relaxed increment.
    pub fn incr(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Boundary — seeded: a Relaxed load where Acquire is required.
    pub fn value(&self) -> u64 {
        self.cell.load(Ordering::Relaxed) // seed XA102 (boundary not Acquire)
    }

    /// Boundary: Release clear.
    pub fn reset(&self) {
        self.cell.store(0, Ordering::Release);
    }
}

pub struct Histogram {
    buckets: [AtomicU64; 8],
    total: AtomicU64,
    accum: AtomicU64,
    high: AtomicU64,
}

impl Histogram {
    /// Hot: Relaxed bucket bump.
    pub fn record(&self, v: u64) {
        let b = (v as usize).min(7);
        // indexing: b is clamped to 7, within the 8 fixture buckets.
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.accum.fetch_add(v, Ordering::Relaxed);
        self.high.fetch_max(v, Ordering::Relaxed);
    }

    /// Boundary: Acquire read of one bucket.
    pub fn bucket(&self, i: usize) -> u64 {
        // indexing: i is masked into the 8 fixture buckets.
        self.buckets[i & 7].load(Ordering::Acquire)
    }

    /// Boundary: Acquire totals snapshot.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Acquire)
    }

    /// Boundary: Acquire running sum.
    pub fn sum(&self) -> u64 {
        self.accum.load(Ordering::Acquire)
    }

    /// Boundary: Acquire high-water mark.
    pub fn max(&self) -> u64 {
        self.high.load(Ordering::Acquire)
    }

    /// Boundary: Acquire sample of one bucket.
    pub fn sample(&self, i: usize) -> u64 {
        // indexing: i is masked into the 8 fixture buckets.
        self.buckets[i & 7].load(Ordering::Acquire)
    }

    /// Boundary: Release clear.
    pub fn reset(&self) {
        self.total.store(0, Ordering::Release);
    }
}

pub struct Ring {
    slots: [u64; 16],
    head: usize,
}

impl Ring {
    /// Hot: overwrite the head slot.
    pub fn push(&mut self, v: u64) {
        // indexing: head is masked into the 16 fixture slots.
        self.slots[self.head & 15] = v;
        self.head = self.head.wrapping_add(1);
    }

    /// Hot: alias used by span recording.
    pub fn record(&mut self, v: u64) {
        self.push(v);
    }
}

pub struct Tallies {
    cells: [u64; 4],
}

impl Tallies {
    /// Hot: bounded slot add.
    pub fn add(&mut self, slot: usize, n: u64) {
        // indexing: slot is masked into the 4 fixture cells.
        self.cells[slot & 3] += n;
    }

    /// Hot: bounded slot increment.
    pub fn bump(&mut self, slot: usize) {
        self.add(slot, 1);
    }

    /// Hot: fold another shard in.
    pub fn merge_from(&mut self, other: &Tallies) {
        for i in 0..4 {
            // indexing: i ranges over the 4 fixture cells.
            self.cells[i] += other.cells[i];
        }
    }
}

pub struct Span {
    begun: u64,
}

impl Span {
    /// Hot: stamp the start tick.
    pub fn start(&mut self, now: u64) {
        self.begun = now;
    }

    /// Hot: close out into a histogram.
    pub fn finish(&self, hist: &Histogram, now: u64) {
        hist.record(now.wrapping_sub(self.begun));
    }
}

/// Hot: free-function tick.
pub fn tick(c: &Counter) {
    c.incr();
}

/// Hot: free-function count add.
pub fn count(c: &Counter, n: u64) {
    c.add(n);
}

/// Hot: free-function histogram observation.
pub fn observe(h: &Histogram, v: u64) {
    h.record(v);
}

pub struct TraceBuf {
    events: [u64; 4],
    head: usize,
}

impl TraceBuf {
    /// Hot: overwrite-oldest span-event store.
    pub fn record(&mut self, event: u64) {
        // indexing: head is kept < 4 by the wrap below.
        self.events[self.head] = event;
        self.head = (self.head + 1) % 4;
    }
}

/// Hot: free-function span record into a flight ring.
pub fn record_span(buf: &mut TraceBuf, event: u64) {
    buf.record(event);
}
