//! Fixture metric registry for the XA103 closure rule.

use crate::{Counter, Histogram};

/// Written by the fault-simulation fixture as `metrics::TRIALS`.
pub static TRIALS: Counter = Counter::new();

/// Recorded by the fault-simulation fixture as `metrics::LATENCY`.
pub static LATENCY: Histogram = Histogram::new();

/// Seeded XA103: registered but referenced nowhere outside this file.
pub static DEAD_GAUGE: Counter = Counter::new();
