//! Fixture for the xed-analyze integration tests: the `mc-trial` hot
//! group with seeded XA100/XA101/XA102 violations, a stray `SeqCst`,
//! and the live `metrics::…` references the XA103 closure rule needs.
//! This crate is never compiled; only its token stream matters.

use core::sync::atomic::{AtomicU64, Ordering};

static GLOBAL_EPOCH: AtomicU64 = AtomicU64::new(0);

/// Seeded: an untyped alloc-capable receiver (`scratch.push`).
pub fn run_trials(trials: u64) -> u64 {
    let mut scratch = scratch_buffer();
    scratch.push(trials); // seed XA101 (untyped alloc-capable receiver)
    trials
}

/// `Vec::new()` does not allocate, so this helper must stay clean even
/// though it is inside the `mc-trial` closure.
fn scratch_buffer() -> Vec<u64> {
    Vec::new()
}

pub struct SchemeModel {
    epoch: AtomicU64,
}

impl SchemeModel {
    /// Seeded: a hot-path Acquire load, and an `expect` whose
    /// precondition is not argued anywhere nearby.
    pub fn evaluate(&self, seed: Option<u64>) -> u64 {
        let e = self.epoch.load(Ordering::Acquire); // seed XA102 (hot non-Relaxed)
        e + seed.expect("seed is always set") // seed XA100 (bare expect)
    }

    /// Seeded: a `vec!` allocation and a call the graph cannot resolve.
    pub fn evaluate_isolated(&self, seed: u64) -> u64 {
        let lanes = vec![seed; 4]; // seed XA101 (vec macro)
        mystery_mix(seed) + lanes.len() as u64 // seed XA100 (unresolved hole)
    }
}

/// Hot entry: the 64-lane block kernel. Deliberately clean — exercises
/// registration of a multi-entry group member without a seeded
/// violation.
pub fn run_trials_bitsliced(blocks: u64) -> u64 {
    let mut acc = 0;
    let mut b = 0;
    while b < blocks {
        acc += 1;
        b += 1;
    }
    acc
}

pub struct TailPlan {
    min_faults: u64,
}

impl TailPlan {
    /// Hot entry: one importance-sampled conditioned trial. Clean, like
    /// `run_trials_bitsliced` above.
    pub fn run_trial(&self, draw: u64) -> u64 {
        self.min_faults + draw
    }
}

/// Not on any hot path; its `SeqCst` must still be flagged by the
/// global ordering sweep.
pub fn epoch_now() -> u64 {
    GLOBAL_EPOCH.load(Ordering::SeqCst) // seed XA102 (stray SeqCst)
}

/// Keeps `metrics::TRIALS` and `metrics::LATENCY` live for the
/// registry-closure rule; the dead gauge is deliberately absent here.
pub fn note_trial(now: u64) {
    metrics::TRIALS.incr();
    metrics::LATENCY.record(now);
}

/// The daemon-facing query identity for the `xedd-request` hot group.
pub struct Query {
    seed: u64,
}

pub struct CanonicalKey {
    pub hi: u64,
    pub lo: u64,
}

impl Query {
    /// Hot entry: canonical-key derivation. Deliberately clean — the
    /// repeat-query path must prove panic- and allocation-free.
    pub fn canonical_key(&self) -> CanonicalKey {
        let hi = mix_word(self.seed);
        CanonicalKey {
            hi,
            lo: mix_word(hi),
        }
    }
}

impl CanonicalKey {
    /// In the `xedd-request` closure via the xedd fixture's
    /// `MemoCache::lookup`. Clean.
    pub fn shard(&self, shards: u64) -> u64 {
        self.hi % shards
    }
}

/// Shared by both canonical-key lanes; clean helper in the closure.
fn mix_word(z: u64) -> u64 {
    z ^ (z >> 31)
}
