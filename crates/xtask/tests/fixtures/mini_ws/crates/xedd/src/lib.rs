//! Fixture for the xed-analyze integration tests: the cache side of the
//! `xedd-request` hot group, with one seeded XA100 indexing violation
//! (the real crate proves the same bound with an `indexing:` comment).
//! This crate is never compiled; only its token stream matters.

pub struct MemoCache {
    shards: Vec<u64>,
}

impl MemoCache {
    /// Hot entry: the daemon's memoized repeat-query path. Reaches
    /// `CanonicalKey::shard` in the faultsim fixture, exercising a
    /// cross-crate closure.
    pub fn lookup(&self, key: &CanonicalKey) -> u64 {
        let idx = key.shard(self.shards.len() as u64) as usize;
        self.shards[idx] // seed XA100 (unjustified non-literal index)
    }
}
