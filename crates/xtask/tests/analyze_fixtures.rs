//! Integration tests for `xed-analyze` (ISSUE 6).
//!
//! A checked-in fixture mini-workspace
//! (`tests/fixtures/mini_ws/`) defines every hot entry point and
//! boundary fn the analyzer names, with exactly one seeded violation
//! per XA rule arm. The golden JSON (`tests/fixtures/golden.json`) is
//! asserted byte-for-byte modulo the elapsed-time field, so any change
//! to finding wording, ordering, grouping, or closure sizes is a
//! deliberate golden update. A final test runs the analyzer over the
//! real workspace and requires it to be clean with an empty unresolved
//! bucket.

use std::process::{Command, Output};

const GOLDEN: &str = include_str!("fixtures/golden.json");

fn fixture_root() -> String {
    format!("{}/tests/fixtures/mini_ws", env!("CARGO_MANIFEST_DIR"))
}

fn repo_root() -> String {
    format!("{}/../..", env!("CARGO_MANIFEST_DIR"))
}

fn run_analyze(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_xtask"))
        .arg("analyze")
        .args(args)
        .output()
        .expect("xtask binary runs")
}

/// Replaces the elapsed-time value with 0 so runs are comparable.
fn normalize(json: &str) -> String {
    let Some(at) = json.find("\"elapsed_ms\":") else {
        return json.to_string();
    };
    let digits_at = at + "\"elapsed_ms\":".len();
    let rest = &json[digits_at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    format!("{}0{}", &json[..digits_at], &rest[end..])
}

#[test]
fn fixture_findings_match_golden() {
    let out = run_analyze(&["--root", &fixture_root(), "--format", "json"]);
    assert_eq!(out.status.code(), Some(1), "seeded findings must gate");
    let json = normalize(String::from_utf8_lossy(&out.stdout).trim());
    assert_eq!(json, GOLDEN.trim(), "golden drift — inspect and regenerate");
}

#[test]
fn fixture_detects_every_seeded_rule() {
    let out = run_analyze(&["--root", &fixture_root(), "--format", "json"]);
    let json = String::from_utf8_lossy(&out.stdout).into_owned();

    let count = |rule: &str| json.matches(&format!("\"rule\":\"{rule}\"")).count();
    assert_eq!(
        count("XA100"),
        6,
        "panic, index, unwrap, expect, hole, cache index"
    );
    assert_eq!(count("XA101"), 3, "format!, vec!, untyped push");
    assert_eq!(
        count("XA102"),
        3,
        "hot Acquire, stray SeqCst, boundary Relaxed"
    );
    assert_eq!(count("XA103"), 1, "dead metric");

    // The unwrap is two hops from the entry point: transitivity works.
    assert!(json.contains("xed_ecc::first_symbol"));
    // The unresolved bucket is reported, not silently dropped.
    assert!(json.contains("\"unresolved\":{\"mystery_mix\":1}"));
    // Live metrics are not flagged; only the dead one is.
    assert!(!json.contains("metrics::TRIALS"));
    assert!(!json.contains("metrics::LATENCY"));
}

#[test]
fn fixture_text_format_reports_proofs_and_unresolved() {
    let out = run_analyze(&["--root", &fixture_root(), "--format", "text"]);
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("proof [ecc-decode]: 2 entry fn(s), closure of 3 fn(s)"));
    assert!(text.contains("proof [ecc-infer]: 2 entry fn(s), closure of 2 fn(s)"));
    assert!(text.contains("proof [mc-trial]: 5 entry fn(s), closure of 7 fn(s)"));
    assert!(text.contains("proof [telemetry-write]: 16 entry fn(s), closure of 16 fn(s)"));
    assert!(text.contains("proof [xedd-request]: 2 entry fn(s), closure of 4 fn(s)"));
    assert!(text.contains("unresolved bucket: 1 distinct callee(s), 1 site(s)"));
    assert!(text.contains("mystery_mix (1 site(s), e.g. crates/faultsim/src/lib.rs:38)"));
}

#[test]
fn baseline_cannot_suppress_hot_findings() {
    let baseline = format!(
        "{}/tests/fixtures/hot_suppress.baseline",
        env!("CARGO_MANIFEST_DIR")
    );
    let out = run_analyze(&[
        "--root",
        &fixture_root(),
        "--format",
        "text",
        "--baseline",
        &baseline,
    ]);
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(
        text.contains("tries to suppress a hot-path finding"),
        "{text}"
    );
    // The hot finding itself is still present alongside the rejection.
    assert!(text.contains("`panic!` is reachable"));
}

#[test]
fn baseline_suppresses_non_hot_and_reports_stale() {
    let baseline = format!(
        "{}/tests/fixtures/boundary.baseline",
        env!("CARGO_MANIFEST_DIR")
    );
    let out = run_analyze(&[
        "--root",
        &fixture_root(),
        "--format",
        "json",
        "--baseline",
        &baseline,
    ]);
    // Still findings left, so still gating.
    assert_eq!(out.status.code(), Some(1));
    let json = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(json.contains("\"suppressed\":1"), "{json}");
    assert!(json.contains("\"stale\":1"), "{json}");
    assert!(
        !json.contains("xed_telemetry::Counter::value"),
        "boundary finding should be suppressed: {json}"
    );
}

#[test]
fn real_workspace_is_clean() {
    let out = run_analyze(&["--root", &repo_root(), "--format", "json"]);
    let json = String::from_utf8_lossy(&out.stdout).into_owned();
    assert_eq!(
        out.status.code(),
        Some(0),
        "the real workspace must stay clean: {json}"
    );
    assert!(json.contains("\"findings\":[]"), "{json}");
    assert!(
        json.contains("\"unresolved\":{}"),
        "the real workspace resolves every call: {json}"
    );
}
