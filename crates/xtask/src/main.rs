//! Workspace automation (`cargo xtask` pattern).
//!
//! ```text
//! cargo run -p xtask -- lint [--format text|json] [--root PATH]
//! cargo run -p xtask -- analyze [--format text|json] [--root PATH]
//!                               [--baseline PATH]
//! cargo run -p xtask -- verify-matrix [--quick|--full] [--regen-golden]
//!                                     [--format text|json]
//! ```
//!
//! `lint` runs the `xed-lint` static-analysis pass: line-level source
//! rules over the comment/string-sanitized library crates (see [`lint`]
//! for the rule catalogue) plus the linked golden-value rules (see
//! [`golden`]). Exits nonzero if any error-severity finding survives.
//!
//! `analyze` runs the `xed-analyze` pass (see [`analyze`]): a workspace
//! call graph with transitive panic/alloc-freedom proofs over the named
//! hot paths, an atomic-ordering audit, and the metric-registry closure
//! check, gated through `xed-analyze.baseline`.
//!
//! `verify-matrix` runs the `xed-testkit` cross-validation matrix (see
//! [`verify`]): exhaustive small-geometry oracle, analytic gate,
//! metamorphic laws, golden conformance traces, de-flake audit. Exits
//! nonzero if any oracle disagrees with the simulator.

mod analyze;
mod golden;
mod lint;
mod metrics_check;
mod trace_check;
mod verify;

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(&args[1..]),
        Some("analyze") => analyze::run(&args[1..]),
        Some("verify-matrix") => verify::run(&args[1..]),
        Some(other) => {
            eprintln!("unknown command `{other}`");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage: cargo run -p xtask -- lint [--format text|json] [--root PATH]\n\
                     \x20      cargo run -p xtask -- analyze [--format text|json] [--root PATH] \
                     [--baseline PATH]\n\
                     \x20      cargo run -p xtask -- verify-matrix [--quick|--full] \
                     [--regen-golden] [--format text|json]";

fn run_lint(args: &[String]) -> ExitCode {
    let mut format = "text".to_string();
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next() {
                Some(v) if v == "text" || v == "json" => format = v.clone(),
                _ => {
                    eprintln!("--format takes `text` or `json`");
                    return ExitCode::from(2);
                }
            },
            "--root" => match it.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => {
                    eprintln!("--root takes a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    // Default root: the workspace containing this crate.
    let root = root.unwrap_or_else(|| {
        let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        manifest
            .parent()
            .and_then(|p| p.parent())
            .map(PathBuf::from)
            .unwrap_or(manifest)
    });

    let mut findings = match lint::scan_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("xed-lint: {e}");
            return ExitCode::from(2);
        }
    };
    findings.extend(golden::check_fit_table());
    findings.extend(golden::check_catch_word_constants());
    findings.extend(metrics_check::check_metrics(&root));
    findings.extend(trace_check::check_traces(&root));

    let errors = findings
        .iter()
        .filter(|f| f.severity == lint::Severity::Error)
        .count();
    let warnings = findings.len() - errors;

    if format == "json" {
        let items: Vec<String> = findings.iter().map(lint::Finding::render_json).collect();
        println!(
            r#"{{"findings":[{}],"errors":{errors},"warnings":{warnings}}}"#,
            items.join(",")
        );
    } else {
        for f in &findings {
            println!("{}", f.render());
        }
        println!(
            "xed-lint: {} finding(s): {errors} error(s), {warnings} warning(s)",
            findings.len()
        );
    }

    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
