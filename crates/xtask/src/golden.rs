//! Golden-value rules XL007/XL008: the linked constants must match the
//! paper. These call into the library crates, so they compare what the
//! binaries will actually run with — not a regex over source text.

use crate::lint::{Finding, Severity};
use rand::rngs::StdRng;
use rand::SeedableRng;
use xed_faultsim::fault::{FaultExtent, Persistence};
use xed_faultsim::fit::FitRates;

fn finding(rule: &'static str, file: &str, message: String) -> Finding {
    Finding {
        file: file.to_string(),
        line: 0,
        rule,
        severity: Severity::Error,
        message,
    }
}

/// XL007: `FitRates::table_i()` must reproduce paper Table I (Sridharan &
/// Liberty's per-chip FIT rates) exactly, including the folded multi-bank
/// and multi-rank contributions and the derived totals.
pub fn check_fit_table() -> Vec<Finding> {
    const FILE: &str = "crates/faultsim/src/fit.rs";
    let mut out = Vec::new();
    let rates = FitRates::table_i();

    // (extent, transient FIT, permanent FIT) from Table I; Chip folds
    // multi-bank 0.3/1.4 and multi-rank 0.9/2.8 into 1.2/4.2.
    let golden: [(FaultExtent, f64, f64); 6] = [
        (FaultExtent::Bit, 14.2, 18.6),
        (FaultExtent::Word, 1.4, 0.3),
        (FaultExtent::Column, 1.4, 5.6),
        (FaultExtent::Row, 0.2, 8.2),
        (FaultExtent::Bank, 0.8, 10.0),
        (FaultExtent::Chip, 1.2, 4.2),
    ];
    for (extent, t, p) in golden {
        let gt = rates.fit_for(extent, Persistence::Transient);
        let gp = rates.fit_for(extent, Persistence::Permanent);
        if (gt - t).abs() > 1e-12 || (gp - p).abs() > 1e-12 {
            out.push(finding(
                "XL007",
                FILE,
                format!("Table I drift for {extent:?}: shipped ({gt}, {gp}) FIT, paper ({t}, {p})"),
            ));
        }
    }
    if (rates.total_fit() - 66.1).abs() > 1e-9 {
        out.push(finding(
            "XL007",
            FILE,
            format!(
                "total_fit() = {} FIT, paper Table I totals 66.1",
                rates.total_fit()
            ),
        ));
    }
    if (rates.large_fault_fit() - 33.3).abs() > 1e-9 {
        out.push(finding(
            "XL007",
            FILE,
            format!(
                "large_fault_fit() = {} FIT, paper's multi-bit total is 33.3",
                rates.large_fault_fit()
            ),
        ));
    }
    out
}

/// XL008: the catch-word mechanism and DIMM geometries must match paper
/// §IV–V and §IX: a 9-chip ECC-DIMM (8 data + RAID-3 parity as the 9th),
/// an 18-device Chipkill rank (16 data + 2 check), 64-bit catch-words on
/// x8 parts and 32-bit on x4, all drawn uniquely per chip, and the
/// CRC8-ATM on-die polynomial 0x07.
pub fn check_catch_word_constants() -> Vec<Finding> {
    let mut out = Vec::new();

    if xed_core::controller::DATA_CHIPS != 8
        || xed_core::controller::PARITY_CHIP != 8
        || xed_core::controller::TOTAL_CHIPS != 9
    {
        out.push(finding(
            "XL008",
            "crates/core/src/controller.rs",
            format!(
                "ECC-DIMM geometry drift: {} data chips, parity at {}, {} total; the paper's \
                 commodity ECC-DIMM is 8 + 1 parity = 9 (§IV)",
                xed_core::controller::DATA_CHIPS,
                xed_core::controller::PARITY_CHIP,
                xed_core::controller::TOTAL_CHIPS
            ),
        ));
    }

    if xed_core::xed_chipkill::DATA_CHIPS != 16
        || xed_core::xed_chipkill::CHECK_CHIPS != 2
        || xed_core::xed_chipkill::TOTAL_CHIPS != 18
    {
        out.push(finding(
            "XL008",
            "crates/core/src/xed_chipkill.rs",
            format!(
                "Chipkill geometry drift: {} + {} = {} devices; the paper's x4 Chipkill rank \
                 is 16 data + 2 check = 18 (§IX-A)",
                xed_core::xed_chipkill::DATA_CHIPS,
                xed_core::xed_chipkill::CHECK_CHIPS,
                xed_core::xed_chipkill::TOTAL_CHIPS
            ),
        ));
    }

    if xed_ecc::crc8::POLY != 0x07 {
        out.push(finding(
            "XL008",
            "crates/ecc/src/crc8.rs",
            format!(
                "on-die CRC polynomial {:#04x}; the paper's recommended code is CRC8-ATM \
                 (x^8+x^2+x+1 = 0x07, §V-E)",
                xed_ecc::crc8::POLY
            ),
        ));
    }

    // Behavioral spot-checks, deterministic by construction.
    let mut rng = StdRng::seed_from_u64(0x9ED);
    for _ in 0..64 {
        let cw = xed_core::catch_word::CatchWord::random_x4(&mut rng);
        if cw.value() > u64::from(u32::MAX) {
            out.push(finding(
                "XL008",
                "crates/core/src/catch_word.rs",
                format!(
                    "x4 catch-word {:#x} exceeds 32 bits; x4 transfers carry 32 bits (§IX-A)",
                    cw.value()
                ),
            ));
            break;
        }
    }
    let table = xed_core::catch_word::CatchWordTable::generate(&mut rng, 9);
    for i in 0..9 {
        for j in (i + 1)..9 {
            if table.word(i) == table.word(j) {
                out.push(finding(
                    "XL008",
                    "crates/core/src/catch_word.rs",
                    format!(
                        "catch-words for chips {i} and {j} collide; §V-A requires a unique \
                             word per chip"
                    ),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_tree_is_golden() {
        assert!(check_fit_table().is_empty());
        assert!(check_catch_word_constants().is_empty());
    }
}
