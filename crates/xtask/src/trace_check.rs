//! Rule XL012: the trace phase catalogue is closed and documented.
//!
//! The span vocabulary (`crates/telemetry/src/trace.rs`, `pub enum
//! Phase`) is the wire contract of the flight recorder: every variant
//! name becomes a `"name"` field in the `xed-trace-spans-v1` export that
//! `/debug/flight` serves and `xedtop` parses. Mirroring XL010's
//! registry/DESIGN.md closure for metrics, this pass re-derives the
//! phase list from the enum source and cross-checks it:
//!
//! 1. every `Phase` variant is documented (backticked) in the DESIGN.md
//!    §16 tracing section — a span a dashboard can see but no document
//!    explains is an undocumented wire field;
//! 2. the `Phase::ALL` array literal lists every variant exactly once —
//!    the exporters and `xedtop` iterate `ALL`, so a variant missing
//!    from it would silently vanish from every span count;
//! 3. no library code discards a span guard with `let _ = Span::start`
//!    (the `#[must_use]` on [`Span::start`] is defeated by a `_`
//!    binding, which drops the guard immediately and records a
//!    zero-length span).
//!
//! Waivers use the shared `// xed-lint: allow(XL012)` form.

use std::fs;
use std::path::Path;

use crate::lint::{Finding, Severity, LIBRARY_CRATES};

const TRACE: &str = "crates/telemetry/src/trace.rs";
const DESIGN: &str = "DESIGN.md";

fn finding(file: &str, line: usize, message: String) -> Finding {
    Finding {
        file: file.to_string(),
        line,
        rule: "XL012",
        severity: Severity::Error,
        message,
    }
}

/// Runs the whole XL012 pass rooted at `root`.
pub fn check_traces(root: &Path) -> Vec<Finding> {
    let trace_path = root.join(TRACE);
    let text = match fs::read_to_string(&trace_path) {
        Ok(t) => t,
        Err(e) => {
            return vec![finding(
                TRACE,
                0,
                format!("cannot read the trace module: {e}"),
            )]
        }
    };

    let variants = parse_phase_variants(&text);
    let mut findings = Vec::new();
    if variants.is_empty() {
        findings.push(finding(
            TRACE,
            0,
            "found no `pub enum Phase` variants; the XL012 parser expects \
             one variant identifier per line inside the enum block"
                .to_string(),
        ));
        return findings;
    }

    // 1. Every variant is documented (backticked) in DESIGN.md.
    match fs::read_to_string(root.join(DESIGN)) {
        Ok(design) => {
            for (name, line) in &variants {
                if !design.contains(&format!("`{name}`")) {
                    findings.push(finding(
                        TRACE,
                        *line,
                        format!(
                            "trace phase `{name}` is not documented in the \
                             DESIGN.md tracing section (§16); every span name \
                             on the `/debug/flight` wire needs a documented \
                             meaning"
                        ),
                    ));
                }
            }
        }
        Err(e) => findings.push(finding(DESIGN, 0, format!("cannot read DESIGN.md: {e}"))),
    }

    // 2. `Phase::ALL` covers every variant exactly once.
    let all = parse_all_array(&text);
    for (name, line) in &variants {
        match all.iter().filter(|a| a == &name).count() {
            1 => {}
            0 => findings.push(finding(
                TRACE,
                *line,
                format!(
                    "trace phase `{name}` is missing from `Phase::ALL`; the \
                     exporters and `xedtop` iterate `ALL`, so this variant \
                     would vanish from every span count"
                ),
            )),
            n => findings.push(finding(
                TRACE,
                *line,
                format!("trace phase `{name}` appears {n} times in `Phase::ALL`"),
            )),
        }
    }

    // 3. No discarded span guards anywhere in the library crates.
    findings.extend(check_discarded_guards(root));
    findings
}

/// The variant identifiers of `pub enum Phase`, as `(name, 1-based
/// line)`. Line-based like XL010: one variant per line, doc comments
/// blanked by the sanitizer.
fn parse_phase_variants(text: &str) -> Vec<(String, usize)> {
    let san = crate::analyze::lexer::sanitize_lines(text);
    let mut out = Vec::new();
    let mut in_enum = false;
    for (idx, line) in san.iter().enumerate() {
        let t = line.trim();
        if t.starts_with("pub enum Phase") {
            in_enum = true;
            continue;
        }
        if !in_enum {
            continue;
        }
        if t.starts_with('}') {
            break;
        }
        let Some(name) = t.strip_suffix(',') else {
            continue;
        };
        if !name.is_empty() && name.chars().all(|c| c.is_ascii_alphanumeric()) {
            out.push((name.to_string(), idx + 1));
        }
    }
    out
}

/// The `Phase::NAME` references inside the `pub const ALL` array literal.
fn parse_all_array(text: &str) -> Vec<String> {
    let san = crate::analyze::lexer::sanitize_lines(text);
    let mut out = Vec::new();
    let mut in_all = false;
    for line in &san {
        let t = line.trim();
        if t.starts_with("pub const ALL") {
            in_all = true;
        }
        if !in_all {
            continue;
        }
        for chunk in t.split("Phase::").skip(1) {
            let name: String = chunk
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric())
                .collect();
            if !name.is_empty() && name != "ALL" {
                out.push(name);
            }
        }
        if t.ends_with("];") {
            break;
        }
    }
    out
}

/// Scans the library crates for `let _ = ...Span::start` — a binding
/// that defeats the `#[must_use]` guard and drops the span immediately.
fn check_discarded_guards(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut files = Vec::new();
    for krate in LIBRARY_CRATES {
        let src = root.join("crates").join(krate).join("src");
        if src.is_dir() {
            let _ = collect_rs(&src, &mut files);
        }
    }
    files.sort();
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .into_owned();
        let Ok(text) = fs::read_to_string(&file) else {
            continue;
        };
        findings.extend(scan_guards(&rel, &text));
    }
    findings
}

/// The per-file discarded-guard scan (public shape mirrors
/// `lint::scan_file` so tests can drive it on synthetic text).
pub fn scan_guards(rel_path: &str, text: &str) -> Vec<Finding> {
    let lines: Vec<&str> = text.lines().collect();
    let san = crate::analyze::lexer::sanitize_lines(text);
    let mut findings = Vec::new();
    for (idx, code) in san.iter().enumerate() {
        if code.contains("#[cfg(test)]") {
            break;
        }
        let t = code.trim();
        if !(t.contains("Span::start") && t.contains("let _ =")) {
            continue;
        }
        let raw = lines.get(idx).copied().unwrap_or("");
        let waived = raw.contains("xed-lint: allow(XL012)")
            || (idx > 0 && lines[idx - 1].contains("xed-lint: allow(XL012)"));
        if !waived {
            findings.push(finding(
                rel_path,
                idx + 1,
                "`let _ = Span::start(...)` drops the guard immediately and \
                 records a zero-length span; bind it to a named guard for \
                 the duration of the phase"
                    .to_string(),
            ));
        }
    }
    findings
}

fn collect_rs(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> Result<(), std::io::Error> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const ENUM: &str = "
pub enum Phase {
    /// Whole request.
    Request,
    Admission,
    Stream,
}
impl Phase {
    pub const ALL: [Phase; 3] = [
        Phase::Request,
        Phase::Admission,
        Phase::Stream,
    ];
}
";

    #[test]
    fn parses_variants_and_all() {
        let v = parse_phase_variants(ENUM);
        assert_eq!(
            v.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(),
            vec!["Request", "Admission", "Stream"]
        );
        assert_eq!(
            parse_all_array(ENUM),
            vec!["Request", "Admission", "Stream"]
        );
    }

    #[test]
    fn discarded_guard_detected_and_waivable() {
        let f = scan_guards("x.rs", "let _ = Span::start(&M);\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "XL012");
        assert!(scan_guards("x.rs", "let _guard = Span::start(&M);\n").is_empty());
        assert!(scan_guards(
            "x.rs",
            "let _ = Span::start(&M); // xed-lint: allow(XL012)\n"
        )
        .is_empty());
        assert!(scan_guards("x.rs", "// let _ = Span::start(&M)\n").is_empty());
        assert!(scan_guards(
            "x.rs",
            "#[cfg(test)]\nmod tests { fn f() { let _ = Span::start(&M); } }\n"
        )
        .is_empty());
    }

    #[test]
    fn real_workspace_is_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("invariant: xtask lives at <root>/crates/xtask");
        let findings = check_traces(root);
        assert!(
            findings.is_empty(),
            "XL012 findings against the real workspace:\n{}",
            findings
                .iter()
                .map(Finding::render)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
