//! Item extraction: from a token stream to per-file `fn`/`impl`/`trait`
//! records, `use` maps, and declared type names.
//!
//! This is a *recognizer*, not a parser: it walks the token stream once,
//! tracking brace depth and a scope stack (modules, `impl` blocks,
//! `trait` blocks), and records every `fn` it sees at item position
//! together with the token range of its body. Function bodies are not
//! descended into here — call extraction over body ranges happens in
//! [`crate::analyze::graph`].
//!
//! Recognized context (the resolution heuristics feed on all of it):
//!
//! * `use` declarations, including nested groups and `as` renames —
//!   per-file alias → path map;
//! * `impl Type` / `impl Trait for Type` — methods get a self type and
//!   an optional trait name;
//! * `trait Name` — default-bodied methods are recorded as trait
//!   defaults (callable through any implementor);
//! * `struct` / `enum` declarations — their names (and tuple-variant
//!   names) form the constructor set, so `Shard(x)` or `Some(x)` is
//!   never mistaken for a function call;
//! * `#[cfg(test)]` — attached to a `mod`/`fn`, marks everything inside
//!   as test code (analyzed rules skip it, matching the xed-lint
//!   convention).

use super::lexer::{Tok, TokKind};

/// One `use` alias: `alias` names `path` in this file.
#[derive(Debug, Clone)]
pub struct UseEntry {
    /// The name the file refers to (`last segment` or the `as` rename).
    pub alias: String,
    /// Full path segments, e.g. `["xed_ecc", "secded", "SecDed"]`.
    pub path: Vec<String>,
}

/// One extracted function (free fn, inherent/trait-impl method, or
/// trait default method).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Crate name (underscore form, e.g. `xed_ecc`).
    pub krate: String,
    /// Module path within the crate (file modules + inline `mod`s).
    pub module: Vec<String>,
    /// `Some(type)` for methods in an `impl` block, `Some(trait)` for
    /// trait-default methods.
    pub self_type: Option<String>,
    /// The trait being implemented (`impl Trait for Type`) or declared.
    pub trait_name: Option<String>,
    /// `true` for a default-bodied method in a `trait` block.
    pub is_trait_default: bool,
    /// Function name.
    pub name: String,
    /// File index into [`Workspace::files`].
    pub file: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token range of the body (including the outer braces) in the
    /// file's token vec; `None` for bodyless trait signatures.
    pub body: Option<(usize, usize)>,
    /// `(param name, main type ident)` — the last capitalized ident of
    /// each parameter's type, e.g. `("rng", "R")`, `("beats", "CodeWord72")`.
    pub params: Vec<(String, String)>,
    /// Generic parameters with their trait bounds' last idents, e.g.
    /// `("R", ["Rng"])`.
    pub generics: Vec<(String, Vec<String>)>,
    /// Inside a `#[cfg(test)]` module or attached to the fn itself.
    pub in_cfg_test: bool,
}

impl FnItem {
    /// `crate::module::Type::name`-style display path.
    pub fn qualified(&self) -> String {
        let mut s = self.krate.clone();
        for m in &self.module {
            s.push_str("::");
            s.push_str(m);
        }
        if let Some(t) = &self.self_type {
            s.push_str("::");
            s.push_str(t);
        }
        s.push_str("::");
        s.push_str(&self.name);
        s
    }
}

/// One `impl` block: the implementing type and the trait, if any.
#[derive(Debug, Clone)]
pub struct ImplDecl {
    /// Self type name.
    pub self_type: String,
    /// `Some(trait)` for `impl Trait for Type`.
    pub trait_name: Option<String>,
}

/// One parsed source file with its token stream and extracted context.
#[derive(Debug)]
pub struct FileAst {
    /// Path relative to the workspace root.
    pub rel_path: String,
    /// Crate name (underscore form).
    pub krate: String,
    /// The full token stream.
    pub toks: Vec<Tok>,
    /// `use` alias map.
    pub uses: Vec<UseEntry>,
    /// `struct`/`enum` type names declared in this file.
    pub types: Vec<String>,
    /// Constructor-position names: tuple structs and enum variants.
    pub ctors: Vec<String>,
    /// `impl` blocks declared in this file.
    pub impls: Vec<ImplDecl>,
    /// Named struct fields as `(field, outer type ident)` — the receiver
    /// typing source for `x.field.method(…)` call sites.
    pub fields: Vec<(String, String)>,
    /// Raw source lines (1-based via `line - 1` indexing); kept so the
    /// rules can look up `justification:`-style comments near a site.
    pub raw: Vec<String>,
}

/// The parsed workspace: all files plus the global function list.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Parsed files.
    pub files: Vec<FileAst>,
    /// Every extracted function, across all files.
    pub fns: Vec<FnItem>,
}

impl Workspace {
    /// Parses one file's source text into the workspace.
    pub fn add_file(&mut self, rel_path: &str, krate: &str, module: &[String], src: &str) {
        let toks = super::lexer::tokenize(src);
        if std::env::var("XED_ANALYZE_TRACE").is_ok() {
            eprintln!("tokenized {rel_path}: {} toks", toks.len());
        }
        let file_idx = self.files.len();
        let mut file = FileAst {
            rel_path: rel_path.to_string(),
            krate: krate.to_string(),
            toks,
            uses: Vec::new(),
            types: Vec::new(),
            ctors: Vec::new(),
            impls: Vec::new(),
            fields: Vec::new(),
            raw: src.lines().map(str::to_string).collect(),
        };
        let mut fns = Vec::new();
        extract(&mut file, krate, module, file_idx, &mut fns);
        self.files.push(file);
        self.fns.extend(fns);
    }

    /// Finds a function by `Type::name` or plain `name` within a crate,
    /// returning all matches.
    pub fn find_fns(&self, krate: &str, self_type: Option<&str>, name: &str) -> Vec<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                f.krate == krate
                    && f.name == name
                    && match self_type {
                        Some(t) => f.self_type.as_deref() == Some(t),
                        None => f.self_type.is_none(),
                    }
            })
            .map(|(i, _)| i)
            .collect()
    }
}

/// Scope kinds tracked during the walk.
#[derive(Debug)]
enum Scope {
    Module(String),
    Impl(ImplDecl),
    Trait(String),
    /// A brace the walker entered but does not model (static initializer,
    /// macro body, …).
    Opaque,
}

struct Walker<'a> {
    toks: &'a [Tok],
    i: usize,
    scopes: Vec<(Scope, usize)>, // (scope, depth at open)
    depth: usize,
    cfg_test_depth: Option<usize>,
}

impl<'a> Walker<'a> {
    fn peek(&self, k: usize) -> Option<&Tok> {
        self.toks.get(self.i + k)
    }

    fn bump(&mut self) -> Option<&'a Tok> {
        let t = self.toks.get(self.i);
        self.i += 1;
        t
    }

    /// Skips a balanced `(…)`, `[…]`, or `{…}` group whose opener is the
    /// current token. No-op if the current token is not an opener.
    fn skip_group(&mut self) {
        let Some(open) = self.peek(0) else { return };
        let (o, c) = match open.text.as_str() {
            "(" => ('(', ')'),
            "[" => ('[', ']'),
            "{" => ('{', '}'),
            _ => return,
        };
        let mut depth = 0usize;
        while let Some(t) = self.bump() {
            if t.is_punct(o) {
                depth += 1;
            } else if t.is_punct(c) {
                depth -= 1;
                if depth == 0 {
                    return;
                }
            }
        }
    }

    /// Skips a balanced generic argument list starting at `<`. Handles
    /// nesting and ignores `->`'s `>`.
    fn skip_generics(&mut self) {
        if !self.peek(0).is_some_and(|t| t.is_punct('<')) {
            return;
        }
        let mut depth = 0isize;
        let mut prev_minus = false;
        while let Some(t) = self.bump() {
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') && !prev_minus {
                depth -= 1;
                if depth == 0 {
                    return;
                }
            } else if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                self.i -= 1;
                self.skip_group();
            }
            prev_minus = t.is_punct('-');
        }
    }
}

fn extract(
    file: &mut FileAst,
    krate: &str,
    base_module: &[String],
    file_idx: usize,
    fns: &mut Vec<FnItem>,
) {
    let toks = std::mem::take(&mut file.toks);
    let mut w = Walker {
        toks: &toks,
        i: 0,
        scopes: Vec::new(),
        depth: 0,
        cfg_test_depth: None,
    };
    let mut pending_cfg_test = false;
    let mut watchdog = (0usize, 0usize); // (last index, stuck count)

    while w.i < w.toks.len() {
        if w.i == watchdog.0 {
            watchdog.1 += 1;
            // invariant: every branch below either bumps or breaks; a
            // token revisited this often means a parser bug, and skipping
            // it is strictly better than hanging the gate.
            if watchdog.1 > 16 {
                w.bump();
                continue;
            }
        } else {
            watchdog = (w.i, 0);
        }
        // Attributes: `#[...]` / `#![...]` — note cfg(test), skip the group.
        if w.peek(0).is_some_and(|t| t.is_punct('#')) {
            let bang = usize::from(w.peek(1).is_some_and(|t| t.is_punct('!')));
            if w.peek(1 + bang).is_some_and(|t| t.is_punct('[')) {
                w.bump(); // '#'
                if bang == 1 {
                    w.bump(); // '!'
                }
                let start = w.i;
                w.skip_group(); // [...]
                let attr: Vec<&str> = w.toks[start..w.i].iter().map(|t| t.text.as_str()).collect();
                if attr
                    .windows(3)
                    .any(|s| s[0] == "cfg" && s[1] == "(" && s[2] == "test")
                {
                    pending_cfg_test = true;
                }
                continue;
            }
        }

        let Some(t) = w.peek(0) else { break };
        match (t.kind, t.text.as_str()) {
            (TokKind::Ident, "use") => {
                w.bump();
                parse_use(&mut w, &mut file.uses);
                pending_cfg_test = false;
            }
            (TokKind::Ident, "mod") => {
                w.bump();
                let name = match w.peek(0) {
                    Some(t) if t.kind == TokKind::Ident => t.text.clone(),
                    _ => String::new(),
                };
                w.bump();
                if w.peek(0).is_some_and(|t| t.is_punct('{')) {
                    w.bump();
                    w.depth += 1;
                    w.scopes.push((Scope::Module(name), w.depth));
                    if pending_cfg_test && w.cfg_test_depth.is_none() {
                        w.cfg_test_depth = Some(w.depth);
                    }
                }
                // `mod name;` — file modules are walked separately.
                pending_cfg_test = false;
            }
            (TokKind::Ident, "struct") => {
                w.bump();
                if let Some(t) = w.peek(0) {
                    if t.kind == TokKind::Ident {
                        let name = t.text.clone();
                        file.types.push(name.clone());
                        w.bump();
                        w.skip_generics();
                        if w.peek(0).is_some_and(|t| t.is_punct('(')) {
                            file.ctors.push(name);
                        } else {
                            extract_fields(w.toks, w.i, &mut file.fields);
                        }
                    }
                }
                skip_item_rest(&mut w);
                pending_cfg_test = false;
            }
            (TokKind::Ident, "enum") => {
                w.bump();
                if let Some(t) = w.peek(0) {
                    if t.kind == TokKind::Ident {
                        file.types.push(t.text.clone());
                        w.bump();
                    }
                }
                w.skip_generics();
                // Record variant names as constructors (conservative: all
                // of them; unit variants never appear call-position).
                if w.peek(0).is_some_and(|t| t.is_punct('{')) {
                    let start = w.i;
                    w.skip_group();
                    let body = &w.toks[start..w.i];
                    let mut d = 0usize;
                    for (k, t) in body.iter().enumerate() {
                        match t.text.as_str() {
                            "{" | "(" | "[" => d += 1,
                            "}" | ")" | "]" => d = d.saturating_sub(1),
                            _ => {
                                if d == 1
                                    && t.kind == TokKind::Ident
                                    && t.text.chars().next().is_some_and(char::is_uppercase)
                                    && body.get(k + 1).is_some_and(|n| n.is_punct('('))
                                {
                                    file.ctors.push(t.text.clone());
                                }
                            }
                        }
                    }
                }
                pending_cfg_test = false;
            }
            (TokKind::Ident, "trait") => {
                w.bump();
                let name = match w.peek(0) {
                    Some(t) if t.kind == TokKind::Ident => t.text.clone(),
                    _ => String::new(),
                };
                w.bump();
                // Skip generics / supertrait bounds / where clause.
                while let Some(t) = w.peek(0) {
                    if t.is_punct('{') {
                        break;
                    }
                    if t.is_punct('<') {
                        w.skip_generics();
                    } else {
                        w.bump();
                    }
                }
                if w.peek(0).is_some_and(|t| t.is_punct('{')) {
                    w.bump();
                    w.depth += 1;
                    w.scopes.push((Scope::Trait(name), w.depth));
                    if pending_cfg_test && w.cfg_test_depth.is_none() {
                        w.cfg_test_depth = Some(w.depth);
                    }
                }
                pending_cfg_test = false;
            }
            (TokKind::Ident, "impl") => {
                w.bump();
                w.skip_generics();
                let decl = parse_impl_header(&mut w);
                if w.peek(0).is_some_and(|t| t.is_punct('{')) {
                    w.bump();
                    w.depth += 1;
                    if let Some(d) = &decl {
                        file.impls.push(d.clone());
                        w.scopes.push((Scope::Impl(d.clone()), w.depth));
                    } else {
                        w.scopes.push((Scope::Opaque, w.depth));
                    }
                    if pending_cfg_test && w.cfg_test_depth.is_none() {
                        w.cfg_test_depth = Some(w.depth);
                    }
                }
                pending_cfg_test = false;
            }
            (TokKind::Ident, "fn") => {
                let line = t.line;
                w.bump();
                let item = parse_fn(&mut w, krate, base_module, file_idx, line, pending_cfg_test);
                if let Some(f) = item {
                    fns.push(f);
                }
                pending_cfg_test = false;
            }
            (TokKind::Punct, "{") => {
                w.bump();
                w.depth += 1;
                w.scopes.push((Scope::Opaque, w.depth));
                if pending_cfg_test && w.cfg_test_depth.is_none() {
                    w.cfg_test_depth = Some(w.depth);
                }
                pending_cfg_test = false;
            }
            (TokKind::Punct, "}") => {
                w.bump();
                if let Some((_, d)) = w.scopes.last() {
                    if *d == w.depth {
                        w.scopes.pop();
                    }
                }
                if w.cfg_test_depth == Some(w.depth) {
                    w.cfg_test_depth = None;
                }
                w.depth = w.depth.saturating_sub(1);
            }
            _ => {
                w.bump();
            }
        }
    }
    file.toks = toks;
}

/// After a `struct Name…`: skips the remainder (tuple body + `;`, brace
/// body, or bare `;`).
/// Extracts `name: Type` pairs from a braced struct body starting at or
/// after token index `from` (the walker position just past the struct
/// name/generics). Does not consume — `skip_item_rest` still walks the
/// group. The recorded type is the *outer* type ident (`Vec` for
/// `Vec<Event>`), which is what receiver classification needs.
fn extract_fields(toks: &[Tok], from: usize, fields: &mut Vec<(String, String)>) {
    // Find the `{` before any `;` (a `;` first means unit struct).
    let mut j = from;
    loop {
        match toks.get(j) {
            Some(t) if t.is_punct('{') => break,
            Some(t) if t.is_punct(';') => return,
            Some(_) => j += 1,
            None => return,
        }
    }
    let mut depth = 0usize;
    let mut k = j;
    while let Some(t) = toks.get(k) {
        match t.text.as_str() {
            "{" | "(" | "[" => depth += 1,
            "}" | ")" | "]" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return;
                }
            }
            _ => {
                // A field starts at depth 1 as `name :` preceded by `{`,
                // `,`, or visibility tokens.
                if depth == 1
                    && t.kind == TokKind::Ident
                    && !matches!(t.text.as_str(), "pub" | "crate" | "super")
                    && toks.get(k + 1).is_some_and(|x| x.is_punct(':'))
                    && !toks.get(k + 2).is_some_and(|x| x.is_punct(':'))
                {
                    // Outer type: first ident after `:` skipping refs,
                    // lifetimes, and `mut`/`dyn`.
                    let mut m = k + 2;
                    while toks.get(m).is_some_and(|x| {
                        x.is_punct('&')
                            || x.kind == TokKind::Lifetime
                            || x.is_ident("mut")
                            || x.is_ident("dyn")
                    }) {
                        m += 1;
                    }
                    if let Some(ty) = toks.get(m) {
                        if ty.kind == TokKind::Ident
                            && ty.text.chars().next().is_some_and(char::is_uppercase)
                        {
                            fields.push((t.text.clone(), ty.text.clone()));
                        }
                    }
                }
            }
        }
        k += 1;
    }
}

fn skip_item_rest(w: &mut Walker<'_>) {
    while let Some(t) = w.peek(0) {
        if t.is_punct(';') {
            w.bump();
            return;
        }
        if t.is_punct('{') || t.is_punct('(') {
            w.skip_group();
            if w.peek(0).is_some_and(|t| t.is_punct(';')) {
                w.bump();
            }
            return;
        }
        if t.is_punct('<') {
            w.skip_generics();
        } else {
            w.bump();
        }
    }
}

/// Parses the `Path` or `Trait for Path` part of an impl header, leaving
/// the walker at the opening `{`.
fn parse_impl_header(w: &mut Walker<'_>) -> Option<ImplDecl> {
    let mut first: Vec<String> = Vec::new();
    let mut second: Vec<String> = Vec::new();
    let mut saw_for = false;
    while let Some(t) = w.peek(0) {
        if t.is_punct('{') {
            break;
        }
        if t.is_ident("where") {
            // Skip the where clause up to the `{`.
            while let Some(t) = w.peek(0) {
                if t.is_punct('{') {
                    break;
                }
                if t.is_punct('<') {
                    w.skip_generics();
                } else {
                    w.bump();
                }
            }
            break;
        }
        if t.is_ident("for") {
            saw_for = true;
            w.bump();
            continue;
        }
        if t.is_punct('<') {
            w.skip_generics();
            continue;
        }
        if t.kind == TokKind::Ident {
            if saw_for {
                second.push(t.text.clone());
            } else {
                first.push(t.text.clone());
            }
        }
        w.bump();
    }
    let (trait_path, type_path) = if saw_for {
        (Some(first), second)
    } else {
        (None, first)
    };
    let self_type = type_path.last()?.clone();
    Some(ImplDecl {
        self_type,
        trait_name: trait_path.and_then(|p| p.last().cloned()),
    })
}

/// Parses one `fn` after the keyword: name, generics, params, body range.
fn parse_fn(
    w: &mut Walker<'_>,
    krate: &str,
    base_module: &[String],
    file_idx: usize,
    line: u32,
    attr_cfg_test: bool,
) -> Option<FnItem> {
    let name = match w.peek(0) {
        Some(t) if t.kind == TokKind::Ident => t.text.clone(),
        _ => return None,
    };
    w.bump();

    // Generics: `<R: Rng + ?Sized, const N: usize>` → bound map.
    let mut generics = Vec::new();
    if w.peek(0).is_some_and(|t| t.is_punct('<')) {
        let start = w.i;
        w.skip_generics();
        generics = parse_generic_bounds(&w.toks[start..w.i]);
    }

    // Params.
    let mut params = Vec::new();
    if w.peek(0).is_some_and(|t| t.is_punct('(')) {
        let start = w.i;
        w.skip_group();
        params = parse_params(&w.toks[start..w.i]);
    }

    // Return type / where clause: scan to the body `{` or a `;`.
    loop {
        match w.peek(0) {
            None => return None,
            Some(t) if t.is_punct(';') => {
                w.bump();
                return Some(make_fn(
                    w,
                    krate,
                    base_module,
                    file_idx,
                    line,
                    name,
                    None,
                    params,
                    generics,
                    attr_cfg_test,
                ));
            }
            Some(t) if t.is_punct('{') => break,
            Some(t) if t.is_punct('<') => w.skip_generics(),
            Some(t) if t.is_punct('(') || t.is_punct('[') => w.skip_group(),
            _ => {
                w.bump();
            }
        }
    }
    let body_start = w.i;
    w.skip_group();
    let body = Some((body_start, w.i));
    Some(make_fn(
        w,
        krate,
        base_module,
        file_idx,
        line,
        name,
        body,
        params,
        generics,
        attr_cfg_test,
    ))
}

#[allow(clippy::too_many_arguments)]
fn make_fn(
    w: &Walker<'_>,
    krate: &str,
    base_module: &[String],
    file_idx: usize,
    line: u32,
    name: String,
    body: Option<(usize, usize)>,
    params: Vec<(String, String)>,
    generics: Vec<(String, Vec<String>)>,
    attr_cfg_test: bool,
) -> FnItem {
    let mut module: Vec<String> = base_module.to_vec();
    let mut self_type = None;
    let mut trait_name = None;
    let mut is_trait_default = false;
    for (scope, _) in &w.scopes {
        match scope {
            Scope::Module(m) => module.push(m.clone()),
            Scope::Impl(d) => {
                self_type = Some(d.self_type.clone());
                trait_name = d.trait_name.clone();
            }
            Scope::Trait(t) => {
                self_type = Some(t.clone());
                trait_name = Some(t.clone());
                is_trait_default = body.is_some();
            }
            Scope::Opaque => {}
        }
    }
    FnItem {
        krate: krate.to_string(),
        module,
        self_type,
        trait_name,
        is_trait_default,
        name,
        file: file_idx,
        line,
        body,
        params,
        generics,
        in_cfg_test: attr_cfg_test || w.cfg_test_depth.is_some(),
    }
}

/// `<R: Rng + ?Sized, const N: usize, 'a>` → `[("R", ["Rng"])]`.
fn parse_generic_bounds(toks: &[Tok]) -> Vec<(String, Vec<String>)> {
    let mut out: Vec<(String, Vec<String>)> = Vec::new();
    let mut depth = 0isize;
    let mut k = 0usize;
    while k < toks.len() {
        let t = &toks[k];
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') {
            depth -= 1;
        } else if depth == 1 && t.kind == TokKind::Ident {
            if t.text == "const" {
                // `const N: usize` — skip name and type.
                k += 1;
                while k < toks.len() && !toks[k].is_punct(',') && !toks[k].is_punct('>') {
                    k += 1;
                }
                continue;
            }
            let name = t.text.clone();
            let mut bounds = Vec::new();
            if !toks.get(k + 1).is_some_and(|n| n.is_punct(':')) {
                // Unbounded parameter (`<T, …>`): record and move on —
                // failing to advance here used to hang the parser.
                out.push((name, bounds));
                k += 1;
                continue;
            }
            {
                // Collect bound idents until `,` or the closing `>`.
                let mut j = k + 2;
                let mut d2 = 0isize;
                let mut last_ident: Option<String> = None;
                while j < toks.len() {
                    let b = &toks[j];
                    if b.is_punct('<') {
                        d2 += 1;
                    } else if b.is_punct('>') {
                        if d2 == 0 {
                            break;
                        }
                        d2 -= 1;
                    } else if d2 == 0 && b.is_punct(',') {
                        break;
                    } else if d2 == 0 && b.kind == TokKind::Ident {
                        last_ident = Some(b.text.clone());
                    } else if d2 == 0 && b.is_punct('+') {
                        if let Some(li) = last_ident.take() {
                            bounds.push(li);
                        }
                    }
                    j += 1;
                }
                if let Some(li) = last_ident {
                    bounds.push(li);
                }
                k = j;
            }
            bounds.retain(|b| b != "Sized" && b != "Send" && b != "Sync");
            out.push((name, bounds));
            continue;
        }
        k += 1;
    }
    out
}

/// `(self, rng: &mut R, beats: &[CodeWord72; N])` →
/// `[("rng", "R"), ("beats", "CodeWord72")]`. The "main type ident" is
/// the last capitalized identifier of the parameter's type.
fn parse_params(toks: &[Tok]) -> Vec<(String, String)> {
    let mut out = Vec::new();
    // Split on top-level commas (depth 1 = inside the parens).
    let mut depth = 0isize;
    let mut cur: Vec<&Tok> = Vec::new();
    let mut groups: Vec<Vec<&Tok>> = Vec::new();
    for t in toks {
        match t.text.as_str() {
            "(" | "[" | "{" => {
                depth += 1;
                if depth > 1 {
                    cur.push(t);
                }
            }
            ")" | "]" | "}" => {
                depth -= 1;
                if depth >= 1 {
                    cur.push(t);
                }
            }
            "," if depth == 1 => groups.push(std::mem::take(&mut cur)),
            _ => {
                if depth >= 1 {
                    cur.push(t);
                }
            }
        }
    }
    if !cur.is_empty() {
        groups.push(cur);
    }
    for g in groups {
        let Some(colon) = g.iter().position(|t| t.is_punct(':')) else {
            continue; // `self`, `&mut self`, …
        };
        let name = match g[..colon].iter().rev().find(|t| t.kind == TokKind::Ident) {
            Some(t) => t.text.clone(),
            None => continue,
        };
        let ty = g[colon + 1..]
            .iter()
            .rev()
            .find(|t| {
                t.kind == TokKind::Ident && t.text.chars().next().is_some_and(char::is_uppercase)
            })
            .map(|t| t.text.clone());
        if let Some(ty) = ty {
            out.push((name, ty));
        }
    }
    out
}

/// Parses a `use` tree after the keyword, pushing alias entries.
/// Handles `a::b::C`, `a::{B, c::D}`, `a::B as E`, and glob `a::*`
/// (recorded with alias `*`).
fn parse_use(w: &mut Walker<'_>, out: &mut Vec<UseEntry>) {
    let mut prefix: Vec<String> = Vec::new();
    parse_use_tree(w, &mut prefix, out);
    if w.peek(0).is_some_and(|t| t.is_punct(';')) {
        w.bump();
    }
}

fn parse_use_tree(w: &mut Walker<'_>, prefix: &mut Vec<String>, out: &mut Vec<UseEntry>) {
    let base_len = prefix.len();
    loop {
        match w.peek(0) {
            Some(t) if t.kind == TokKind::Ident && t.text == "as" => {
                w.bump();
                if let Some(t) = w.peek(0) {
                    if t.kind == TokKind::Ident {
                        out.push(UseEntry {
                            alias: t.text.clone(),
                            path: prefix.clone(),
                        });
                        w.bump();
                    }
                }
                prefix.truncate(base_len);
                return;
            }
            Some(t) if t.kind == TokKind::Ident => {
                prefix.push(t.text.clone());
                w.bump();
            }
            Some(t) if t.is_punct('*') => {
                w.bump();
                out.push(UseEntry {
                    alias: "*".to_string(),
                    path: prefix.clone(),
                });
                prefix.truncate(base_len);
                return;
            }
            Some(t) if t.is_punct(':') => {
                w.bump(); // consume both colons of `::`
                if w.peek(0).is_some_and(|t| t.is_punct(':')) {
                    w.bump();
                }
                if w.peek(0).is_some_and(|t| t.is_punct('{')) {
                    w.bump();
                    loop {
                        parse_use_tree(w, prefix, out);
                        match w.peek(0) {
                            Some(t) if t.is_punct(',') => {
                                w.bump();
                                if w.peek(0).is_some_and(|t| t.is_punct('}')) {
                                    w.bump();
                                    break;
                                }
                            }
                            Some(t) if t.is_punct('}') => {
                                w.bump();
                                break;
                            }
                            _ => break,
                        }
                    }
                    prefix.truncate(base_len);
                    return;
                }
            }
            _ => {
                // End of this tree node: emit the leaf (last segment). A
                // `self` leaf (`use a::b::{self, C}`) names the parent
                // module, so drop the keyword and alias the segment above.
                let had_self =
                    prefix.len() > base_len && prefix.last().is_some_and(|s| s == "self");
                if had_self {
                    prefix.pop();
                }
                if prefix.len() > base_len || (had_self && !prefix.is_empty()) {
                    if let Some(last) = prefix.last() {
                        out.push(UseEntry {
                            alias: last.clone(),
                            path: prefix.clone(),
                        });
                    }
                }
                prefix.truncate(base_len);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Workspace {
        let mut ws = Workspace::default();
        ws.add_file("crates/x/src/lib.rs", "x", &[], src);
        ws
    }

    #[test]
    fn extracts_free_fns_and_bodies() {
        let ws = parse("pub fn alpha() -> u32 { beta() }\nfn beta() -> u32 { 7 }\n");
        assert_eq!(ws.fns.len(), 2);
        assert_eq!(ws.fns[0].name, "alpha");
        assert_eq!(ws.fns[0].line, 1);
        assert!(ws.fns[0].body.is_some());
        assert_eq!(ws.fns[1].name, "beta");
        assert!(ws.fns[1].self_type.is_none());
    }

    #[test]
    fn impl_methods_get_self_type_and_trait() {
        let src = "struct Foo(u32);\nimpl Foo { fn m(&self) {} }\n\
                   impl Clone for Foo { fn clone(&self) -> Self { Foo(self.0) } }";
        let ws = parse(src);
        let m = ws.fns.iter().find(|f| f.name == "m").expect("m");
        assert_eq!(m.self_type.as_deref(), Some("Foo"));
        assert_eq!(m.trait_name, None);
        let c = ws.fns.iter().find(|f| f.name == "clone").expect("clone");
        assert_eq!(c.self_type.as_deref(), Some("Foo"));
        assert_eq!(c.trait_name.as_deref(), Some("Clone"));
        assert!(ws.files[0].ctors.contains(&"Foo".to_string()));
    }

    #[test]
    fn trait_default_methods_are_flagged() {
        let src = "trait T { fn req(&self); fn def(&self) -> u32 { 1 } }";
        let ws = parse(src);
        let req = ws.fns.iter().find(|f| f.name == "req").expect("req");
        assert!(req.body.is_none());
        assert!(!req.is_trait_default);
        let def = ws.fns.iter().find(|f| f.name == "def").expect("def");
        assert!(def.body.is_some());
        assert!(def.is_trait_default);
        assert_eq!(def.self_type.as_deref(), Some("T"));
    }

    #[test]
    fn generic_impls_resolve_to_base_type_name() {
        let src = "impl<const N: usize> Ring<N> { fn push(&mut self) {} }\n\
                   impl<'a> Drop for Span<'a> { fn drop(&mut self) {} }";
        let ws = parse(src);
        let p = ws.fns.iter().find(|f| f.name == "push").expect("push");
        assert_eq!(p.self_type.as_deref(), Some("Ring"));
        let d = ws.fns.iter().find(|f| f.name == "drop").expect("drop");
        assert_eq!(d.self_type.as_deref(), Some("Span"));
        assert_eq!(d.trait_name.as_deref(), Some("Drop"));
    }

    #[test]
    fn params_and_generic_bounds() {
        let src = "fn eval<R: Rng + ?Sized>(rng: &mut R, e: &FaultEvent, n: usize) {}";
        let ws = parse(src);
        let f = &ws.fns[0];
        assert_eq!(
            f.params,
            vec![
                ("rng".to_string(), "R".to_string()),
                ("e".to_string(), "FaultEvent".to_string())
            ]
        );
        assert_eq!(f.generics, vec![("R".to_string(), vec!["Rng".to_string()])]);
    }

    #[test]
    fn cfg_test_modules_are_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn inside() {}\n}\nfn after() {}";
        let ws = parse(src);
        let live = ws.fns.iter().find(|f| f.name == "live").expect("live");
        assert!(!live.in_cfg_test);
        let inside = ws.fns.iter().find(|f| f.name == "inside").expect("in");
        assert!(inside.in_cfg_test);
        assert_eq!(inside.module, vec!["tests"]);
        let after = ws.fns.iter().find(|f| f.name == "after").expect("after");
        assert!(!after.in_cfg_test);
    }

    #[test]
    fn use_trees_flatten_with_renames_and_groups() {
        let src = "use std::sync::atomic::{AtomicU64, Ordering};\n\
                   use crate::event::LifetimeSampler;\n\
                   use xed_ecc::secded::SecDed as Code;\n\
                   use rand::rngs::*;\n";
        let ws = parse(src);
        let find = |a: &str| {
            ws.files[0]
                .uses
                .iter()
                .find(|u| u.alias == a)
                .map(|u| u.path.join("::"))
        };
        assert_eq!(
            find("AtomicU64"),
            Some("std::sync::atomic::AtomicU64".into())
        );
        assert_eq!(find("Ordering"), Some("std::sync::atomic::Ordering".into()));
        assert_eq!(
            find("LifetimeSampler"),
            Some("crate::event::LifetimeSampler".into())
        );
        assert_eq!(find("Code"), Some("xed_ecc::secded::SecDed".into()));
        assert_eq!(find("*"), Some("rand::rngs".into()));
    }

    #[test]
    fn use_group_self_aliases_the_parent_module() {
        let src = "use xed_testkit::analytic_gate::{self, GateScope};\n";
        let ws = parse(src);
        let find = |a: &str| {
            ws.files[0]
                .uses
                .iter()
                .find(|u| u.alias == a)
                .map(|u| u.path.join("::"))
        };
        assert_eq!(
            find("analytic_gate"),
            Some("xed_testkit::analytic_gate".into())
        );
        assert_eq!(
            find("GateScope"),
            Some("xed_testkit::analytic_gate::GateScope".into())
        );
        assert_eq!(find("self"), None);
    }

    #[test]
    fn enum_variants_join_the_constructor_set() {
        let src = "enum Verdict { Benign, Corrected }\n\
                   enum Outcome { Clean { data: u64 }, Hit(u32) }";
        let ws = parse(src);
        assert!(ws.files[0].types.contains(&"Verdict".to_string()));
        assert!(ws.files[0].types.contains(&"Outcome".to_string()));
        assert!(ws.files[0].ctors.contains(&"Hit".to_string()));
    }

    #[test]
    fn qualified_names() {
        let src = "impl Foo { fn m(&self) {} }";
        let mut ws = Workspace::default();
        ws.add_file("crates/x/src/sub.rs", "x_crate", &["sub".into()], src);
        assert_eq!(ws.fns[0].qualified(), "x_crate::sub::Foo::m");
    }
}
