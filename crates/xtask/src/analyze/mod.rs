//! `xed-analyze`: whole-workspace static analysis with transitive
//! hot-path proofs.
//!
//! ```text
//! cargo run -p xtask -- analyze [--format text|json] [--root PATH]
//!                               [--baseline PATH]
//! ```
//!
//! Three layers (see DESIGN.md §13):
//!
//! 1. [`lexer`] — a minimal Rust lexer that classifies every byte as
//!    code, comment, or literal body, so nothing downstream ever matches
//!    inside a comment or string;
//! 2. [`items`] + [`graph`] — item extraction (fn/impl/trait/struct)
//!    and a sound-over-precise workspace call graph with an explicit
//!    unresolved bucket;
//! 3. [`rules`] — the XA100–XA103 analyses over the reachable closures
//!    of the named hot entry points, gated through the [`baseline`]
//!    suppression file (`xed-analyze.baseline`, hot paths exempt).
//!
//! Exit codes: 0 clean, 1 findings survive the baseline, 2 usage or
//! I/O error.

pub mod baseline;
pub mod graph;
pub mod items;
pub mod lexer;
pub mod rules;

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use items::Workspace;

/// Registry path XA103 audits, relative to the workspace root.
const REGISTRY_REL: &str = "crates/telemetry/src/registry.rs";
/// Default baseline file name at the workspace root.
const BASELINE_FILE: &str = "xed-analyze.baseline";

const USAGE: &str =
    "usage: cargo run -p xtask -- analyze [--format text|json] [--root PATH] [--baseline PATH]";

/// CLI entry point for the `analyze` subcommand.
pub fn run(args: &[String]) -> ExitCode {
    let mut format = "text".to_string();
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next() {
                Some(v) if v == "text" || v == "json" => format = v.clone(),
                _ => {
                    eprintln!("--format takes `text` or `json`");
                    return ExitCode::from(2);
                }
            },
            "--root" => match it.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => {
                    eprintln!("--root takes a path");
                    return ExitCode::from(2);
                }
            },
            "--baseline" => match it.next() {
                Some(v) => baseline_path = Some(PathBuf::from(v)),
                None => {
                    eprintln!("--baseline takes a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let root = root.unwrap_or_else(|| {
        let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        manifest
            .parent()
            .and_then(|p| p.parent())
            .map(PathBuf::from)
            .unwrap_or(manifest)
    });

    let started = Instant::now();
    let ws = match load_workspace(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("xed-analyze: {e}");
            return ExitCode::from(2);
        }
    };
    let g = graph::build(&ws);
    let analysis = rules::run(&ws, &g, REGISTRY_REL);

    let baseline_path = baseline_path.unwrap_or_else(|| root.join(BASELINE_FILE));
    let entries = match fs::read_to_string(&baseline_path) {
        Ok(text) => match baseline::parse(&text) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("xed-analyze: {e}");
                return ExitCode::from(2);
            }
        },
        Err(_) => Vec::new(), // no baseline file: strict mode
    };

    let mut findings = analysis.findings;
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule, a.symbol.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.rule,
            b.symbol.as_str(),
        ))
    });
    let applied = baseline::apply(findings, &entries);
    let elapsed_ms = started.elapsed().as_millis();

    if format == "json" {
        render_json(&applied, &analysis.groups, &g, elapsed_ms);
    } else {
        render_text(&applied, &analysis.groups, &g, elapsed_ms);
    }

    if applied.kept.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Parses every workspace source file into one [`Workspace`]: all
/// `crates/*/src/**/*.rs` plus the root facade crate's `src/`.
pub fn load_workspace(root: &Path) -> Result<Workspace, String> {
    let mut ws = Workspace::default();
    let mut dirs: Vec<(String, PathBuf)> = Vec::new();

    let crates_dir = root.join("crates");
    let read = fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?;
    for entry in read.flatten() {
        let dir = entry.path();
        let src = dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let krate = crate_name(&dir.join("Cargo.toml")).unwrap_or_else(|| {
            dir.file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default()
        });
        dirs.push((krate, src));
    }
    // The root facade crate, if present.
    let root_src = root.join("src");
    if root_src.is_dir() {
        if let Some(name) = crate_name(&root.join("Cargo.toml")) {
            dirs.push((name, root_src));
        }
    }
    dirs.sort();

    for (krate, src) in dirs {
        let mut files = Vec::new();
        collect_rs(&src, &mut files).map_err(|e| format!("walking {}: {e}", src.display()))?;
        files.sort();
        for file in files {
            let text = fs::read_to_string(&file)
                .map_err(|e| format!("reading {}: {e}", file.display()))?;
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            let module = module_path(&src, &file);
            if std::env::var("XED_ANALYZE_TRACE").is_ok() {
                eprintln!("parsing {rel}");
            }
            ws.add_file(&rel, &krate, &module, &text);
        }
    }
    if std::env::var("XED_ANALYZE_TRACE").is_ok() {
        for f in &ws.fns {
            let tr = f.trait_name.as_deref().unwrap_or("-");
            eprintln!(
                "fn {} [trait {tr}] {}:{}",
                f.qualified(),
                ws.files[f.file].rel_path,
                f.line
            );
        }
    }
    Ok(ws)
}

/// Reads the `[package] name` out of a Cargo.toml (underscore form).
fn crate_name(manifest: &Path) -> Option<String> {
    let text = fs::read_to_string(manifest).ok()?;
    let mut in_package = false;
    for line in text.lines() {
        let t = line.trim();
        if t.starts_with('[') {
            in_package = t == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = t.strip_prefix("name") {
                let rest = rest.trim_start().strip_prefix('=')?.trim();
                let name = rest.trim_matches('"');
                return Some(name.replace('-', "_"));
            }
        }
    }
    None
}

/// Module path of `file` under `src` (empty for lib/main, components
/// plus file stem otherwise).
fn module_path(src: &Path, file: &Path) -> Vec<String> {
    let rel = file.strip_prefix(src).unwrap_or(file);
    let mut out: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    if let Some(last) = out.pop() {
        let stem = last.trim_end_matches(".rs");
        if !matches!(stem, "lib" | "main" | "mod") {
            out.push(stem.to_string());
        }
    }
    out
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), std::io::Error> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn render_text(
    applied: &baseline::Applied,
    groups: &[rules::GroupReport],
    g: &graph::CallGraph,
    elapsed_ms: u128,
) {
    for f in &applied.kept {
        let tag = f.group.map(|g| format!(" [{g}]")).unwrap_or_default();
        println!(
            "{}:{} {}{tag} {} — {}",
            f.file, f.line, f.rule, f.symbol, f.message
        );
    }
    for w in &applied.warnings {
        println!("warning: {w}");
    }
    for gr in groups {
        println!(
            "proof [{}]: {} entry fn(s), closure of {} fn(s)",
            gr.name,
            gr.roots.len(),
            gr.closure.len()
        );
    }
    let total: usize = g.unresolved.values().map(|(n, _)| n).sum();
    println!(
        "unresolved bucket: {} distinct callee(s), {} site(s){}",
        g.unresolved.len(),
        total,
        if g.unresolved.is_empty() { "" } else { ":" }
    );
    for (name, (n, example)) in g.unresolved.iter().take(20) {
        println!("  {name} ({n} site(s), e.g. {example})");
    }
    println!(
        "xed-analyze: {} finding(s), {} suppressed, {} stale baseline entr(y/ies), {elapsed_ms} ms",
        applied.kept.len(),
        applied.suppressed,
        applied.warnings.len()
    );
}

fn render_json(
    applied: &baseline::Applied,
    groups: &[rules::GroupReport],
    g: &graph::CallGraph,
    elapsed_ms: u128,
) {
    let findings: Vec<String> = applied
        .kept
        .iter()
        .map(|f| {
            format!(
                r#"{{"rule":"{}","file":"{}","line":{},"symbol":"{}","group":{},"message":"{}"}}"#,
                f.rule,
                esc(&f.file),
                f.line,
                esc(&f.symbol),
                f.group
                    .map_or_else(|| "null".to_string(), |g| format!("\"{}\"", esc(g))),
                esc(&f.message)
            )
        })
        .collect();
    let groups_json: Vec<String> = groups
        .iter()
        .map(|gr| {
            format!(
                r#"{{"name":"{}","roots":[{}],"closure_size":{}}}"#,
                esc(gr.name),
                gr.roots
                    .iter()
                    .map(|(r, line)| format!(r#"{{"symbol":"{}","line":{line}}}"#, esc(r)))
                    .collect::<Vec<_>>()
                    .join(","),
                gr.closure.len()
            )
        })
        .collect();
    let unresolved: Vec<String> = g
        .unresolved
        .iter()
        .map(|(k, (n, _))| format!("\"{}\":{n}", esc(k)))
        .collect();
    println!(
        r#"{{"findings":[{}],"groups":[{}],"unresolved":{{{}}},"suppressed":{},"stale":{},"elapsed_ms":{elapsed_ms}}}"#,
        findings.join(","),
        groups_json.join(","),
        unresolved.join(","),
        applied.suppressed,
        applied.warnings.len()
    );
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}
