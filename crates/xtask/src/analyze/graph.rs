//! Workspace call graph: call-site extraction from function bodies,
//! name-resolution heuristics, and reachability closure.
//!
//! Resolution is deliberately *sound over precise* for the properties
//! the XA rules prove: when a call could dispatch to several workspace
//! functions (a trait method with multiple impls, a method name with an
//! unknown receiver), edges go to **every** candidate, so the reachable
//! set over-approximates the true dynamic call closure. A proof of
//! "nothing reachable panics/allocates" over the over-approximation is
//! therefore still a proof. The cost is possible false-positive
//! findings in functions that are not truly reachable — those are fixed
//! or justified like real ones.
//!
//! Resolution ladder (first hit wins; documented in DESIGN.md §13):
//!
//! 1. constructor names (tuple structs, enum variants, `Some`/`Ok`/…)
//!    are not calls;
//! 2. explicit paths: `crate::`/`self::`/`super::`, workspace crate
//!    names, and per-file `use` aliases expand to a crate + item path;
//! 3. `Type::method` resolves against the workspace impl index;
//! 4. `.method(…)` resolves by receiver: `self` → the enclosing impl
//!    type, a typed local/param → that type (generic parameters resolve
//!    through their trait bounds to every impl + the trait default),
//!    otherwise every workspace method of that name;
//! 5. paths into `std`/`core`/`alloc` and methods with no workspace
//!    candidate are classified against the known-safe/alloc lists in
//!    [`crate::analyze::rules`];
//! 6. anything left lands in the **unresolved bucket**, which the
//!    report surfaces explicitly — unresolved is a visible hole in the
//!    proof, never a silent pass.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use super::items::{FnItem, Workspace};
use super::lexer::{Tok, TokKind};

/// How a method call's receiver was written at the call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Recv {
    /// `self.method(…)`.
    OnSelf,
    /// `name.method(…)` for a simple identifier receiver.
    Named(String),
    /// Chained / complex receiver (`foo().method(…)`, `a[i].method(…)`).
    Unknown,
}

/// One extracted call-ish site inside a function body.
#[derive(Debug, Clone)]
pub enum RawSite {
    /// `a::b::c(…)` — full path segments.
    Path { segs: Vec<String>, line: u32 },
    /// `.name(…)` with the receiver shape.
    Method { name: String, recv: Recv, line: u32 },
    /// `name!(…)`.
    Macro { name: String, line: u32 },
    /// `expr[index]`; `literal` means the index token was a bare
    /// numeric literal (compile-time-checked for arrays in practice).
    Index { line: u32, literal: bool },
    /// `Ordering::X` with the nearest preceding atomic op name.
    Atomic {
        op: String,
        ordering: String,
        line: u32,
    },
}

/// Everything extracted from one function body.
#[derive(Debug, Default, Clone)]
pub struct BodyFacts {
    /// All sites in source order.
    pub sites: Vec<RawSite>,
    /// Local `let` bindings with a recognizable type (`name` → type).
    pub locals: HashMap<String, String>,
    /// Names callable without leaving this body: `let`-bound closures,
    /// nested `fn` items, and locally declared tuple structs / enums.
    /// Their effects are already attributed to the enclosing function
    /// (the whole body range is scanned), so calls through these names
    /// are inline, not graph edges.
    pub local_callables: HashSet<String>,
}

/// Extracts call sites, macro uses, indexing, atomics, and typed local
/// bindings from a body token range.
pub fn extract_body(toks: &[Tok], body: (usize, usize)) -> BodyFacts {
    let t = &toks[body.0..body.1];
    let mut facts = BodyFacts::default();
    let mut k = 0usize;
    while k < t.len() {
        let tok = &t[k];

        // `let [mut] name [: Type] = Type::…` bindings.
        if tok.is_ident("let") {
            let mut j = k + 1;
            if t.get(j).is_some_and(|x| x.is_ident("mut")) {
                j += 1;
            }
            if let Some(name_tok) = t.get(j) {
                if name_tok.kind == TokKind::Ident {
                    let name = name_tok.text.clone();
                    let mut ty: Option<String> = None;
                    let mut m = j + 1;
                    if t.get(m).is_some_and(|x| x.is_punct(':')) {
                        // Explicit type: scan to `=` or `;`.
                        let mut last_upper = None;
                        m += 1;
                        while let Some(x) = t.get(m) {
                            if x.is_punct('=') || x.is_punct(';') {
                                break;
                            }
                            if x.kind == TokKind::Ident
                                && x.text.chars().next().is_some_and(char::is_uppercase)
                            {
                                last_upper = Some(x.text.clone());
                            }
                            m += 1;
                        }
                        ty = last_upper;
                    } else if t.get(m).is_some_and(|x| x.is_punct('=')) {
                        // `= Type::ctor(…)` — first segment if capitalized.
                        if let Some(x) = t.get(m + 1) {
                            if x.kind == TokKind::Ident
                                && x.text.chars().next().is_some_and(char::is_uppercase)
                                && t.get(m + 2).is_some_and(|c| c.is_punct(':'))
                            {
                                ty = Some(x.text.clone());
                            }
                        }
                    }
                    // `let [mut] name = [move] |…|` — a local closure:
                    // calls through `name` stay inside this body.
                    if t.get(m).is_some_and(|x| x.is_punct('=')) {
                        let mut r = m + 1;
                        if t.get(r).is_some_and(|x| x.is_ident("move")) {
                            r += 1;
                        }
                        if t.get(r).is_some_and(|x| x.is_punct('|')) {
                            facts.local_callables.insert(name.clone());
                        }
                    }
                    if let Some(ty) = ty {
                        facts.locals.insert(name, ty);
                    }
                }
            }
        }

        // Items declared inside the body: `fn f`, `struct S`, `enum E`.
        // Record the name as locally callable and step past it so the
        // declaration header is not misread as a call site.
        if tok.kind == TokKind::Ident && matches!(tok.text.as_str(), "fn" | "struct" | "enum") {
            if let Some(n) = t.get(k + 1) {
                if n.kind == TokKind::Ident {
                    facts.local_callables.insert(n.text.clone());
                    k += 2;
                    continue;
                }
            }
        }

        // Macro invocation: Ident `!` (not `!=`).
        if tok.kind == TokKind::Ident
            && t.get(k + 1).is_some_and(|x| x.is_punct('!'))
            && !t.get(k + 2).is_some_and(|x| x.is_punct('='))
        {
            facts.sites.push(RawSite::Macro {
                name: tok.text.clone(),
                line: tok.line,
            });
            k += 2;
            continue;
        }

        // `Ordering::X` — find the owning atomic op by backward scan.
        if tok.is_ident("Ordering")
            && t.get(k + 1).is_some_and(|x| x.is_punct(':'))
            && t.get(k + 2).is_some_and(|x| x.is_punct(':'))
        {
            if let Some(ord) = t.get(k + 3) {
                if ord.kind == TokKind::Ident {
                    let op = t[..k]
                        .iter()
                        .rev()
                        .take(14)
                        .find(|x| x.kind == TokKind::Ident && is_atomic_op(&x.text))
                        .map_or_else(|| "?".to_string(), |x| x.text.clone());
                    facts.sites.push(RawSite::Atomic {
                        op,
                        ordering: ord.text.clone(),
                        line: ord.line,
                    });
                    k += 4;
                    continue;
                }
            }
        }

        // Method call: `.name(` or `.name::<…>(`.
        if tok.is_punct('.') {
            if let Some(name_tok) = t.get(k + 1) {
                if name_tok.kind == TokKind::Ident {
                    let mut j = k + 2;
                    // Turbofish.
                    if t.get(j).is_some_and(|x| x.is_punct(':'))
                        && t.get(j + 1).is_some_and(|x| x.is_punct(':'))
                        && t.get(j + 2).is_some_and(|x| x.is_punct('<'))
                    {
                        j = skip_angle(t, j + 2);
                    }
                    if t.get(j).is_some_and(|x| x.is_punct('(')) {
                        let recv = match k.checked_sub(1).and_then(|p| t.get(p)) {
                            Some(p) if p.is_ident("self") => Recv::OnSelf,
                            Some(p) if p.kind == TokKind::Ident => Recv::Named(p.text.clone()),
                            _ => Recv::Unknown,
                        };
                        facts.sites.push(RawSite::Method {
                            name: name_tok.text.clone(),
                            recv,
                            line: name_tok.line,
                        });
                        k += 2;
                        continue;
                    }
                }
            }
        }

        // Path or plain call: Ident (`::` Ident | `::<…>`)* `(`.
        if tok.kind == TokKind::Ident && !is_keyword(&tok.text) {
            // A single `.` means field/method access; `..` is the range
            // operator, after which a fresh path expression may start
            // (`..Self::base()` in struct-update syntax).
            let prev_dot = k.checked_sub(1).is_some_and(|p| t[p].is_punct('.'))
                && !k.checked_sub(2).is_some_and(|p| t[p].is_punct('.'));
            if !prev_dot {
                let mut segs = vec![tok.text.clone()];
                let mut j = k + 1;
                loop {
                    if t.get(j).is_some_and(|x| x.is_punct(':'))
                        && t.get(j + 1).is_some_and(|x| x.is_punct(':'))
                    {
                        if t.get(j + 2).is_some_and(|x| x.is_punct('<')) {
                            j = skip_angle(t, j + 2);
                            continue;
                        }
                        if let Some(x) = t.get(j + 2) {
                            if x.kind == TokKind::Ident {
                                segs.push(x.text.clone());
                                j += 3;
                                continue;
                            }
                        }
                        break;
                    }
                    break;
                }
                if t.get(j).is_some_and(|x| x.is_punct('(')) {
                    facts.sites.push(RawSite::Path {
                        segs,
                        line: tok.line,
                    });
                    k = j;
                    continue;
                }
                k = j.max(k + 1);
                continue;
            }
        }

        // Indexing: `[` after an expression tail.
        if tok.is_punct('[') {
            let prev = k.checked_sub(1).and_then(|p| t.get(p));
            let is_index = prev.is_some_and(|p| {
                (p.kind == TokKind::Ident && !is_keyword(&p.text))
                    || p.is_punct(')')
                    || p.is_punct(']')
            });
            if is_index {
                let literal = t.get(k + 1).is_some_and(|x| x.kind == TokKind::Num)
                    && t.get(k + 2).is_some_and(|x| x.is_punct(']'));
                facts.sites.push(RawSite::Index {
                    line: tok.line,
                    literal,
                });
            }
        }

        k += 1;
    }
    facts
}

/// Skips a balanced `<…>` starting at index `open` (which must be `<`);
/// returns the index just past the matching `>`.
fn skip_angle(t: &[Tok], open: usize) -> usize {
    let mut depth = 0isize;
    let mut j = open;
    while let Some(x) = t.get(j) {
        if x.is_punct('<') {
            depth += 1;
        } else if x.is_punct('>') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

fn is_atomic_op(s: &str) -> bool {
    matches!(
        s,
        "load"
            | "store"
            | "swap"
            | "fetch_add"
            | "fetch_sub"
            | "fetch_and"
            | "fetch_or"
            | "fetch_xor"
            | "fetch_max"
            | "fetch_min"
            | "fetch_update"
            | "compare_exchange"
            | "compare_exchange_weak"
    )
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "else"
            | "match"
            | "while"
            | "for"
            | "loop"
            | "return"
            | "let"
            | "mut"
            | "ref"
            | "move"
            | "fn"
            | "in"
            | "as"
            | "break"
            | "continue"
            | "where"
            | "impl"
            | "dyn"
            | "pub"
            | "use"
            | "mod"
            | "struct"
            | "enum"
            | "trait"
            | "const"
            | "static"
            | "type"
            | "unsafe"
            | "extern"
    )
}

/// Built-in constructor names that look like calls but are not.
const BUILTIN_CTORS: [&str; 4] = ["Some", "Ok", "Err", "None"];

/// Crate-path roots that belong to the standard library.
fn is_std_root(s: &str) -> bool {
    matches!(s, "std" | "core" | "alloc")
        || matches!(
            s,
            "u8" | "u16"
                | "u32"
                | "u64"
                | "u128"
                | "usize"
                | "i8"
                | "i16"
                | "i32"
                | "i64"
                | "i128"
                | "isize"
                | "f32"
                | "f64"
                | "bool"
                | "char"
                | "str"
        )
}

/// Std types whose associated functions are classified by the rule
/// lists rather than resolved in-workspace.
fn is_std_type(s: &str) -> bool {
    matches!(
        s,
        "Vec"
            | "VecDeque"
            | "String"
            | "Box"
            | "Rc"
            | "Arc"
            | "HashMap"
            | "HashSet"
            | "BTreeMap"
            | "BTreeSet"
            | "Option"
            | "Result"
            | "Instant"
            | "Duration"
            | "SystemTime"
            | "AtomicU64"
            | "AtomicU32"
            | "AtomicUsize"
            | "AtomicBool"
            | "Ordering"
            | "PathBuf"
            | "Path"
            | "OsString"
            | "Cell"
            | "RefCell"
            | "Mutex"
            | "RwLock"
            | "PhantomData"
            | "Default"
            | "Iterator"
            | "ExitCode"
    )
}

/// A call edge target after resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Target {
    /// One or more workspace functions (indices into [`Workspace::fns`]).
    Fns(Vec<usize>),
    /// A standard-library (or otherwise external) call; carries the
    /// joined path (`"Vec::new"`, `".push"`) for the rule lists.
    Std(String),
    /// Constructor — not a call.
    Ctor,
    /// Could not be resolved; carries a display name for the bucket.
    Unresolved(String),
}

/// One resolved call site: where it is and what it targets.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Calling function (index into [`Workspace::fns`]).
    pub caller: usize,
    /// Source line of the call.
    pub line: u32,
    /// Resolution result.
    pub target: Target,
    /// Display form of what was written at the call site.
    pub written: String,
    /// True for a method call with an alloc-capable name whose receiver
    /// type could not be determined: even if workspace methods matched
    /// by name, the real receiver could be a `Vec`/`String`, so XA101
    /// must treat the site as a potential allocation.
    pub alloc_risk: bool,
}

/// Method names that allocate (or can allocate) on std collection and
/// string types. Used both to classify std calls and to dual-flag
/// untyped-receiver method calls.
pub fn is_alloc_risk_name(name: &str) -> bool {
    matches!(
        name,
        "push"
            | "push_str"
            | "extend"
            | "extend_from_slice"
            | "insert"
            | "reserve"
            | "reserve_exact"
            | "resize"
            | "append"
            | "collect"
            | "to_vec"
            | "to_string"
            | "to_owned"
            | "into_owned"
            | "with_capacity"
            | "split_off"
            | "repeat"
            | "join"
            | "concat"
    )
}

/// The resolved call graph plus per-function extracted facts.
#[derive(Debug)]
pub struct CallGraph {
    /// `facts[i]` are the extracted sites of `ws.fns[i]` (empty for
    /// bodyless signatures).
    pub facts: Vec<BodyFacts>,
    /// Resolved workspace-level call edges: `edges[i]` = callee indices.
    pub edges: Vec<Vec<usize>>,
    /// Every resolved call site (workspace, std, and unresolved).
    pub sites: Vec<CallSite>,
    /// Unresolved bucket: display name → (site count, example site).
    pub unresolved: BTreeMap<String, (usize, String)>,
}

/// Indexes used during resolution, built once per workspace.
struct Indexes {
    /// Method name → fn indices (functions with a self type).
    methods: HashMap<String, Vec<usize>>,
    /// (self type, method name) → fn indices.
    typed_methods: HashMap<(String, String), Vec<usize>>,
    /// Free fn name → indices, per crate.
    free_by_crate: HashMap<(String, String), Vec<usize>>,
    /// Struct field name → outer type idents (workspace-wide).
    fields: HashMap<String, Vec<String>>,
    /// Trait name → impl self-type names (workspace-wide).
    trait_impls: HashMap<String, Vec<String>>,
    /// Type name → trait names it implements.
    type_traits: HashMap<String, Vec<String>>,
    /// All constructor-position names (workspace tuple structs, enum
    /// variants, and builtins).
    ctors: HashSet<String>,
    /// All workspace type names.
    types: HashSet<String>,
    /// Known workspace crate names (underscore form).
    crate_names: HashSet<String>,
}

fn build_indexes(ws: &Workspace) -> Indexes {
    let mut ix = Indexes {
        methods: HashMap::new(),
        typed_methods: HashMap::new(),
        free_by_crate: HashMap::new(),
        fields: HashMap::new(),
        trait_impls: HashMap::new(),
        type_traits: HashMap::new(),
        ctors: BUILTIN_CTORS.iter().map(|s| s.to_string()).collect(),
        types: HashSet::new(),
        crate_names: HashSet::new(),
    };
    for (i, f) in ws.fns.iter().enumerate() {
        if f.in_cfg_test {
            continue; // test helpers never join the candidate sets
        }
        ix.crate_names.insert(f.krate.clone());
        match &f.self_type {
            Some(t) => {
                ix.methods.entry(f.name.clone()).or_default().push(i);
                ix.typed_methods
                    .entry((t.clone(), f.name.clone()))
                    .or_default()
                    .push(i);
            }
            None => {
                ix.free_by_crate
                    .entry((f.krate.clone(), f.name.clone()))
                    .or_default()
                    .push(i);
            }
        }
    }
    for file in &ws.files {
        ix.crate_names.insert(file.krate.clone());
        for t in &file.types {
            ix.types.insert(t.clone());
        }
        for c in &file.ctors {
            ix.ctors.insert(c.clone());
        }
        for (f, ty) in &file.fields {
            let v = ix.fields.entry(f.clone()).or_default();
            if !v.contains(ty) {
                v.push(ty.clone());
            }
        }
        for d in &file.impls {
            if let Some(tr) = &d.trait_name {
                ix.trait_impls
                    .entry(tr.clone())
                    .or_default()
                    .push(d.self_type.clone());
                ix.type_traits
                    .entry(d.self_type.clone())
                    .or_default()
                    .push(tr.clone());
            }
        }
    }
    ix
}

/// Builds the resolved call graph for a parsed workspace.
pub fn build(ws: &Workspace) -> CallGraph {
    let ix = build_indexes(ws);
    let mut facts: Vec<BodyFacts> = Vec::with_capacity(ws.fns.len());
    for f in &ws.fns {
        match f.body {
            Some(range) => facts.push(extract_body(&ws.files[f.file].toks, range)),
            None => facts.push(BodyFacts::default()),
        }
    }

    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); ws.fns.len()];
    let mut sites: Vec<CallSite> = Vec::new();
    let mut unresolved: BTreeMap<String, (usize, String)> = BTreeMap::new();

    for (i, f) in ws.fns.iter().enumerate() {
        if f.in_cfg_test {
            continue;
        }
        for site in &facts[i].sites {
            let (line, written, target) = match site {
                RawSite::Path { segs, line } => {
                    // Calls through body-local closures / nested items or
                    // callable parameters (`F: FnMut(…)`) are inline —
                    // their effects are already scanned with this body.
                    if segs.len() == 1
                        && (facts[i].local_callables.contains(&segs[0])
                            || f.params.iter().any(|(n, _)| n == &segs[0]))
                    {
                        continue;
                    }
                    let written = segs.join("::");
                    let target = resolve_path(ws, &ix, f, segs);
                    (*line, written, target)
                }
                RawSite::Method { name, recv, line } => {
                    let written = format!(".{name}");
                    let mut typed = false;
                    let target = resolve_method(ws, &ix, f, &facts[i], name, recv, &mut typed);
                    let risk = !typed && is_alloc_risk_name(name);
                    sites.push(CallSite {
                        caller: i,
                        line: *line,
                        target: target.clone(),
                        written,
                        alloc_risk: risk,
                    });
                    if let Target::Fns(callees) = &target {
                        for &c in callees {
                            if !edges[i].contains(&c) {
                                edges[i].push(c);
                            }
                        }
                    }
                    if let Target::Unresolved(name) = &target {
                        let e = unresolved.entry(name.clone()).or_insert_with(|| {
                            (0, format!("{}:{}", ws.files[f.file].rel_path, line))
                        });
                        e.0 += 1;
                    }
                    continue;
                }
                _ => continue,
            };
            if let Target::Fns(callees) = &target {
                for &c in callees {
                    if !edges[i].contains(&c) {
                        edges[i].push(c);
                    }
                }
            }
            if let Target::Unresolved(name) = &target {
                let e = unresolved
                    .entry(name.clone())
                    .or_insert_with(|| (0, format!("{}:{}", ws.files[f.file].rel_path, line)));
                e.0 += 1;
            }
            sites.push(CallSite {
                caller: i,
                line,
                target,
                written,
                alloc_risk: false,
            });
        }
    }

    CallGraph {
        facts,
        edges,
        sites,
        unresolved,
    }
}

/// Resolves a path call `a::b::c(…)` from inside `caller`.
fn resolve_path(ws: &Workspace, ix: &Indexes, caller: &FnItem, segs: &[String]) -> Target {
    if segs.is_empty() {
        return Target::Unresolved("<empty>".to_string());
    }
    let last = segs.last().map(String::as_str).unwrap_or_default();

    // Constructors (tuple structs, enum variants) are not calls.
    if segs.len() <= 2 && ix.ctors.contains(last) {
        return Target::Ctor;
    }

    // Expand a leading `use` alias (`Alias::rest…` → full path + rest).
    let file = &ws.files[caller.file];
    let first = segs[0].as_str();
    let expanded: Vec<String>;
    let segs = if !matches!(first, "crate" | "self" | "super" | "Self")
        && !ix.crate_names.contains(first)
        && !is_std_root(first)
    {
        if let Some(u) = file.uses.iter().find(|u| u.alias == first) {
            expanded = u
                .path
                .iter()
                .cloned()
                .chain(segs[1..].iter().cloned())
                .collect();
            &expanded[..]
        } else {
            segs
        }
    } else {
        segs
    };
    let first = segs[0].as_str();

    // Std / primitive roots and std types: external, classified later.
    if is_std_root(first) || is_std_type(first) {
        return Target::Std(segs.join("::"));
    }

    // Determine target crate.
    let (krate, rest): (&str, &[String]) = match first {
        "crate" | "self" | "super" => (caller.krate.as_str(), &segs[1..]),
        "Self" => {
            let ty = caller.self_type.clone().unwrap_or_default();
            let name = segs.get(1).cloned().unwrap_or_default();
            return resolve_typed(ws, ix, &ty, &name, &segs.join("::"));
        }
        f if ix.crate_names.contains(f) => (f, &segs[1..]),
        _ => (caller.krate.as_str(), segs),
    };
    if rest.is_empty() {
        return Target::Unresolved(segs.join("::"));
    }
    let name = rest.last().map(String::as_str).unwrap_or_default();

    // `…::Type::method` — typed resolution (workspace-wide by type name).
    if rest.len() >= 2 {
        let ty = &rest[rest.len() - 2];
        if ty.chars().next().is_some_and(char::is_uppercase) {
            if ix.types.contains(ty.as_str())
                || ix
                    .typed_methods
                    .contains_key(&(ty.clone(), name.to_string()))
            {
                return resolve_typed(ws, ix, ty, name, &segs.join("::"));
            }
            // Unknown capitalized type: external.
            return Target::Std(segs.join("::"));
        }
    }

    // Free function in the target crate.
    if let Some(v) = ix.free_by_crate.get(&(krate.to_string(), name.to_string())) {
        return Target::Fns(v.clone());
    }
    // Maybe a constructor after alias expansion.
    if ix.ctors.contains(name) {
        return Target::Ctor;
    }
    // The prelude's `drop` free function (no workspace crate defines
    // one — `Drop::drop` is a method and indexed separately).
    if segs.len() == 1 && name == "drop" {
        return Target::Std("std::mem::drop".to_string());
    }
    Target::Unresolved(segs.join("::"))
}

/// Resolves `Type::method` (or trait `Trait::method`) to workspace fns.
fn resolve_typed(ws: &Workspace, ix: &Indexes, ty: &str, name: &str, written: &str) -> Target {
    let _ = ws;
    let mut out: Vec<usize> = Vec::new();
    if let Some(v) = ix.typed_methods.get(&(ty.to_string(), name.to_string())) {
        out.extend_from_slice(v);
    }
    // Trait-qualified: every impl of the trait plus the default.
    if let Some(impls) = ix.trait_impls.get(ty) {
        for t in impls {
            if let Some(v) = ix.typed_methods.get(&(t.clone(), name.to_string())) {
                out.extend_from_slice(v);
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    if out.is_empty() {
        if ix.types.contains(ty) {
            // Known workspace type, unknown method: probably a derived or
            // std-trait method (`clone`, `default`, `fmt`).
            return Target::Std(written.to_string());
        }
        return Target::Unresolved(written.to_string());
    }
    Target::Fns(out)
}

/// Resolves a `.method(…)` call by receiver shape. Sets `*typed` when
/// the receiver's type was determined (even if it turned out external) —
/// untyped alloc-capable names are dual-flagged by the caller.
fn resolve_method(
    ws: &Workspace,
    ix: &Indexes,
    caller: &FnItem,
    facts: &BodyFacts,
    name: &str,
    recv: &Recv,
    typed: &mut bool,
) -> Target {
    // Candidate receiver types, most specific source first: `self`, a
    // typed local/param, then any same-named struct field workspace-wide.
    let recv_tys: Vec<String> = match recv {
        Recv::OnSelf => caller.self_type.clone().into_iter().collect(),
        Recv::Named(n) => {
            if let Some(t) = facts.locals.get(n) {
                vec![t.clone()]
            } else if let Some((_, t)) = caller.params.iter().find(|(p, _)| p == n) {
                vec![t.clone()]
            } else if let Some(ts) = ix.fields.get(n) {
                ts.clone()
            } else {
                Vec::new()
            }
        }
        Recv::Unknown => Vec::new(),
    };

    let mut out: Vec<usize> = Vec::new();
    for ty in &recv_tys {
        // Generic parameter: resolve through its trait bounds.
        if let Some((_, bounds)) = caller.generics.iter().find(|(g, _)| g == ty) {
            *typed = true;
            for tr in bounds {
                if let Target::Fns(v) = resolve_typed(ws, ix, tr, name, name) {
                    out.extend(v);
                }
            }
            continue;
        }
        if is_std_type(ty) || is_std_root(ty) {
            *typed = true;
            continue; // external receiver; classified below if no hit
        }
        // Concrete workspace type (or trait object/receiver): inherent
        // and trait-impl methods — `resolve_typed` also fans a trait
        // receiver out to every impl. If nothing matched, fall back to
        // trait defaults of traits the type implements.
        let before = out.len();
        if let Target::Fns(v) = resolve_typed(ws, ix, ty, name, name) {
            out.extend(v);
        }
        if out.len() == before {
            if let Some(traits) = ix.type_traits.get(ty) {
                for tr in traits {
                    if let Some(v) = ix.typed_methods.get(&(tr.clone(), name.to_string())) {
                        // Trait-default methods have self_type == trait name.
                        out.extend(v.iter().copied().filter(|&i| ws.fns[i].is_trait_default));
                    }
                }
            }
        }
        if out.len() > before
            || ix.types.contains(ty.as_str())
            || ix.trait_impls.contains_key(ty.as_str())
        {
            *typed = true;
        }
    }
    out.sort_unstable();
    out.dedup();
    if !out.is_empty() {
        return Target::Fns(out);
    }
    if *typed {
        // Receiver type known but the method is external (std trait,
        // derived impl, or a std collection method).
        return classify_external_method(ix, name);
    }

    // Unknown receiver: every workspace method with this name.
    if let Some(v) = ix.methods.get(name) {
        return Target::Fns(v.clone());
    }
    classify_external_method(ix, name)
}

/// A method with no workspace candidate is external (std).
fn classify_external_method(_ix: &Indexes, name: &str) -> Target {
    Target::Std(format!(".{name}"))
}

/// Computes the reachable closure from a set of root fn indices.
pub fn reachable(edges: &[Vec<usize>], roots: &[usize]) -> BTreeSet<usize> {
    let mut seen: BTreeSet<usize> = BTreeSet::new();
    let mut stack: Vec<usize> = roots.to_vec();
    while let Some(i) = stack.pop() {
        if !seen.insert(i) {
            continue;
        }
        for &c in &edges[i] {
            if !seen.contains(&c) {
                stack.push(c);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws_of(files: &[(&str, &str)]) -> Workspace {
        let mut ws = Workspace::default();
        for (path, src) in files {
            // crates/<name>/src/<file>.rs convention.
            let krate = path.split('/').nth(1).unwrap_or("x").to_string();
            let module: Vec<String> = {
                let f = path.split('/').next_back().unwrap_or("lib.rs");
                if f == "lib.rs" || f == "main.rs" {
                    vec![]
                } else {
                    vec![f.trim_end_matches(".rs").to_string()]
                }
            };
            ws.add_file(path, &krate, &module, src);
        }
        ws
    }

    fn idx(ws: &Workspace, name: &str) -> usize {
        ws.fns
            .iter()
            .position(|f| f.name == name)
            .unwrap_or_else(|| panic!("fn {name} not found"))
    }

    #[test]
    fn direct_and_path_calls_resolve() {
        let ws = ws_of(&[(
            "crates/a/src/lib.rs",
            "fn top() { helper(); crate::helper(); }\nfn helper() {}",
        )]);
        let g = build(&ws);
        let top = idx(&ws, "top");
        let helper = idx(&ws, "helper");
        assert_eq!(g.edges[top], vec![helper]);
    }

    #[test]
    fn cross_crate_path_and_use_alias() {
        let ws = ws_of(&[
            (
                "crates/a/src/lib.rs",
                "use b::util::grind;\nfn top() { grind(); b::util::grind(); }",
            ),
            ("crates/b/src/util.rs", "pub fn grind() {}"),
        ]);
        let g = build(&ws);
        let top = idx(&ws, "top");
        let grind = idx(&ws, "grind");
        assert_eq!(g.edges[top], vec![grind]);
        assert!(g.unresolved.is_empty(), "{:?}", g.unresolved);
    }

    #[test]
    fn self_method_calls_resolve_to_impl() {
        let src = "struct Foo;\nimpl Foo {\n fn a(&self) { self.b(); }\n fn b(&self) {}\n}";
        let ws = ws_of(&[("crates/a/src/lib.rs", src)]);
        let g = build(&ws);
        assert_eq!(g.edges[idx(&ws, "a")], vec![idx(&ws, "b")]);
    }

    #[test]
    fn generic_bound_dispatches_to_all_impls_and_default() {
        let src = "trait Code { fn dec(&self) -> u32 { 0 } }\n\
                   struct A; struct B;\n\
                   impl Code for A { fn dec(&self) -> u32 { 1 } }\n\
                   impl Code for B {}\n\
                   fn run<C: Code>(c: &C) { c.dec(); }";
        let ws = ws_of(&[("crates/a/src/lib.rs", src)]);
        let g = build(&ws);
        let run = idx(&ws, "run");
        let mut callees: Vec<String> = g.edges[run]
            .iter()
            .map(|&i| {
                format!(
                    "{}::{}",
                    ws.fns[i].self_type.clone().unwrap_or_default(),
                    ws.fns[i].name
                )
            })
            .collect();
        callees.sort();
        assert_eq!(callees, vec!["A::dec", "Code::dec"]);
    }

    #[test]
    fn typed_local_receiver_narrows_candidates() {
        let src = "struct X; struct Y;\n\
                   impl X { fn go(&self) {} }\n\
                   impl Y { fn go(&self) {} }\n\
                   fn f() { let x = X::new(); x.go(); }\n\
                   impl X { fn new() -> X { X } }";
        let ws = ws_of(&[("crates/a/src/lib.rs", src)]);
        let g = build(&ws);
        let f = idx(&ws, "f");
        let callees: Vec<&str> = g.edges[f]
            .iter()
            .map(|&i| ws.fns[i].self_type.as_deref().unwrap_or(""))
            .collect();
        assert!(callees.contains(&"X"), "{callees:?}");
        assert!(!callees.contains(&"Y"), "{callees:?}");
    }

    #[test]
    fn unknown_receiver_over_approximates() {
        let src = "struct X; struct Y;\n\
                   impl X { fn go(&self) {} }\n\
                   impl Y { fn go(&self) {} }\n\
                   fn f(v: &[u32]) { v.first().map(|_| ()).unwrap_or(()); maker().go(); }\n\
                   fn maker() -> X { X }";
        let ws = ws_of(&[("crates/a/src/lib.rs", src)]);
        let g = build(&ws);
        let f = idx(&ws, "f");
        let callees: Vec<&str> = g.edges[f]
            .iter()
            .map(|&i| ws.fns[i].self_type.as_deref().unwrap_or("-"))
            .collect();
        // `.go()` over-approximates to both X::go and Y::go.
        assert!(
            callees.contains(&"X") && callees.contains(&"Y"),
            "{callees:?}"
        );
    }

    #[test]
    fn constructors_are_not_calls() {
        let src = "struct Wrap(u32);\nenum E { V(u32) }\n\
                   fn f() { let a = Wrap(1); let b = E::V(2); let c = Some(3); }";
        let ws = ws_of(&[("crates/a/src/lib.rs", src)]);
        let g = build(&ws);
        assert!(g.unresolved.is_empty(), "{:?}", g.unresolved);
        assert!(g.edges[idx(&ws, "f")].is_empty());
    }

    #[test]
    fn std_calls_classify_not_unresolved() {
        let src = "fn f() { let v = u64::try_from(3u32); let s = std::mem::take(&mut 0); }";
        let ws = ws_of(&[("crates/a/src/lib.rs", src)]);
        let g = build(&ws);
        assert!(g.unresolved.is_empty(), "{:?}", g.unresolved);
    }

    #[test]
    fn truly_unknown_calls_land_in_the_bucket() {
        let src = "fn f() { mystery_external(); }";
        let ws = ws_of(&[("crates/a/src/lib.rs", src)]);
        let g = build(&ws);
        assert_eq!(g.unresolved.len(), 1);
        assert!(g.unresolved.contains_key("mystery_external"));
    }

    #[test]
    fn atomics_and_indexing_and_macros_extracted() {
        let src = "fn f(a: &AtomicU64, xs: &[u32], i: usize) {\n\
                     a.fetch_add(1, Ordering::Relaxed);\n\
                     let x = xs[i];\n\
                     let y = xs[0];\n\
                     let v = vec![1, 2];\n\
                   }";
        let ws = ws_of(&[("crates/a/src/lib.rs", src)]);
        let g = build(&ws);
        let facts = &g.facts[idx(&ws, "f")];
        let atomics: Vec<_> = facts
            .sites
            .iter()
            .filter_map(|s| match s {
                RawSite::Atomic { op, ordering, .. } => Some((op.clone(), ordering.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(
            atomics,
            vec![("fetch_add".to_string(), "Relaxed".to_string())]
        );
        let idxs: Vec<bool> = facts
            .sites
            .iter()
            .filter_map(|s| match s {
                RawSite::Index { literal, .. } => Some(*literal),
                _ => None,
            })
            .collect();
        assert_eq!(idxs, vec![false, true]);
        assert!(facts
            .sites
            .iter()
            .any(|s| matches!(s, RawSite::Macro { name, .. } if name == "vec")));
    }

    #[test]
    fn reachability_closure() {
        let edges = vec![vec![1], vec![2], vec![], vec![0]];
        let r = reachable(&edges, &[3]);
        assert_eq!(r.into_iter().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        let r2 = reachable(&edges, &[1]);
        assert_eq!(r2.into_iter().collect::<Vec<_>>(), vec![1, 2]);
    }
}
