//! The checked-in baseline/suppression file for xed-analyze.
//!
//! Format (`xed-analyze.baseline` at the workspace root):
//!
//! ```text
//! # comment
//! XA103 crates/telemetry/src/registry.rs metrics::LEGACY_COUNT
//!   justification: kept for dashboard compatibility until PR 9.
//! ```
//!
//! An entry is `RULE FILE SYMBOL` on one line followed by a mandatory
//! indented `justification:` line. Entries suppress exact
//! `(rule, file, symbol)` matches — **except** findings attributed to a
//! named hot-path group, which can never be suppressed (ISSUE 6: hot
//! paths are fixed, not baselined). Entries that match nothing are
//! reported as stale so the file shrinks as debt is paid.

use super::rules::Finding;

/// One parsed baseline entry.
#[derive(Debug, Clone)]
pub struct Entry {
    pub rule: String,
    pub file: String,
    pub symbol: String,
    pub justification: String,
    /// 1-based line in the baseline file (for diagnostics).
    pub line: usize,
}

/// Parses the baseline text; hard errors (malformed lines, missing
/// justifications) abort the run rather than silently weakening the gate.
pub fn parse(text: &str) -> Result<Vec<Entry>, String> {
    let mut entries: Vec<Entry> = Vec::new();
    let mut lines = text.lines().enumerate().peekable();
    while let Some((idx, line)) = lines.next() {
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = t.split_whitespace().collect();
        if parts.len() != 3 || !parts[0].starts_with("XA") && !parts[0].starts_with("XL") {
            return Err(format!(
                "baseline line {}: expected `RULE FILE SYMBOL`, got `{t}`",
                idx + 1
            ));
        }
        let justification = match lines.peek() {
            Some((_, next)) if next.trim_start().starts_with("justification:") => {
                let j = next
                    .trim_start()
                    .trim_start_matches("justification:")
                    .trim()
                    .to_string();
                lines.next();
                j
            }
            _ => {
                return Err(format!(
                    "baseline line {}: entry `{t}` is missing its `justification:` line",
                    idx + 1
                ))
            }
        };
        if justification.is_empty() {
            return Err(format!(
                "baseline line {}: empty justification for `{t}`",
                idx + 1
            ));
        }
        entries.push(Entry {
            rule: parts[0].to_string(),
            file: parts[1].to_string(),
            symbol: parts[2].to_string(),
            justification,
            line: idx + 1,
        });
    }
    Ok(entries)
}

/// Result of applying a baseline to raw findings.
#[derive(Debug)]
pub struct Applied {
    /// Findings that survive (gate failures).
    pub kept: Vec<Finding>,
    /// Count of findings suppressed by baseline entries.
    pub suppressed: usize,
    /// Non-gating warnings: stale entries.
    pub warnings: Vec<String>,
}

/// Applies baseline entries. A baseline entry matching a hot-path
/// (grouped) finding is rejected: the finding is kept *and* an extra
/// finding flags the illegal suppression attempt.
pub fn apply(findings: Vec<Finding>, entries: &[Entry]) -> Applied {
    let mut kept = Vec::new();
    let mut suppressed = 0usize;
    let mut used = vec![false; entries.len()];

    for f in findings {
        let hit = entries
            .iter()
            .position(|e| e.rule == f.rule && e.file == f.file && e.symbol == f.symbol);
        match hit {
            Some(i) if f.group.is_none() => {
                used[i] = true;
                suppressed += 1;
            }
            Some(i) => {
                used[i] = true;
                let entry = &entries[i];
                kept.push(Finding {
                    rule: f.rule,
                    file: f.file.clone(),
                    line: f.line,
                    symbol: f.symbol.clone(),
                    group: f.group,
                    message: format!(
                        "baseline entry (line {}) tries to suppress a hot-path \
                         finding; hot paths are fixed, not baselined",
                        entry.line
                    ),
                });
                kept.push(f);
            }
            None => kept.push(f),
        }
    }

    let warnings = entries
        .iter()
        .zip(&used)
        .filter(|(_, u)| !**u)
        .map(|(e, _)| {
            format!(
                "stale baseline entry at line {}: `{} {} {}` (justified as: {}) \
                 matches no finding — remove it",
                e.line, e.rule, e.file, e.symbol, e.justification
            )
        })
        .collect();

    Applied {
        kept,
        suppressed,
        warnings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, group: Option<&'static str>) -> Finding {
        Finding {
            rule,
            file: "crates/a/src/lib.rs".to_string(),
            line: 10,
            symbol: "a::f".to_string(),
            group,
            message: "m".to_string(),
        }
    }

    #[test]
    fn parse_roundtrip_and_missing_justification() {
        let good = "# c\nXA103 crates/a/src/lib.rs a::f\n  justification: legacy.\n";
        let entries = parse(good).expect("parses");
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].rule, "XA103");
        assert_eq!(entries[0].justification, "legacy.");

        let bad = "XA103 crates/a/src/lib.rs a::f\nXA101 f s\n";
        assert!(parse(bad).is_err());
    }

    #[test]
    fn suppresses_ungrouped_rejects_hot_and_reports_stale() {
        let entries = parse(
            "XA103 crates/a/src/lib.rs a::f\n justification: x.\n\
             XA100 crates/a/src/lib.rs a::f\n justification: y.\n\
             XA101 crates/b/src/lib.rs b::g\n justification: z.\n",
        )
        .expect("parses");
        let out = apply(
            vec![finding("XA103", None), finding("XA100", Some("hot"))],
            &entries,
        );
        assert_eq!(out.suppressed, 1);
        // Hot finding kept twice: the rejection note plus the original.
        assert_eq!(out.kept.len(), 2);
        assert!(out.kept[0].message.contains("hot-path"));
        assert_eq!(out.warnings.len(), 1, "{:?}", out.warnings);
        assert!(out.warnings[0].contains("b::g"));
    }
}
