//! The XA analyses over the workspace call graph.
//!
//! | Rule  | Property                                                    |
//! |-------|-------------------------------------------------------------|
//! | XA100 | transitive panic-freedom of the named hot entry points      |
//! | XA101 | transitive allocation-freedom of the same closures          |
//! | XA102 | atomic-ordering discipline (hot Relaxed, boundary Acq/Rel)  |
//! | XA103 | telemetry registry closure (no dead metrics)                |
//!
//! Justification escapes (checked against *raw* source lines, so they
//! live in comments):
//!
//! - `indexing:` within the site line or 2 lines above — a bounds-safe
//!   indexing site (XA100); bare numeric-literal indexes never need one;
//! - `invariant:` within the site line or 6 lines above — an `expect`
//!   whose invariant is argued (XA100, same convention as XL002);
//! - `alloc:` within the site line or 2 lines above — an allocation
//!   that is amortized reusable-buffer growth (XA101).
//!
//! `unwrap` and panic macros have **no** escape inside a proved closure:
//! refactor to `expect` + `invariant:` or to non-panicking code.

use std::collections::BTreeSet;

use super::graph::{is_alloc_risk_name, CallGraph, RawSite, Target};
use super::items::{FileAst, Workspace};

/// A named entry point: `(krate, optional self type, fn name)`.
#[derive(Debug, Clone, Copy)]
pub struct EntrySpec {
    pub krate: &'static str,
    pub self_type: Option<&'static str>,
    pub name: &'static str,
}

/// A named hot-path group of entry points.
#[derive(Debug, Clone, Copy)]
pub struct GroupSpec {
    pub name: &'static str,
    pub entries: &'static [EntrySpec],
}

/// One analyzer finding. All findings are gate failures unless
/// suppressed by a baseline entry; findings with a `group` (the named
/// hot paths) can never be suppressed.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: &'static str,
    pub file: String,
    pub line: u32,
    /// Qualified name of the containing function (baseline key).
    pub symbol: String,
    /// Hot-path group the finding belongs to, if any.
    pub group: Option<&'static str>,
    pub message: String,
}

/// Per-group proof report.
#[derive(Debug)]
pub struct GroupReport {
    pub name: &'static str,
    /// Resolved entry points as `(qualified name, definition line)`.
    pub roots: Vec<(String, u32)>,
    /// Qualified names of every function in the transitive closure.
    pub closure: Vec<String>,
}

/// The full analysis result (pre-baseline).
#[derive(Debug)]
pub struct Analysis {
    pub findings: Vec<Finding>,
    pub groups: Vec<GroupReport>,
}

/// The hot-path groups whose closures XA100/XA101 prove: the ECC decode
/// kernels, the code-inference syndrome kernels (`SyndromeCode::syndrome`
/// and `::decode` run once per enumerated double inside the
/// miscorrection census), the Monte-Carlo trial evaluation, the
/// telemetry write path,
/// and the `xedd` daemon's memoized repeat-query path (canonical-key
/// derivation plus the cache hit lookup — the two stages every repeat
/// request runs, which DESIGN.md §15 requires to be O(1) and
/// panic-free).
pub const HOT_GROUPS: &[GroupSpec] = &[
    GroupSpec {
        name: "ecc-decode",
        entries: &[
            EntrySpec {
                krate: "xed_ecc",
                self_type: Some("SecDed"),
                name: "decode_line",
            },
            EntrySpec {
                krate: "xed_ecc",
                self_type: Some("ReedSolomon"),
                name: "decode_with",
            },
        ],
    },
    GroupSpec {
        name: "ecc-infer",
        entries: &[
            EntrySpec {
                krate: "xed_ecc",
                self_type: Some("SyndromeCode"),
                name: "syndrome",
            },
            EntrySpec {
                krate: "xed_ecc",
                self_type: Some("SyndromeCode"),
                name: "decode",
            },
        ],
    },
    GroupSpec {
        name: "mc-trial",
        entries: &[
            EntrySpec {
                krate: "xed_faultsim",
                self_type: None,
                name: "run_trials",
            },
            EntrySpec {
                krate: "xed_faultsim",
                self_type: None,
                name: "run_trials_bitsliced",
            },
            EntrySpec {
                krate: "xed_faultsim",
                self_type: Some("SchemeModel"),
                name: "evaluate",
            },
            EntrySpec {
                krate: "xed_faultsim",
                self_type: Some("SchemeModel"),
                name: "evaluate_isolated",
            },
            EntrySpec {
                krate: "xed_faultsim",
                self_type: Some("TailPlan"),
                name: "run_trial",
            },
        ],
    },
    GroupSpec {
        name: "telemetry-write",
        entries: &[
            EntrySpec {
                krate: "xed_telemetry",
                self_type: Some("Counter"),
                name: "add",
            },
            EntrySpec {
                krate: "xed_telemetry",
                self_type: Some("Counter"),
                name: "incr",
            },
            EntrySpec {
                krate: "xed_telemetry",
                self_type: Some("Histogram"),
                name: "record",
            },
            EntrySpec {
                krate: "xed_telemetry",
                self_type: Some("Ring"),
                name: "push",
            },
            EntrySpec {
                krate: "xed_telemetry",
                self_type: Some("Ring"),
                name: "record",
            },
            EntrySpec {
                krate: "xed_telemetry",
                self_type: Some("Tallies"),
                name: "add",
            },
            EntrySpec {
                krate: "xed_telemetry",
                self_type: Some("Tallies"),
                name: "bump",
            },
            EntrySpec {
                krate: "xed_telemetry",
                self_type: Some("Tallies"),
                name: "merge_from",
            },
            EntrySpec {
                krate: "xed_telemetry",
                self_type: Some("Span"),
                name: "start",
            },
            EntrySpec {
                krate: "xed_telemetry",
                self_type: Some("Span"),
                name: "finish",
            },
            EntrySpec {
                krate: "xed_telemetry",
                self_type: Some("TraceBuf"),
                name: "record",
            },
            EntrySpec {
                krate: "xed_telemetry",
                self_type: None,
                name: "record_span",
            },
            EntrySpec {
                krate: "xed_telemetry",
                self_type: None,
                name: "enabled",
            },
            EntrySpec {
                krate: "xed_telemetry",
                self_type: None,
                name: "tick",
            },
            EntrySpec {
                krate: "xed_telemetry",
                self_type: None,
                name: "count",
            },
            EntrySpec {
                krate: "xed_telemetry",
                self_type: None,
                name: "observe",
            },
        ],
    },
    GroupSpec {
        name: "xedd-request",
        entries: &[
            EntrySpec {
                krate: "xed_faultsim",
                self_type: Some("Query"),
                name: "canonical_key",
            },
            EntrySpec {
                krate: "xedd",
                self_type: Some("MemoCache"),
                name: "lookup",
            },
        ],
    },
];

/// Merge/snapshot boundary functions: their loads must be `Acquire`,
/// their stores `Release` (they publish or consume whole snapshots of
/// the sharded hot-path state).
pub const BOUNDARY_FNS: &[EntrySpec] = &[
    EntrySpec {
        krate: "xed_telemetry",
        self_type: Some("Counter"),
        name: "value",
    },
    EntrySpec {
        krate: "xed_telemetry",
        self_type: Some("Counter"),
        name: "reset",
    },
    EntrySpec {
        krate: "xed_telemetry",
        self_type: Some("Histogram"),
        name: "bucket",
    },
    EntrySpec {
        krate: "xed_telemetry",
        self_type: Some("Histogram"),
        name: "count",
    },
    EntrySpec {
        krate: "xed_telemetry",
        self_type: Some("Histogram"),
        name: "sum",
    },
    EntrySpec {
        krate: "xed_telemetry",
        self_type: Some("Histogram"),
        name: "max",
    },
    EntrySpec {
        krate: "xed_telemetry",
        self_type: Some("Histogram"),
        name: "sample",
    },
    EntrySpec {
        krate: "xed_telemetry",
        self_type: Some("Histogram"),
        name: "reset",
    },
    EntrySpec {
        krate: "xed_telemetry",
        self_type: None,
        name: "set_enabled",
    },
];

/// Macros that unconditionally (or assert-conditionally) panic.
fn is_panic_macro(name: &str) -> bool {
    matches!(
        name,
        "panic" | "unreachable" | "assert" | "assert_eq" | "assert_ne" | "todo" | "unimplemented"
    )
}

/// Std paths/associated fns that allocate.
fn std_path_allocates(path: &str) -> bool {
    let segs: Vec<&str> = path.split("::").collect();
    let last = segs.last().copied().unwrap_or_default();
    if is_alloc_risk_name(last) || last == "format" {
        return true;
    }
    if segs.len() >= 2 {
        let ty = segs[segs.len() - 2];
        return match (ty, last) {
            ("Box" | "Rc" | "Arc", "new") => true,
            (
                "String" | "Vec" | "VecDeque" | "HashMap" | "HashSet" | "BTreeMap" | "BTreeSet",
                "from" | "from_iter" | "new",
            ) => {
                // `Vec::new()`/`String::new()` do not allocate.
                last != "new"
            }
            _ => false,
        };
    }
    false
}

/// Looks for `marker` in the raw source within `span` lines above the
/// site (inclusive of the site line itself, for trailing comments).
fn justified(file: &FileAst, line: u32, marker: &str, span: usize) -> bool {
    let l = line as usize; // 1-based
    if l == 0 {
        return false;
    }
    let lo = l.saturating_sub(span + 1);
    file.raw[lo..l.min(file.raw.len())]
        .iter()
        .any(|s| s.contains(marker))
}

/// Resolves one entry spec to fn indices.
fn resolve_entry(ws: &Workspace, e: &EntrySpec) -> Vec<usize> {
    ws.find_fns(e.krate, e.self_type, e.name)
}

/// Runs every XA analysis; `registry_rel` is the telemetry registry path
/// relative to the workspace root (XA103 is skipped when absent).
pub fn run(ws: &Workspace, graph: &CallGraph, registry_rel: &str) -> Analysis {
    let mut findings = Vec::new();
    let mut groups = Vec::new();
    let mut scanned: BTreeSet<usize> = BTreeSet::new();

    for spec in HOT_GROUPS {
        let mut roots = Vec::new();
        let mut root_idx = Vec::new();
        for e in spec.entries {
            let found = resolve_entry(ws, e);
            if found.is_empty() {
                findings.push(Finding {
                    rule: "XA100",
                    file: String::new(),
                    line: 0,
                    symbol: format!(
                        "{}::{}{}",
                        e.krate,
                        e.self_type.map(|t| format!("{t}::")).unwrap_or_default(),
                        e.name
                    ),
                    group: Some(spec.name),
                    message: format!(
                        "hot entry point `{}` not found in the workspace — the \
                         analyzer config drifted from the code",
                        e.name
                    ),
                });
            }
            for i in found {
                roots.push((ws.fns[i].qualified(), ws.fns[i].line));
                root_idx.push(i);
            }
        }
        let closure = super::graph::reachable(&graph.edges, &root_idx);
        for &fi in &closure {
            // A fn shared by several closures is scanned once, attributed
            // to the first group that reaches it.
            if scanned.insert(fi) {
                scan_hot_fn(ws, graph, fi, spec.name, &mut findings);
            }
        }
        groups.push(GroupReport {
            name: spec.name,
            roots,
            closure: closure.iter().map(|&i| ws.fns[i].qualified()).collect(),
        });
    }

    // XA102: boundary functions pair Acquire/Release.
    for e in BOUNDARY_FNS {
        for fi in resolve_entry(ws, e) {
            let f = &ws.fns[fi];
            let file = &ws.files[f.file];
            for site in &graph.facts[fi].sites {
                if let RawSite::Atomic { op, ordering, line } = site {
                    if ordering == "SeqCst" {
                        continue; // the global SeqCst sweep reports it
                    }
                    let want = match op.as_str() {
                        "load" => "Acquire",
                        "store" => "Release",
                        _ => "AcqRel",
                    };
                    if ordering != want {
                        findings.push(Finding {
                            rule: "XA102",
                            file: file.rel_path.clone(),
                            line: *line,
                            symbol: f.qualified(),
                            group: None,
                            message: format!(
                                "boundary `{}` uses `Ordering::{ordering}` for `{op}`; \
                                 merge/snapshot boundaries must use `{want}` to pair \
                                 with the Relaxed hot path",
                                f.name
                            ),
                        });
                    }
                }
            }
        }
    }

    // XA102: stray SeqCst anywhere in the workspace.
    for (fi, f) in ws.fns.iter().enumerate() {
        if f.in_cfg_test {
            continue;
        }
        for site in &graph.facts[fi].sites {
            if let RawSite::Atomic { op, ordering, line } = site {
                if ordering == "SeqCst" {
                    findings.push(Finding {
                        rule: "XA102",
                        file: ws.files[f.file].rel_path.clone(),
                        line: *line,
                        symbol: f.qualified(),
                        group: None,
                        message: format!(
                            "stray `Ordering::SeqCst` on `{op}`; this workspace's \
                             concurrency model needs only Relaxed (hot) and \
                             Acquire/Release (boundaries)"
                        ),
                    });
                }
            }
        }
    }

    // XA103: registry closure — every metric static is used somewhere.
    findings.extend(registry_closure(ws, registry_rel));

    Analysis { findings, groups }
}

/// Scans one function inside a hot closure for XA100/XA101/XA102
/// violations.
fn scan_hot_fn(
    ws: &Workspace,
    graph: &CallGraph,
    fi: usize,
    group: &'static str,
    findings: &mut Vec<Finding>,
) {
    let f = &ws.fns[fi];
    let file = &ws.files[f.file];
    let symbol = f.qualified();
    // A declared reconciliation boundary keeps its Acquire/Release
    // contract even when over-approximate resolution (an untyped
    // receiver sharing a method name) pulls it into a hot closure; the
    // dedicated boundary pass checks its orderings instead.
    let is_boundary = BOUNDARY_FNS
        .iter()
        .any(|e| e.krate == f.krate && e.name == f.name && e.self_type == f.self_type.as_deref());
    let push = |findings: &mut Vec<Finding>, rule, line, message| {
        findings.push(Finding {
            rule,
            file: file.rel_path.clone(),
            line,
            symbol: symbol.clone(),
            group: Some(group),
            message,
        });
    };

    for site in &graph.facts[fi].sites {
        match site {
            RawSite::Macro { name, line } => {
                if is_panic_macro(name) {
                    push(
                        findings,
                        "XA100",
                        *line,
                        format!("`{name}!` is reachable from hot entry group `{group}`"),
                    );
                } else if name == "vec" || name == "format" {
                    push(
                        findings,
                        "XA101",
                        *line,
                        format!("`{name}!` allocates inside hot entry group `{group}`"),
                    );
                }
            }
            RawSite::Index { line, literal }
                if !literal && !justified(file, *line, "indexing:", 2) =>
            {
                push(
                    findings,
                    "XA100",
                    *line,
                    "unjustified non-literal indexing can panic; prove the bound \
                     with an `indexing:` comment within 2 lines or use `get`"
                        .to_string(),
                );
            }
            RawSite::Atomic { op, ordering, line }
                if !is_boundary && ordering != "Relaxed" && ordering != "SeqCst" =>
            {
                push(
                    findings,
                    "XA102",
                    *line,
                    format!(
                        "hot-path atomic `{op}` uses `Ordering::{ordering}`; \
                         hot paths must stay Relaxed (boundaries reconcile)"
                    ),
                );
            }
            _ => {}
        }
    }

    for site in graph.sites.iter().filter(|s| s.caller == fi) {
        match &site.target {
            Target::Std(path) => {
                let name = path
                    .rsplit("::")
                    .next()
                    .unwrap_or(path)
                    .trim_start_matches('.');
                if name == "unwrap" || name == "unwrap_err" {
                    push(
                        findings,
                        "XA100",
                        site.line,
                        format!(
                            "`{name}()` is reachable from hot entry group `{group}`; \
                             refactor or use `expect` with an `invariant:` comment"
                        ),
                    );
                } else if (name == "expect" || name == "expect_err")
                    && !justified(file, site.line, "invariant:", 6)
                {
                    push(
                        findings,
                        "XA100",
                        site.line,
                        "`expect()` without an `invariant:` comment within 6 lines".to_string(),
                    );
                } else if std_path_allocates(path) && !justified(file, site.line, "alloc:", 2) {
                    push(
                        findings,
                        "XA101",
                        site.line,
                        format!(
                            "`{}` allocates inside hot entry group `{group}`; refactor \
                             to a reusable buffer or justify with an `alloc:` comment",
                            site.written
                        ),
                    );
                }
            }
            Target::Unresolved(name) => {
                push(
                    findings,
                    "XA100",
                    site.line,
                    format!(
                        "call `{name}` could not be resolved inside a proved hot \
                         path — the panic/alloc proof has a hole here"
                    ),
                );
            }
            Target::Fns(_) if site.alloc_risk && !justified(file, site.line, "alloc:", 2) => {
                push(
                    findings,
                    "XA101",
                    site.line,
                    format!(
                        "`{}` has an alloc-capable name and an untyped receiver; \
                         if the receiver is a collection this allocates — justify \
                         with an `alloc:` comment or type the receiver",
                        site.written
                    ),
                );
            }
            _ => {}
        }
    }
}

/// XA103: every metric static declared in the registry is referenced as
/// `metrics::NAME` somewhere outside the registry file.
fn registry_closure(ws: &Workspace, registry_rel: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let Some(reg) = ws.files.iter().find(|f| f.rel_path == registry_rel) else {
        return findings; // no registry in this workspace (fixtures)
    };

    // Statics: `pub static NAME: Counter|Histogram` in the token stream.
    let mut statics: Vec<(String, u32)> = Vec::new();
    let t = &reg.toks;
    for k in 0..t.len() {
        if t[k].is_ident("static")
            && t.get(k + 1)
                .is_some_and(|x| x.kind == super::lexer::TokKind::Ident)
            && t.get(k + 2).is_some_and(|x| x.is_punct(':'))
            && t.get(k + 3)
                .is_some_and(|x| x.is_ident("Counter") || x.is_ident("Histogram"))
        {
            statics.push((t[k + 1].text.clone(), t[k + 1].line));
        }
    }

    for (name, line) in &statics {
        let used = ws.files.iter().any(|f| {
            if f.rel_path == registry_rel {
                return false;
            }
            let t = &f.toks;
            (0..t.len()).any(|k| {
                t[k].is_ident("metrics")
                    && t.get(k + 1).is_some_and(|x| x.is_punct(':'))
                    && t.get(k + 2).is_some_and(|x| x.is_punct(':'))
                    && t.get(k + 3).is_some_and(|x| x.is_ident(name))
            })
        });
        if !used {
            findings.push(Finding {
                rule: "XA103",
                file: reg.rel_path.clone(),
                line: *line,
                symbol: format!("metrics::{name}"),
                group: None,
                message: format!(
                    "metric static `{name}` is registered but never written or \
                     read outside the registry — dead metric"
                ),
            });
        }
    }
    findings
}
