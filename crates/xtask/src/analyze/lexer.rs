//! A minimal Rust lexer: the token-stream foundation of `xed-analyze`.
//!
//! The whole point of this layer is to see Rust the way the compiler
//! does where it matters for static analysis: comments (line, doc, and
//! *nested* block comments), string/char/byte literals, and raw strings
//! with arbitrary `#` fences are recognized and never leak their
//! contents into the token stream. That is exactly the property the
//! line-grep lints lacked — `// .unwrap()` in a comment or `"panic!"`
//! in a string literal must produce no tokens.
//!
//! Guarantees (pinned by the unit tests below and the adversarial
//! fixtures in `tests/analyze_fixtures.rs`):
//!
//! * comment text yields no tokens; nested `/* /* */ */` terminates
//!   correctly; unterminated block comments consume to EOF (never
//!   panic);
//! * string-ish literals (`"…"`, `b"…"`, `c"…"`, `r"…"`, `r#"…"#`,
//!   `br#"…"#`, char `'x'`, byte `b'\n'`) each become a single literal
//!   token whose *body is not tokenized*;
//! * lifetimes (`'a`, `'static`) are distinguished from char literals;
//! * every token carries its 1-based source line;
//! * [`sanitize_lines`] returns the source line-by-line with comment
//!   text and literal bodies blanked to spaces (same line count, same
//!   line lengths), which is what the re-based XL rules scan.
//!
//! Known limits (documented in DESIGN.md §13): float literals are
//! lexed permissively (`1.0e-9` is one token, but so would be some
//! malformed forms — the input is `rustc`-accepted code, so this never
//! matters), and `#` in attribute position is a plain punct token.

/// What kind of token this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers, `r#type`).
    Ident,
    /// A lifetime, e.g. `'a` (without the quote in `text`).
    Lifetime,
    /// String-ish literal: string, raw string, byte string, C string.
    Str,
    /// Char or byte-char literal.
    Char,
    /// Numeric literal.
    Num,
    /// A single punctuation character.
    Punct,
}

/// One lexed token: kind, text, and 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// Token text. For [`TokKind::Str`]/[`TokKind::Char`] this is a
    /// placeholder (`""`/`''`) — bodies are deliberately dropped.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// `true` if this is an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// `true` if this is this punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }
}

/// Byte-region classification used by both outputs of the scanner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Region {
    Code,
    Comment,
    /// The body of a string/char literal (quotes/fences excluded).
    LiteralBody,
}

/// The single low-level scanner: classifies every byte of `src` as
/// code, comment, or literal-body. Both [`tokenize`] and
/// [`sanitize_lines`] are thin layers over this, so they can never
/// disagree about where a comment ends.
fn classify(src: &str) -> Vec<Region> {
    let b = src.as_bytes();
    let n = b.len();
    let mut out = vec![Region::Code; n];
    let mut i = 0;
    while i < n {
        let c = b[i];
        // Line comment (also `///` and `//!` doc comments).
        if c == b'/' && i + 1 < n && b[i + 1] == b'/' {
            while i < n && b[i] != b'\n' {
                out[i] = Region::Comment;
                i += 1;
            }
            continue;
        }
        // Block comment, nested.
        if c == b'/' && i + 1 < n && b[i + 1] == b'*' {
            let mut depth = 0usize;
            while i < n {
                if b[i] == b'/' && i + 1 < n && b[i + 1] == b'*' {
                    depth += 1;
                    out[i] = Region::Comment;
                    out[i + 1] = Region::Comment;
                    i += 2;
                } else if b[i] == b'*' && i + 1 < n && b[i + 1] == b'/' {
                    depth -= 1;
                    out[i] = Region::Comment;
                    out[i + 1] = Region::Comment;
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    out[i] = Region::Comment;
                    i += 1;
                }
            }
            continue;
        }
        // Raw / byte / C string prefixes: r" r#" br" br#" b" c" cr#" …
        if matches!(c, b'r' | b'b' | b'c') && !prev_is_ident_char(b, i) {
            if let Some(next) = scan_string_prefix(b, i, &mut out) {
                i = next;
                continue;
            }
        }
        // Plain string literal.
        if c == b'"' {
            i = scan_quoted(b, i, b'"', &mut out);
            continue;
        }
        // Char literal vs lifetime.
        if c == b'\'' {
            if let Some(next) = scan_char_literal(b, i, &mut out) {
                i = next;
                continue;
            }
            // Lifetime: leave as code (the tokenizer handles it).
            i += 1;
            continue;
        }
        i += 1;
    }
    out
}

/// `true` if the byte before `i` continues an identifier — then a
/// leading `r`/`b`/`c` at `i` is the tail of an ident, not a prefix.
fn prev_is_ident_char(b: &[u8], i: usize) -> bool {
    i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_')
}

/// Tries to scan a (raw/byte/C) string starting at a prefix letter.
/// Returns the index just past the literal, or `None` if this is not a
/// string prefix (e.g. `r` starting the ident `rate`, or `r#type`).
fn scan_string_prefix(b: &[u8], start: usize, out: &mut [Region]) -> Option<usize> {
    let n = b.len();
    let mut j = start;
    // Consume up to two prefix letters (`br`, `cr`).
    while j < n && matches!(b[j], b'r' | b'b' | b'c') && j - start < 2 {
        j += 1;
    }
    // Count raw-string hashes.
    let mut hashes = 0usize;
    while j + hashes < n && b[j + hashes] == b'#' {
        hashes += 1;
    }
    let qi = j + hashes;
    if qi >= n || b[qi] != b'"' {
        return None; // not a string literal (could be `r#ident`)
    }
    let raw = b[start..j].contains(&b'r');
    if hashes > 0 && !raw {
        return None; // `b#` is not a thing
    }
    // Mark the prefix+fence as literal body too (keeps sanitize simple;
    // the tokenizer emits one Str token for the whole region).
    let mut i = start;
    while i < qi {
        out[i] = Region::LiteralBody;
        i += 1;
    }
    if raw {
        // Raw string: ends at `"` followed by `hashes` hashes; no escapes.
        let mut i = qi + 1;
        out[qi] = Region::LiteralBody;
        while i < n {
            if b[i] == b'"' && i + hashes < n && b[i + 1..].len() >= hashes {
                let fence_ok = (0..hashes).all(|k| b[i + 1 + k] == b'#');
                if fence_ok {
                    for r in out.iter_mut().take(i + 1 + hashes).skip(i) {
                        *r = Region::LiteralBody;
                    }
                    return Some(i + 1 + hashes);
                }
            }
            out[i] = Region::LiteralBody;
            i += 1;
        }
        Some(n) // unterminated: consume to EOF, never panic
    } else if qi < n && b[qi] == b'"' {
        Some(scan_quoted(b, qi, b'"', out))
    } else {
        None
    }
}

/// Scans a quoted literal with backslash escapes starting at the
/// opening quote; returns the index just past the closing quote.
fn scan_quoted(b: &[u8], start: usize, quote: u8, out: &mut [Region]) -> usize {
    let n = b.len();
    out[start] = Region::LiteralBody;
    let mut i = start + 1;
    while i < n {
        if b[i] == b'\\' && i + 1 < n {
            out[i] = Region::LiteralBody;
            out[i + 1] = Region::LiteralBody;
            i += 2;
            continue;
        }
        out[i] = Region::LiteralBody;
        if b[i] == quote {
            return i + 1;
        }
        i += 1;
    }
    n
}

/// Distinguishes `'x'` / `'\n'` / `b'x'` (char literal) from `'a`
/// (lifetime). Returns the index past the literal, or `None` for a
/// lifetime.
fn scan_char_literal(b: &[u8], start: usize, out: &mut [Region]) -> Option<usize> {
    let n = b.len();
    // `'\...'` is always a char literal.
    if start + 1 < n && b[start + 1] == b'\\' {
        return Some(scan_quoted(b, start, b'\'', out));
    }
    // `'c'` (anything then a closing quote) is a char literal; `'a` with
    // no closing quote right after is a lifetime.
    if start + 2 < n && b[start + 2] == b'\'' {
        return Some(scan_quoted(b, start, b'\'', out));
    }
    None
}

/// Lexes `src` into a token stream. Comment and literal bodies are
/// guaranteed absent (see module docs).
pub fn tokenize(src: &str) -> Vec<Tok> {
    let regions = classify(src);
    let b = src.as_bytes();
    let n = b.len();
    let mut toks = Vec::new();
    let mut line: u32 = 1;
    let mut i = 0;
    while i < n {
        let c = b[i];
        if c == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        match regions[i] {
            Region::Comment => {
                i += 1;
            }
            Region::LiteralBody => {
                // One placeholder token per literal region; classify by
                // its first byte (quote kind).
                let start_line = line;
                let is_char = c == b'\'';
                while i < n && regions[i] == Region::LiteralBody {
                    if b[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
                toks.push(Tok {
                    kind: if is_char { TokKind::Char } else { TokKind::Str },
                    text: if is_char { "''" } else { "\"\"" }.to_string(),
                    line: start_line,
                });
            }
            Region::Code => {
                if c.is_ascii_whitespace() {
                    i += 1;
                } else if c == b'\'' {
                    // Lifetime (char literals were classified already).
                    let start = i + 1;
                    let mut j = start;
                    while j < n && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                        j += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: src[start..j].to_string(),
                        line,
                    });
                    i = j;
                } else if c.is_ascii_alphabetic() || c == b'_' {
                    let start = i;
                    let mut j = i;
                    while j < n && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                        j += 1;
                    }
                    // Raw identifier `r#type`.
                    if j == i + 1
                        && b[i] == b'r'
                        && j + 1 < n
                        && b[j] == b'#'
                        && (b[j + 1].is_ascii_alphabetic() || b[j + 1] == b'_')
                    {
                        j += 1;
                        while j < n && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                            j += 1;
                        }
                    }
                    toks.push(Tok {
                        kind: TokKind::Ident,
                        text: src[start..j].to_string(),
                        line,
                    });
                    i = j;
                } else if c.is_ascii_digit() {
                    let start = i;
                    let mut j = i;
                    while j < n {
                        let d = b[j];
                        if d.is_ascii_alphanumeric() || d == b'_' {
                            j += 1;
                        } else if d == b'.' {
                            // `1.0` continues the number; `1..n` does not.
                            if j + 1 < n && b[j + 1] == b'.' {
                                break;
                            }
                            // `1.method()` — treat the dot as punct.
                            if j + 1 < n && (b[j + 1].is_ascii_alphabetic() || b[j + 1] == b'_') {
                                break;
                            }
                            j += 1;
                        } else if (d == b'+' || d == b'-')
                            && j > start
                            && (b[j - 1] == b'e' || b[j - 1] == b'E')
                        {
                            j += 1;
                        } else {
                            break;
                        }
                    }
                    toks.push(Tok {
                        kind: TokKind::Num,
                        text: src[start..j].to_string(),
                        line,
                    });
                    i = j;
                } else {
                    toks.push(Tok {
                        kind: TokKind::Punct,
                        text: (c as char).to_string(),
                        line,
                    });
                    i += 1;
                }
            }
        }
    }
    toks
}

/// Returns `src` line-by-line with comment text and literal *bodies*
/// blanked to spaces. Line count and per-line byte lengths are
/// preserved, so 1-based line numbers (and column offsets) in the
/// output map directly onto the input. Quotes are kept so `"…"`
/// still reads as an (empty) string in downstream heuristics.
pub fn sanitize_lines(src: &str) -> Vec<String> {
    let regions = classify(src);
    let b = src.as_bytes();
    let mut lines = Vec::new();
    let mut cur = String::new();
    for (i, &c) in b.iter().enumerate() {
        if c == b'\n' {
            lines.push(std::mem::take(&mut cur));
            continue;
        }
        match regions[i] {
            Region::Code => cur.push(c as char),
            Region::Comment => cur.push(' '),
            Region::LiteralBody => {
                // Keep the delimiting quotes, blank everything else.
                let keep = (c == b'"' || c == b'\'')
                    && (i == 0
                        || regions[i - 1] != Region::LiteralBody
                        || i + 1 >= b.len()
                        || regions[i + 1] != Region::LiteralBody);
                cur.push(if keep { c as char } else { ' ' });
            }
        }
    }
    // `lines()` semantics: no trailing empty line after a final `\n`.
    if !cur.is_empty() {
        lines.push(cur);
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        tokenize(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_yield_no_tokens() {
        assert!(idents("// x.unwrap() panic!\n").is_empty());
        assert!(idents("/* vec![1] */").is_empty());
        assert!(idents("/// doc .unwrap()\n//! inner panic!\n").is_empty());
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let src = "/* outer /* inner */ still comment */ real";
        assert_eq!(idents(src), vec!["real"]);
    }

    #[test]
    fn unterminated_block_comment_consumes_to_eof() {
        assert!(idents("/* never closed\ncode_here()").is_empty());
    }

    #[test]
    fn string_bodies_are_not_tokenized() {
        assert_eq!(idents(r#"let s = "panic!(x.unwrap())";"#), vec!["let", "s"]);
        assert_eq!(idents(r#"let s = b"vec![0]";"#), vec!["let", "s"]);
    }

    #[test]
    fn raw_strings_with_fences() {
        let src = r##"let s = r#"say "panic!" loudly"#; after()"##;
        assert_eq!(idents(src), vec!["let", "s", "after"]);
        let src2 = "let s = r\"no hash .unwrap()\"; tail";
        assert_eq!(idents(src2), vec!["let", "s", "tail"]);
    }

    #[test]
    fn escaped_quotes_inside_strings() {
        let src = r#"let s = "a \" .unwrap() \" b"; next"#;
        assert_eq!(idents(src), vec!["let", "s", "next"]);
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let toks = tokenize("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lifetimes, vec!["a", "a"]);
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Char).count(),
            2,
            "{toks:?}"
        );
    }

    #[test]
    fn ident_prefix_letters_not_eaten_as_string_prefixes() {
        // `r`, `b`, `c` starting ordinary identifiers must stay idents.
        assert_eq!(
            idents("let rate = beats + cost;"),
            vec!["let", "rate", "beats", "cost"]
        );
        // And a `b` at the *end* of an ident followed by a string is not
        // a byte-string prefix.
        assert_eq!(idents(r#"grub"text""#), vec!["grub"]);
    }

    #[test]
    fn raw_identifiers() {
        assert_eq!(idents("let r#type = 1;"), vec!["let", "r#type"]);
    }

    #[test]
    fn numbers_including_floats_and_ranges() {
        let toks = tokenize("for i in 0..72 { let x = 1.0e-9; let m = 0xFF_u8; }");
        let nums: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, vec!["0", "72", "1.0e-9", "0xFF_u8"]);
    }

    #[test]
    fn line_numbers_are_one_based_and_track_newlines() {
        let toks = tokenize("a\nb\n\nc \"multi\nline\" d");
        let find = |s: &str| toks.iter().find(|t| t.is_ident(s)).map(|t| t.line);
        assert_eq!(find("a"), Some(1));
        assert_eq!(find("b"), Some(2));
        assert_eq!(find("c"), Some(4));
        assert_eq!(find("d"), Some(5));
    }

    #[test]
    fn sanitize_preserves_shape_and_blanks_contents() {
        let src = "let x = y; // .unwrap()\nlet s = \"panic!\";\n";
        let lines = sanitize_lines(src);
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].len(), "let x = y; // .unwrap()".len());
        assert!(!lines[0].contains(".unwrap()"));
        assert!(lines[0].starts_with("let x = y;"));
        assert!(!lines[1].contains("panic!"));
        assert!(lines[1].contains("\"      \""), "{:?}", lines[1]);
    }

    #[test]
    fn sanitize_blanks_block_comments_across_lines() {
        let src = "a /* panic!\n .unwrap() */ b\n";
        let lines = sanitize_lines(src);
        assert_eq!(lines.len(), 2);
        assert!(!lines[0].contains("panic!"));
        assert!(!lines[1].contains(".unwrap()"));
        assert!(lines[1].ends_with(" b"));
    }

    #[test]
    fn sanitize_keeps_code_intact() {
        let src = "if p == 0.5 { q.unwrap(); }\n";
        assert_eq!(sanitize_lines(src)[0], "if p == 0.5 { q.unwrap(); }");
    }
}
