//! Rule XL010: the telemetry metric catalogue is closed and documented.
//!
//! The registry (`crates/telemetry/src/registry.rs`) is the single source
//! of truth for metric identity: every metric static lives in its
//! `pub mod metrics`, and every stable dotted ID is bound to exactly one
//! static in its `CATALOGUE`. This pass re-derives that contract from the
//! source text and cross-checks it against the rest of the workspace:
//!
//! 1. every catalogue ID appears exactly once;
//! 2. every catalogue entry references a declared metric static, and no
//!    static is registered twice or left unregistered;
//! 3. every `metrics::NAME` reference anywhere under `crates/*/src` (and
//!    the bench binaries) resolves to a registered static;
//! 4. every catalogue ID is listed (backticked) in the DESIGN.md §11
//!    metric catalogue.
//!
//! The parser is deliberately line-based — registry.rs keeps one
//! catalogue entry per line by documented convention — so the check stays
//! dependency-free like the rest of xed-lint.

use std::fs;
use std::path::Path;

use crate::lint::{Finding, Severity};

const REGISTRY: &str = "crates/telemetry/src/registry.rs";
const DESIGN: &str = "DESIGN.md";

/// One parsed `c("id", "...", &metrics::NAME)` / `h(...)` catalogue line.
struct Entry {
    id: String,
    static_name: String,
    line: usize,
}

fn finding(file: &str, line: usize, message: String) -> Finding {
    Finding {
        file: file.to_string(),
        line,
        rule: "XL010",
        severity: Severity::Error,
        message,
    }
}

/// Runs the whole XL010 pass rooted at `root`.
pub fn check_metrics(root: &Path) -> Vec<Finding> {
    let registry_path = root.join(REGISTRY);
    let text = match fs::read_to_string(&registry_path) {
        Ok(t) => t,
        Err(e) => {
            return vec![finding(
                REGISTRY,
                0,
                format!("cannot read the metric registry: {e}"),
            )]
        }
    };

    let statics = parse_statics(&text);
    let entries = parse_catalogue(&text);
    let mut findings = Vec::new();

    if statics.is_empty() || entries.is_empty() {
        findings.push(finding(
            REGISTRY,
            0,
            "found no metric statics or no catalogue entries; the XL010 \
             parser expects `pub static NAME: Counter|Histogram` in `mod \
             metrics` and one `c(...)`/`h(...)` entry per line"
                .to_string(),
        ));
        return findings;
    }

    // 1. IDs are unique.
    for (i, e) in entries.iter().enumerate() {
        if entries[..i].iter().any(|p| p.id == e.id) {
            findings.push(finding(
                REGISTRY,
                e.line,
                format!("metric id `{}` is registered more than once", e.id),
            ));
        }
    }

    // 2. Catalogue <-> statics is a bijection.
    for (i, e) in entries.iter().enumerate() {
        if !statics.iter().any(|(name, _)| name == &e.static_name) {
            findings.push(finding(
                REGISTRY,
                e.line,
                format!(
                    "catalogue entry `{}` references `metrics::{}`, which is \
                     not declared in `mod metrics`",
                    e.id, e.static_name
                ),
            ));
        }
        if entries[..i].iter().any(|p| p.static_name == e.static_name) {
            findings.push(finding(
                REGISTRY,
                e.line,
                format!(
                    "`metrics::{}` is bound to more than one metric id",
                    e.static_name
                ),
            ));
        }
    }
    for (name, line) in &statics {
        if !entries.iter().any(|e| &e.static_name == name) {
            findings.push(finding(
                REGISTRY,
                *line,
                format!("`metrics::{name}` is declared but never registered in CATALOGUE"),
            ));
        }
    }

    // 3. Every `metrics::NAME` use in the workspace resolves.
    findings.extend(check_uses(root, &statics));

    // 4. Every ID is documented in DESIGN.md §11.
    match fs::read_to_string(root.join(DESIGN)) {
        Ok(design) => {
            for e in &entries {
                if !design.contains(&format!("`{}`", e.id)) {
                    findings.push(finding(
                        DESIGN,
                        0,
                        format!(
                            "metric id `{}` is registered but missing from the \
                             DESIGN.md metric catalogue (§11)",
                            e.id
                        ),
                    ));
                }
            }
        }
        Err(e) => findings.push(finding(DESIGN, 0, format!("cannot read DESIGN.md: {e}"))),
    }

    findings
}

/// `pub static NAME: Counter = ...` / `: Histogram = ...` lines inside
/// registry.rs, as `(name, 1-based line)`.
fn parse_statics(text: &str) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let t = line.trim();
        let Some(rest) = t.strip_prefix("pub static ") else {
            continue;
        };
        if !(t.contains(": Counter") || t.contains(": Histogram")) {
            continue;
        }
        if let Some(name) = rest.split(':').next() {
            out.push((name.trim().to_string(), idx + 1));
        }
    }
    out
}

/// The one-per-line `c("id", "help", &metrics::NAME)` catalogue entries.
fn parse_catalogue(text: &str) -> Vec<Entry> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let t = line.trim();
        if !(t.starts_with("c(\"") || t.starts_with("h(\"")) {
            continue;
        }
        let Some(id) = t.split('"').nth(1) else {
            continue;
        };
        let Some(after) = t.split("&metrics::").nth(1) else {
            continue;
        };
        let static_name: String = after
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        out.push(Entry {
            id: id.to_string(),
            static_name,
            line: idx + 1,
        });
    }
    out
}

/// Scans every `crates/*/src/**/*.rs` file (registry.rs excepted — it is
/// the declaration site) for `metrics::NAME` references to undeclared
/// statics.
fn check_uses(root: &Path, statics: &[(String, usize)]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let crates_dir = root.join("crates");
    let Ok(read) = fs::read_dir(&crates_dir) else {
        return findings;
    };
    let mut files = Vec::new();
    for entry in read.flatten() {
        let src = entry.path().join("src");
        if src.is_dir() {
            let _ = collect_rs(&src, &mut files);
        }
    }
    files.sort();
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .into_owned();
        // The registry is the declaration site, not a use site.
        if rel == REGISTRY {
            continue;
        }
        let Ok(text) = fs::read_to_string(&file) else {
            continue;
        };
        // Sanitized lines: comments and literal bodies blanked, so a
        // `metrics::NAME` mentioned in a doc comment or an error-message
        // string is not a use.
        for (idx, line) in crate::analyze::lexer::sanitize_lines(&text)
            .iter()
            .enumerate()
        {
            for chunk in line.split("metrics::").skip(1) {
                let name: String = chunk
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                    .collect();
                // Only SCREAMING_CASE idents are metric statics; skip
                // module paths / type names routed through `metrics::`.
                if name.len() < 2 || !name.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                    continue;
                }
                if name.chars().any(|c| c.is_ascii_lowercase()) {
                    continue;
                }
                if !statics.iter().any(|(s, _)| s == &name) {
                    findings.push(finding(
                        &rel,
                        idx + 1,
                        format!(
                            "`metrics::{name}` is not declared in the telemetry \
                             registry; add the static and a CATALOGUE entry"
                        ),
                    ));
                }
            }
        }
    }
    findings
}

fn collect_rs(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> Result<(), std::io::Error> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"
pub mod metrics {
    pub static FOO_COUNT: Counter = Counter::new();
    pub static BAR_NS: Histogram = Histogram::new();
}
pub static CATALOGUE: &[MetricDef] = &[
    c("foo.count", "help", &metrics::FOO_COUNT),
    h("bar.ns", "help", &metrics::BAR_NS),
];
"#;

    #[test]
    fn parses_statics_and_catalogue() {
        let statics = parse_statics(GOOD);
        assert_eq!(
            statics.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(),
            vec!["FOO_COUNT", "BAR_NS"]
        );
        let entries = parse_catalogue(GOOD);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].id, "foo.count");
        assert_eq!(entries[0].static_name, "FOO_COUNT");
        assert_eq!(entries[1].id, "bar.ns");
        assert_eq!(entries[1].static_name, "BAR_NS");
    }

    #[test]
    fn real_registry_is_clean() {
        // The workspace root is two levels above this crate.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("invariant: xtask lives at <root>/crates/xtask");
        let findings = check_metrics(root);
        assert!(
            findings.is_empty(),
            "XL010 findings against the real workspace:\n{}",
            findings
                .iter()
                .map(Finding::render)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn duplicate_id_and_unregistered_static_detected() {
        let text = r#"
pub mod metrics {
    pub static FOO_COUNT: Counter = Counter::new();
    pub static ORPHAN: Counter = Counter::new();
}
pub static CATALOGUE: &[MetricDef] = &[
    c("foo.count", "help", &metrics::FOO_COUNT),
    c("foo.count", "help again", &metrics::FOO_COUNT),
    c("ghost.metric", "help", &metrics::MISSING),
];
"#;
        let statics = parse_statics(text);
        let entries = parse_catalogue(text);
        // Re-run the registry-local checks by hand (check_metrics needs a
        // filesystem root; the parsing layer is what we exercise here).
        assert!(entries.iter().filter(|e| e.id == "foo.count").count() == 2);
        assert!(statics.iter().any(|(n, _)| n == "ORPHAN"));
        assert!(!statics.iter().any(|(n, _)| n == "MISSING"));
    }
}
