//! The `xed-lint` scanning engine: line-based heuristic rules over the
//! library crates, plus hooks for the linked golden-value rules.
//!
//! Scope: `crates/{ecc,faultsim,core,memsim,telemetry,xedd}/src/**/*.rs`
//! — the *library* crates whose correctness the simulations (and the
//! daemon serving them) rest on. Benches,
//! examples, integration tests, the vendored `rand` shim and this crate
//! are exempt, as is everything from a file's `#[cfg(test)]` marker to its
//! end (the repo convention keeps unit-test modules last).
//!
//! Rule catalogue (documented for humans in DESIGN.md §"Verification
//! layer"):
//!
//! | id    | severity | what it rejects                                        |
//! |-------|----------|--------------------------------------------------------|
//! | XL001 | error    | `.unwrap()` in library code                            |
//! | XL002 | error    | `.expect(` without a nearby `invariant:` justification |
//! | XL003 | error    | `panic!` / `unreachable!` / `todo!` / `unimplemented!` |
//! | XL004 | error    | `==` / `!=` against a floating-point literal           |
//! | XL005 | error    | nondeterminism: `thread_rng`, `from_entropy`,          |
//! |       |          | `rand::random`, `SystemTime::now`, `Instant::now`      |
//! | XL006 | warning  | iteration over a `HashMap`/`HashSet` (unstable order)  |
//! | XL007 | error    | `FitRates::table_i()` drifts from paper Table I        |
//! | XL008 | error    | catch-word / geometry constants drift from paper §IV-V |
//! | XL009 | error    | heap allocation (`Vec::`, `vec![`, `.to_vec()`) in a   |
//! |       |          | designated allocation-free hot module (ECC kernels,    |
//! |       |          | telemetry primitives)                                  |
//! | XL010 | error    | telemetry metric registered twice / unregistered /     |
//! |       |          | undocumented in DESIGN.md (see `metrics_check`)        |
//! | XL011 | error    | `#[ignore]` without a linked `issue:` comment — scanned|
//! |       |          | *full-text* (test modules included) over every crate's |
//! |       |          | `src/` and the workspace `tests/` directory            |
//! | XL012 | error    | a `trace::Phase` variant undocumented in DESIGN.md §16,|
//! |       |          | or a discarded `Span::start` guard (see `trace_check`) |
//!
//! Waivers: `// xed-lint: allow(XL004)` on the offending line or the line
//! directly above suppresses that rule for that line. XL002 is satisfied by
//! an `invariant:` comment on the line or within the six preceding lines
//! (builder chains push the call a few lines past its justification).

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Severity of a finding. Errors make the process exit nonzero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Must be fixed (or explicitly waived); fails the lint gate.
    Error,
    /// Reported but does not fail the gate.
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
        }
    }
}

/// One lint finding, locatable as `file:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Path relative to the workspace root.
    pub file: String,
    /// 1-based line number (0 for whole-crate golden findings).
    pub line: usize,
    /// Rule identifier, e.g. `XL001`.
    pub rule: &'static str,
    /// Severity.
    pub severity: Severity,
    /// Human-readable message.
    pub message: String,
}

impl Finding {
    /// Renders the finding in the `file:line: severity[rule]: msg` format.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: {}[{}]: {}",
            self.file, self.line, self.severity, self.rule, self.message
        )
    }

    /// Renders the finding as a JSON object.
    pub fn render_json(&self) -> String {
        format!(
            r#"{{"file":{},"line":{},"rule":"{}","severity":"{}","message":{}}}"#,
            json_string(&self.file),
            self.line,
            self.rule,
            self.severity,
            json_string(&self.message)
        )
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The library crates the source rules scan.
pub const LIBRARY_CRATES: [&str; 6] = ["ecc", "faultsim", "core", "memsim", "telemetry", "xedd"];

/// Designated allocation-free hot modules (rule XL009). The `ecc` entries
/// hold the word-parallel decode kernels the simulators call per memory
/// access; the `telemetry` entries are the recording primitives every
/// instrumented hot loop touches (including the flight-recorder span
/// rings in `trace.rs` — the tracing write sits on every request and
/// scheduler-chunk path). Heap traffic in either is a performance
/// regression by definition. `ecc/gf.rs` (table construction),
/// `ecc/reference.rs` (the designated home for the seed's `Vec`-returning
/// pipeline) and `telemetry/export.rs` (the once-per-report snapshot
/// layer) are exempt, as are doc comments and `#[cfg(test)]` modules
/// everywhere.
pub const ALLOC_FREE_HOT_MODULES: [&str; 13] = [
    "crates/ecc/src/bits.rs",
    "crates/ecc/src/codeword.rs",
    "crates/ecc/src/crc8.rs",
    "crates/ecc/src/hamming.rs",
    "crates/ecc/src/parity.rs",
    "crates/ecc/src/rs.rs",
    "crates/ecc/src/secded.rs",
    "crates/ecc/src/secded32.rs",
    "crates/telemetry/src/counter.rs",
    "crates/telemetry/src/hist.rs",
    "crates/telemetry/src/ring.rs",
    "crates/telemetry/src/tally.rs",
    "crates/telemetry/src/trace.rs",
];

fn is_alloc_free_hot_module(rel_path: &str) -> bool {
    ALLOC_FREE_HOT_MODULES
        .iter()
        .any(|m| rel_path == *m || rel_path.ends_with(m))
}

/// Scans the whole workspace rooted at `root`: every library-crate source
/// file through the line rules. (Golden rules live in [`crate::golden`].)
pub fn scan_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    let mut findings = Vec::new();
    let mut files = Vec::new();
    for krate in LIBRARY_CRATES {
        let src = root.join("crates").join(krate).join("src");
        collect_rs_files(&src, &mut files)
            .map_err(|e| format!("walking {}: {e}", src.display()))?;
    }
    files.sort();
    for file in files {
        let text =
            fs::read_to_string(&file).map_err(|e| format!("reading {}: {e}", file.display()))?;
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .into_owned();
        findings.extend(scan_file(&rel, &text));
    }

    // XL011 runs full-text (an `#[ignore]` necessarily lives inside a test
    // module) and over *every* crate plus the workspace integration tests.
    let mut ignore_files = Vec::new();
    let crates_dir = root.join("crates");
    for entry in
        fs::read_dir(&crates_dir).map_err(|e| format!("walking {}: {e}", crates_dir.display()))?
    {
        let src = entry.map_err(|e| e.to_string())?.path().join("src");
        if src.is_dir() {
            collect_rs_files(&src, &mut ignore_files)
                .map_err(|e| format!("walking {}: {e}", src.display()))?;
        }
    }
    let tests_dir = root.join("tests");
    if tests_dir.is_dir() {
        collect_rs_files(&tests_dir, &mut ignore_files)
            .map_err(|e| format!("walking {}: {e}", tests_dir.display()))?;
    }
    ignore_files.sort();
    for file in ignore_files {
        let text =
            fs::read_to_string(&file).map_err(|e| format!("reading {}: {e}", file.display()))?;
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .into_owned();
        findings.extend(scan_ignores(&rel, &text));
    }
    Ok(findings)
}

/// Rule XL011: a disabled test is a liability unless someone owns turning
/// it back on. Every `#[ignore]` attribute must carry an `issue:`
/// reference (tracker link or ISSUE.md anchor) in a comment on the same
/// line or one of the two lines above the attribute. Scans full text —
/// unlike [`scan_file`], test modules are exactly where the rule looks.
pub fn scan_ignores(rel_path: &str, text: &str) -> Vec<Finding> {
    let lines: Vec<&str> = text.lines().collect();
    let san = crate::analyze::lexer::sanitize_lines(text);
    let mut findings = Vec::new();
    for (idx, &raw) in lines.iter().enumerate() {
        let code = san.get(idx).map_or(raw, String::as_str);
        if !code.contains("#[ignore") {
            continue;
        }
        let waived =
            |rule: &str| has_waiver(raw, rule) || (idx > 0 && has_waiver(lines[idx - 1], rule));
        let lo = idx.saturating_sub(2);
        let linked = lines[lo..=idx].iter().any(|l| l.contains("issue:"));
        if !linked && !waived("XL011") {
            findings.push(Finding {
                file: rel_path.to_string(),
                line: idx + 1,
                rule: "XL011",
                severity: Severity::Error,
                message: "`#[ignore]` without a linked issue; add an `// issue: <link>` \
                          comment on the attribute or one of the two lines above it"
                    .to_string(),
            });
        }
    }
    findings
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), std::io::Error> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scans one file's text through all line rules. Public for tests and so a
/// seeded-violation check can exercise the engine directly.
pub fn scan_file(rel_path: &str, text: &str) -> Vec<Finding> {
    let lines: Vec<&str> = text.lines().collect();
    // Comment- and string-free view of the same lines (sanitize_lines
    // keeps line count and column alignment): content rules match here,
    // so `.unwrap()` in a doc comment or `panic!` in an error-message
    // string is never a finding. Waivers and `invariant:` justifications
    // are read from the raw text, where the comments live.
    let san = crate::analyze::lexer::sanitize_lines(text);
    let san_refs: Vec<&str> = san.iter().map(String::as_str).collect();
    let hash_names = hash_container_names(&san_refs);
    let mut findings = Vec::new();

    for (idx, &raw) in lines.iter().enumerate() {
        let line_no = idx + 1;
        // Everything from the unit-test marker to EOF is exempt.
        let code = san_refs.get(idx).copied().unwrap_or(raw);
        if code.contains("#[cfg(test)]") {
            break;
        }
        let trimmed = code.trim();
        if trimmed.is_empty() {
            continue;
        }
        let waived =
            |rule: &str| has_waiver(raw, rule) || (idx > 0 && has_waiver(lines[idx - 1], rule));

        if trimmed.contains(".unwrap()") && !waived("XL001") {
            findings.push(Finding {
                file: rel_path.to_string(),
                line: line_no,
                rule: "XL001",
                severity: Severity::Error,
                message: "`.unwrap()` in library code; return a typed error or use a \
                          justified `.expect()` with an `invariant:` comment"
                    .to_string(),
            });
        }

        if trimmed.contains(".expect(") && !waived("XL002") {
            let lo = idx.saturating_sub(6);
            let justified = lines[lo..=idx].iter().any(|l| l.contains("invariant:"));
            if !justified {
                findings.push(Finding {
                    file: rel_path.to_string(),
                    line: line_no,
                    rule: "XL002",
                    severity: Severity::Error,
                    message: "`.expect()` without an `invariant:` justification comment \
                              on this or one of the six preceding lines"
                        .to_string(),
                });
            }
        }

        for mac in ["panic!(", "unreachable!(", "todo!(", "unimplemented!("] {
            if trimmed.contains(mac) && !waived("XL003") {
                findings.push(Finding {
                    file: rel_path.to_string(),
                    line: line_no,
                    rule: "XL003",
                    severity: Severity::Error,
                    message: format!(
                        "`{}...)` in library code; model the failure as a typed error or \
                         prove it impossible with a checked `assert!`",
                        mac
                    ),
                });
            }
        }

        if has_float_equality(trimmed) && !waived("XL004") {
            findings.push(Finding {
                file: rel_path.to_string(),
                line: line_no,
                rule: "XL004",
                severity: Severity::Error,
                message: "`==`/`!=` against a floating-point literal; probabilities and \
                          rates need an epsilon comparison (or a waiver for an exact \
                          sentinel)"
                    .to_string(),
            });
        }

        for src in [
            "thread_rng",
            "from_entropy",
            "rand::random",
            "SystemTime::now",
            "Instant::now",
        ] {
            if trimmed.contains(src) && !waived("XL005") {
                findings.push(Finding {
                    file: rel_path.to_string(),
                    line: line_no,
                    rule: "XL005",
                    severity: Severity::Error,
                    message: format!(
                        "nondeterminism source `{src}`; every simulation stream must \
                         derive from an explicit `seed_from_u64` seed"
                    ),
                });
            }
        }

        if is_alloc_free_hot_module(rel_path) {
            for tok in ["Vec::", "vec![", ".to_vec()"] {
                if trimmed.contains(tok) && !waived("XL009") {
                    findings.push(Finding {
                        file: rel_path.to_string(),
                        line: line_no,
                        rule: "XL009",
                        severity: Severity::Error,
                        message: format!(
                            "heap allocation (`{tok}`) in an allocation-free hot \
                             module; use the fixed-capacity scratch/array APIs, or move \
                             `Vec`-returning convenience code to `ecc/src/reference.rs` \
                             / `telemetry/src/export.rs`"
                        ),
                    });
                }
            }
        }

        if let Some(name) = hash_iteration(trimmed, &hash_names) {
            if !waived("XL006") {
                findings.push(Finding {
                    file: rel_path.to_string(),
                    line: line_no,
                    rule: "XL006",
                    severity: Severity::Warning,
                    message: format!(
                        "iteration over hash container `{name}` has unstable order; \
                         sort first (or waive) if any simulation state depends on it"
                    ),
                });
            }
        }
    }
    findings
}

/// `// xed-lint: allow(XL001)` (several ids may share one waiver comment).
fn has_waiver(line: &str, rule: &str) -> bool {
    line.split("xed-lint: allow(")
        .skip(1)
        .any(|rest| rest.split(')').next().is_some_and(|ids| ids.contains(rule)))
}

/// `== 0.5`, `!= 1.0`, `0.0 ==`, ... — equality against a float literal.
fn has_float_equality(code: &str) -> bool {
    let bytes = code.as_bytes();
    for (i, w) in bytes.windows(2).enumerate() {
        if (w == b"==" || w == b"!=")
            && bytes.get(i + 2) != Some(&b'=')
            && (i == 0
                || bytes[i - 1] != b'='
                    && bytes[i - 1] != b'!'
                    && bytes[i - 1] != b'<'
                    && bytes[i - 1] != b'>')
        {
            let after = code[i + 2..].trim_start();
            let before = code[..i].trim_end();
            if starts_with_float_literal(after) || ends_with_float_literal(before) {
                return true;
            }
        }
    }
    false
}

fn starts_with_float_literal(s: &str) -> bool {
    let s = s.strip_prefix('-').unwrap_or(s);
    let digits = s
        .bytes()
        .take_while(|b| b.is_ascii_digit() || *b == b'_')
        .count();
    digits > 0 && s.as_bytes().get(digits) == Some(&b'.')
}

fn ends_with_float_literal(s: &str) -> bool {
    // Accept `1.0`, `0.25`, `1e-9` suffixes; reject identifiers and ints.
    let tail: String = s
        .chars()
        .rev()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '_' | 'e' | 'E' | '-' | '+'))
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    let tail = tail.trim_start_matches(['-', '+']);
    tail.contains('.') && tail.bytes().next().is_some_and(|b| b.is_ascii_digit())
}

/// Names declared with a `HashMap`/`HashSet` type in this file (struct
/// fields `name: HashMap<..>` and bindings `let name: HashMap<..>` /
/// `let mut name = HashMap::new()`).
fn hash_container_names(lines: &[&str]) -> Vec<String> {
    let mut names = Vec::new();
    for &code in lines {
        if code.contains("#[cfg(test)]") {
            break;
        }
        for marker in ["HashMap<", "HashMap::", "HashSet<", "HashSet::"] {
            if !code.contains(marker) {
                continue;
            }
            // `name: HashMap<` or `let [mut] name = HashMap::new()`.
            if let Some(colon) = code.find(marker).and_then(|i| code[..i].rfind(':')) {
                let name: String = code[..colon]
                    .chars()
                    .rev()
                    .skip_while(|c| c.is_whitespace() || *c == ':')
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect::<Vec<_>>()
                    .into_iter()
                    .rev()
                    .collect();
                if !name.is_empty() && !names.contains(&name) {
                    names.push(name);
                }
            }
            if let Some(eq) = code.find(marker).and_then(|i| code[..i].rfind('=')) {
                let name: String = code[..eq]
                    .chars()
                    .rev()
                    .skip_while(|c| c.is_whitespace() || *c == '=')
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect::<Vec<_>>()
                    .into_iter()
                    .rev()
                    .collect();
                if !name.is_empty() && name != "let" && name != "mut" && !names.contains(&name) {
                    names.push(name);
                }
            }
        }
    }
    names
}

/// `name.iter()` / `name.keys()` / `name.values()` / `name.drain(` /
/// `for .. in &name` where `name` is a known hash container.
fn hash_iteration(code: &str, names: &[String]) -> Option<String> {
    for name in names {
        for suffix in [".iter()", ".keys()", ".values()", ".drain(", ".into_iter()"] {
            let needle = format!("{name}{suffix}");
            if code.contains(&needle) {
                return Some(name.clone());
            }
        }
        if code.contains(" in &") || code.contains(" in ") {
            let for_target = format!("in &{name}");
            let for_target2 = format!("in {name}");
            if (code.contains(&for_target) || code.contains(&for_target2))
                && code.trim_start().starts_with("for ")
            {
                return Some(name.clone());
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(text: &str) -> Vec<&'static str> {
        scan_file("x.rs", text)
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn flags_unwrap_and_panics() {
        assert_eq!(rules("let x = y.unwrap();"), vec!["XL001"]);
        assert_eq!(rules("panic!(\"boom\");"), vec!["XL003"]);
        assert_eq!(rules("unreachable!(\"no\");"), vec!["XL003"]);
    }

    // Adversarial fixtures for the token-stream re-base: rule text
    // appearing inside comments or string literals must never match.
    #[test]
    fn comment_mentions_are_not_findings() {
        assert!(rules("// .unwrap() would be wrong here\nlet x = y?;").is_empty());
        assert!(rules("/* panic!(\"no\") */ let x = 1;").is_empty());
        assert!(rules("/// Returns None instead of .expect(\"...\").\nfn f() {}").is_empty());
        assert!(rules("//! thread_rng is banned in this crate.\nfn f() {}").is_empty());
    }

    #[test]
    fn string_literal_mentions_are_not_findings() {
        assert!(rules("let s = \"call .unwrap() at your peril\";").is_empty());
        assert!(rules("let s = \"panic!(boom)\";").is_empty());
        assert!(rules(r##"let s = r#"x.unwrap() and unreachable!(now)"#;"##).is_empty());
        assert!(rules("let s = \"thread_rng in a message\";").is_empty());
    }

    #[test]
    fn real_finding_next_to_decoy_text_still_fires() {
        // The decoy string on the same line must not mask the real call.
        assert_eq!(
            rules("let x = y.unwrap(); let s = \"fine: .unwrap()\";"),
            vec!["XL001"]
        );
        // A `#[cfg(test)]` inside a string is not the test-module marker.
        assert_eq!(
            rules("let s = \"#[cfg(test)]\";\nlet x = y.unwrap();"),
            vec!["XL001"]
        );
    }

    #[test]
    fn alloc_rule_ignores_comment_and_string_decoys() {
        let hot = "crates/ecc/src/secded.rs";
        assert!(scan_file(hot, "// Vec::new() is banned here\nlet x = 1;").is_empty());
        assert!(scan_file(hot, "let s = \"vec![1, 2]\";").is_empty());
        assert_eq!(
            scan_file(hot, "let v = Vec::new();")
                .iter()
                .map(|f| f.rule)
                .collect::<Vec<_>>(),
            vec!["XL009"]
        );
    }

    #[test]
    fn expect_requires_invariant_comment() {
        assert_eq!(rules("let x = y.expect(\"msg\");"), vec!["XL002"]);
        assert!(rules("// invariant: y is Some here\nlet x = y.expect(\"msg\");").is_empty());
    }

    #[test]
    fn waiver_suppresses_on_same_or_previous_line() {
        assert!(rules("let x = y.unwrap(); // xed-lint: allow(XL001)").is_empty());
        assert!(rules("// xed-lint: allow(XL001)\nlet x = y.unwrap();").is_empty());
        // A waiver for a different rule does not help.
        assert_eq!(
            rules("let x = y.unwrap(); // xed-lint: allow(XL003)"),
            vec!["XL001"]
        );
    }

    #[test]
    fn float_equality() {
        assert_eq!(rules("if p == 0.5 {"), vec!["XL004"]);
        assert_eq!(rules("if 1.0 != q {"), vec!["XL004"]);
        assert!(rules("if p >= 0.5 {").is_empty());
        assert!(rules("if n == 5 {").is_empty());
        assert!(rules("assert!(p <= 1.0);").is_empty());
    }

    #[test]
    fn nondeterminism_sources() {
        assert_eq!(rules("let mut rng = thread_rng();"), vec!["XL005"]);
        assert_eq!(rules("let t = Instant::now();"), vec!["XL005"]);
        assert!(rules("let mut rng = StdRng::seed_from_u64(7);").is_empty());
    }

    #[test]
    fn hash_iteration_flagged_as_warning() {
        let text = "struct S { table: HashMap<u64, u32> }\nfor (k, v) in table.iter() {\n";
        let f = scan_file("x.rs", text);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "XL006");
        assert_eq!(f[0].severity, Severity::Warning);
        // Lookups are fine.
        assert!(
            rules("struct S { table: HashMap<u64, u32> }\nlet v = table.get(&k);\n").is_empty()
        );
    }

    #[test]
    fn heap_allocation_flagged_only_in_ecc_hot_modules() {
        for tok in [
            "let v = Vec::new();",
            "let v = vec![0u8; 8];",
            "let v = s.to_vec();",
        ] {
            let f = scan_file("crates/ecc/src/rs.rs", tok);
            assert_eq!(f.len(), 1, "{tok}");
            assert_eq!(f[0].rule, "XL009");
            assert_eq!(f[0].severity, Severity::Error);
        }
        // Exempt homes: reference.rs, gf.rs, and the other library crates.
        for file in [
            "crates/ecc/src/reference.rs",
            "crates/ecc/src/gf.rs",
            "crates/ecc/src/chipkill.rs",
            "crates/faultsim/src/schemes.rs",
        ] {
            assert!(scan_file(file, "let v = Vec::new();").is_empty(), "{file}");
        }
        // Fixed-size types and the `Vec<u8>` *type name* are fine.
        assert!(scan_file("crates/ecc/src/rs.rs", "pub codeword: Vec<u8>,").is_empty());
        assert!(scan_file("crates/ecc/src/rs.rs", "let buf = [0u8; MAX_N];").is_empty());
        // Waiver, doc comment, and test-module exemptions still apply.
        assert!(scan_file(
            "crates/ecc/src/rs.rs",
            "let v = Vec::new(); // xed-lint: allow(XL009)"
        )
        .is_empty());
        assert!(scan_file("crates/ecc/src/rs.rs", "/// e.g. `x.to_vec()`").is_empty());
        assert!(scan_file(
            "crates/ecc/src/rs.rs",
            "#[cfg(test)]\nmod tests {\n  fn f() { let v = vec![1]; }\n}\n"
        )
        .is_empty());
    }

    #[test]
    fn hot_module_list_is_workspace_rooted() {
        for m in ALLOC_FREE_HOT_MODULES {
            assert!(
                m.starts_with("crates/ecc/src/") || m.starts_with("crates/telemetry/src/"),
                "{m}"
            );
            assert!(m.ends_with(".rs"), "{m}");
        }
    }

    #[test]
    fn telemetry_primitives_are_hot_modules() {
        let f = scan_file("crates/telemetry/src/ring.rs", "let v = Vec::new();");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "XL009");
        // The snapshot/export layer is allowed to allocate.
        assert!(scan_file("crates/telemetry/src/export.rs", "let v = Vec::new();").is_empty());
    }

    #[test]
    fn test_module_and_comments_exempt() {
        assert!(rules("// a comment mentioning x.unwrap()").is_empty());
        assert!(rules("/// doc: call x.unwrap()").is_empty());
        assert!(rules("#[cfg(test)]\nmod tests {\n  fn f() { y.unwrap(); }\n}\n").is_empty());
    }

    #[test]
    fn ignore_requires_issue_link() {
        // Bare `#[ignore]`, inside a test module, full-text scanned.
        // xed-lint: allow(XL011)
        let bad = "#[cfg(test)]\nmod tests {\n    #[test]\n    #[ignore]\n    fn slow() {}\n}\n";
        let f = scan_ignores("tests/x.rs", bad);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "XL011");
        assert_eq!(f[0].line, 4);

        // A linked issue on the attribute or up to two lines above passes.
        let linked = "    // issue: ISSUE.md #7 (flaky on loaded boxes)\n    #[test]\n    #[ignore]\n    fn slow() {}\n";
        assert!(scan_ignores("tests/x.rs", linked).is_empty());
        let reasoned = "    #[ignore = \"slow\"] // issue: ISSUE.md #7\n    fn slow() {}\n";
        assert!(scan_ignores("tests/x.rs", reasoned).is_empty());

        // Waivers and comments behave like every other rule.
        assert!(scan_ignores("tests/x.rs", "// e.g. #[ignore]\n").is_empty());
        assert!(scan_ignores("tests/x.rs", "#[ignore] // xed-lint: allow(XL011)\n").is_empty());
    }

    #[test]
    fn renders_machine_readable() {
        let f = &scan_file("crates/ecc/src/x.rs", "y.unwrap();")[0];
        let line = f.render();
        assert!(
            line.starts_with("crates/ecc/src/x.rs:1: error[XL001]:"),
            "{line}"
        );
        let json = f.render_json();
        assert!(json.contains(r#""rule":"XL001""#), "{json}");
        assert!(json.contains(r#""severity":"error""#), "{json}");
    }
}
