//! `cargo xtask verify-matrix`: the cross-validation driver.
//!
//! Runs the `xed-testkit` verification matrix — four independent oracles
//! checking the simulator from four angles — and exits nonzero if any
//! disagrees:
//!
//! 1. **de-flake audit** — the workspace's seeded test sweeps draw their
//!    seeds from `xed_testkit::seeds` (no magic numbers);
//! 2. **exhaustive oracle** — every fault placement and 2-fault
//!    combination on a tiny geometry, classifier vs hardware data path;
//! 3. **analytic gate** — Monte-Carlo estimates vs closed forms at 99%
//!    binomial confidence plus documented model bands;
//! 4. **tail gate** — the importance-sampled rare-event estimates vs the
//!    same closed forms, plus clique-forced vs count-conditioned
//!    cross-mode agreement (the reweighting math on trial);
//! 5. **metamorphic laws** — invariances, monotonicities and dominance
//!    orderings between runs;
//! 6. **infer gate** — BEER-style code inference against every
//!    registered `xed_ecc` matrix (bit-exact recovery or certified
//!    ambiguity) and the miscorrection profiler against brute-force
//!    decoder enumeration (DESIGN.md §17);
//! 7. **golden traces** — byte-exact `xed-trace-v1` conformance (plus
//!    the `xed-trace-spans-v1` span-export golden, `xedd`'s
//!    `/debug/flight` wire format) and a live telemetry-snapshot diff
//!    pinned against the replayed trials.
//!
//! `--quick` (the default) is the tier-1 CI setting; `--full` widens the
//! enumerations and sample counts for nightly runs. `--regen-golden`
//! rewrites the golden trace files in the source tree instead of
//! comparing against them.

use std::path::Path;
use std::process::ExitCode;
use xed_faultsim::montecarlo::{MonteCarlo, MonteCarloConfig};
use xed_faultsim::schemes::Scheme;
use xed_testkit::analytic_gate::{self, GateScope};
use xed_testkit::infer_gate::{self, InferScope};
use xed_testkit::metamorphic;
use xed_testkit::oracle::{self, OracleScope};
use xed_testkit::{seeds, spans, trace};

/// One section of the matrix: name, verdict, human-readable detail.
struct Section {
    name: &'static str,
    pass: bool,
    detail: String,
}

/// Entry point for the `verify-matrix` subcommand.
pub fn run(args: &[String]) -> ExitCode {
    let mut full = false;
    let mut regen = false;
    let mut format = "text".to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => full = false,
            "--full" => full = true,
            "--regen-golden" => regen = true,
            "--format" => match it.next() {
                Some(v) if v == "text" || v == "json" => format = v.clone(),
                _ => {
                    eprintln!("--format takes `text` or `json`");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("{}", crate::USAGE);
                return ExitCode::from(2);
            }
        }
    }

    let mut sections = vec![
        deflake_audit(),
        exhaustive_oracle(full),
        analytic(full),
        analytic_tail(full),
        laws(full),
        infer(full),
    ];
    if regen {
        sections.push(regenerate_golden());
    } else {
        sections.push(golden_traces());
    }
    sections.push(telemetry_cross_check());

    let pass = sections.iter().all(|s| s.pass);
    if format == "json" {
        let items: Vec<String> = sections
            .iter()
            .map(|s| format!(r#"{{"section":"{}","pass":{}}}"#, s.name, s.pass))
            .collect();
        println!(
            r#"{{"mode":"{}","sections":[{}],"pass":{pass}}}"#,
            if full { "full" } else { "quick" },
            items.join(",")
        );
    } else {
        for s in &sections {
            println!(
                "==> {} {}\n{}",
                s.name,
                if s.pass { "ok" } else { "FAILED" },
                s.detail
            );
        }
        println!(
            "verify-matrix ({}): {}",
            if full { "full" } else { "quick" },
            if pass {
                "all sections passed"
            } else {
                "FAILED"
            }
        );
    }
    if pass {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Section 1: no raw seed literals in the workspace test sweeps.
fn deflake_audit() -> Section {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut findings = Vec::new();
    let mut detail = String::new();
    for file in ["tests/proptests.rs", "tests/reliability_consistency.rs"] {
        match std::fs::read_to_string(root.join(file)) {
            Ok(text) => {
                let f = seeds::audit_source(file, &text);
                detail.push_str(&format!("  {file}: {} finding(s)\n", f.len()));
                findings.extend(f);
            }
            Err(e) => {
                findings.push(format!("{file}: unreadable: {e}"));
            }
        }
    }
    for f in &findings {
        detail.push_str(&format!("  {f}\n"));
    }
    Section {
        name: "de-flake audit",
        pass: findings.is_empty(),
        detail,
    }
}

/// Section 2: the exhaustive small-geometry oracle.
fn exhaustive_oracle(full: bool) -> Section {
    let scope = if full {
        OracleScope::Full
    } else {
        OracleScope::Quick
    };
    let report = oracle::run(scope);
    let mut detail = report.summary();
    for s in &report.schemes {
        for m in &s.mismatches {
            detail.push_str(&format!("  MISMATCH {m}\n"));
        }
    }
    detail.push_str(&format!("  total checks: {}\n", report.total_checks()));
    Section {
        name: "exhaustive oracle",
        pass: report.is_clean(),
        detail,
    }
}

/// Section 3: analytic closed forms vs Monte-Carlo.
fn analytic(full: bool) -> Section {
    let scope = if full {
        GateScope::Full
    } else {
        GateScope::Quick
    };
    let report = analytic_gate::run(scope);
    Section {
        name: "analytic gate",
        pass: report.is_clean(),
        detail: report.summary(),
    }
}

/// Section 3b: the importance-sampled tail estimator vs closed forms
/// and vs its own count-conditioned mode (DESIGN.md §14).
fn analytic_tail(full: bool) -> Section {
    let scope = if full {
        GateScope::Full
    } else {
        GateScope::Quick
    };
    let report = analytic_gate::run_tail(scope);
    Section {
        name: "tail gate",
        pass: report.is_clean(),
        detail: report.summary(),
    }
}

/// Section 4: the metamorphic laws.
fn laws(full: bool) -> Section {
    let samples = if full { 400_000 } else { 60_000 };
    let report = metamorphic::run(samples);
    Section {
        name: "metamorphic laws",
        pass: report.is_clean(),
        detail: report.summary(),
    }
}

/// Section 4b: BEER-style code inference vs the registered matrices
/// (bit-exact recovery or certified ambiguity) and the miscorrection
/// profiler vs brute-force enumeration (DESIGN.md §17).
fn infer(full: bool) -> Section {
    let scope = if full {
        InferScope::Full
    } else {
        InferScope::Quick
    };
    let report = infer_gate::run(scope);
    Section {
        name: "infer gate",
        pass: report.is_clean(),
        detail: report.summary(),
    }
}

/// Section 5 (check mode): golden `xed-trace-v1` conformance.
fn golden_traces() -> Section {
    let checks = trace::check_all();
    let mut detail = String::new();
    for c in &checks {
        detail.push_str(&format!(
            "  trace_{:<16} {}\n",
            trace::slug(c.scheme),
            if c.matches {
                "matches".to_string()
            } else {
                format!(
                    "STALE (first diff at line {:?}); regenerate with --regen-golden and review",
                    c.first_diff_line
                )
            }
        ));
    }
    let span_check = spans::check();
    detail.push_str(&format!(
        "  spans_v1          {}\n",
        if span_check.matches {
            "matches".to_string()
        } else {
            format!(
                "STALE (first diff at line {:?}); regenerate with --regen-golden and review",
                span_check.first_diff_line
            )
        }
    ));
    Section {
        name: "golden traces",
        pass: checks.iter().all(|c| c.matches) && span_check.matches,
        detail,
    }
}

/// Section 5 (regen mode): rewrite the golden files in the source tree.
fn regenerate_golden() -> Section {
    match trace::regenerate().and_then(|mut paths| {
        paths.push(spans::regenerate()?);
        Ok(paths)
    }) {
        Ok(paths) => Section {
            name: "golden traces (regenerated)",
            pass: true,
            detail: paths.iter().map(|p| format!("  wrote {p}\n")).collect(),
        },
        Err(e) => Section {
            name: "golden traces (regenerated)",
            pass: false,
            detail: format!("  write failed: {e}\n"),
        },
    }
}

/// Section 6: a live run's telemetry-snapshot diff must equal the
/// counters derived from replaying its trials. Single-process and
/// sequential by construction (this driver), so the diff window contains
/// exactly the one run.
fn telemetry_cross_check() -> Section {
    xed_telemetry::set_enabled(true);
    let m = MonteCarlo::new(MonteCarloConfig {
        samples: trace::SAMPLES,
        seed: seeds::GOLDEN_TRACE,
        threads: 1,
        ..MonteCarloConfig::default()
    });
    let before = xed_telemetry::registry::snapshot();
    let result = m.run(Scheme::Xed);
    let after = xed_telemetry::registry::snapshot();
    let diff = after.diff(&before);
    let replays: Vec<_> = (0..trace::SAMPLES)
        .map(|t| m.replay_trial(Scheme::Xed, t))
        .collect();

    let mut detail = String::new();
    let mut pass = true;
    let runs = diff.counter("faultsim.runs").unwrap_or(0);
    if runs != 1 {
        pass = false;
    }
    detail.push_str(&format!("  faultsim.runs delta {runs} (want 1)\n"));
    for (id, want) in trace::expected_telemetry(&replays, result.due, result.sdc) {
        let got = diff.counter(id).unwrap_or(0);
        if got != want {
            pass = false;
        }
        detail.push_str(&format!("  {id} delta {got} (want {want})\n"));
    }
    Section {
        name: "telemetry snapshot diff",
        pass,
        detail,
    }
}
