//! A FaultSim-style Monte-Carlo DRAM fault and repair simulator.
//!
//! The paper evaluates reliability with FaultSim (Nair et al., ACM TACO
//! 2015), an event-driven Monte-Carlo simulator: faults arrive in DRAM
//! devices as a Poisson process with the field-measured FIT rates of
//! Sridharan & Liberty (Table I of the XED paper), each fault occupies an
//! address *range* of its device (a bit, word, column, row, bank or the
//! whole chip), and an ECC scheme is queried after every arrival to decide
//! whether the system survived. The figure of merit is the probability that
//! a system fails at any point in a 7-year lifetime.
//!
//! This crate re-implements that methodology:
//!
//! * [`geometry`] — the internal organization of a DRAM device;
//! * [`fault`] — fault extents, persistence and range intersection;
//! * [`fit`] — the Table I failure rates and rate arithmetic;
//! * [`event`] — Poisson sampling of fault arrivals over a lifetime;
//! * [`system`] — channel/rank/chip organization of the evaluated systems;
//! * [`scaling`] — birthtime ("scaling") fault modeling;
//! * [`schemes`] — the protection schemes the paper compares;
//! * [`montecarlo`] — the work-stealing, thread-count-invariant
//!   simulation driver (per-trial counter-based RNG streams, bit-sliced
//!   64-lane trial classification);
//! * [`rareevent`] — the importance-sampled rare-event engine for
//!   Table-IV-class tail probabilities;
//! * [`engine`] — the query facade every consumer (figure binaries,
//!   benches, the `xedd` daemon) evaluates through: canonical config
//!   keys, streaming partial-confidence evaluation, batch sweeps;
//! * [`analytic`] — closed-form cross-checks for the Monte-Carlo results.
//!
//! # Example: probability of system failure under XED
//!
//! ```
//! use xed_faultsim::montecarlo::{MonteCarlo, MonteCarloConfig};
//! use xed_faultsim::schemes::Scheme;
//!
//! let mc = MonteCarlo::new(MonteCarloConfig {
//!     samples: 20_000,
//!     seed: 1,
//!     ..MonteCarloConfig::default()
//! });
//! let result = mc.run(Scheme::Xed);
//! // XED keeps the 7-year failure probability around 5e-4 (paper Fig. 7),
//! // so a 20k-sample smoke run sees at most a handful of failures.
//! assert!(result.failure_probability(7.0) < 0.01);
//! ```

pub mod analytic;
pub mod engine;
pub mod event;
pub mod fault;
pub mod fit;
pub mod geometry;
pub mod montecarlo;
pub mod rareevent;
pub mod scaling;
pub mod schemes;
pub mod system;

pub use engine::{
    code_model_family, code_model_ladder, evaluate, evaluate_streaming, CanonicalKey,
    CodeModelPoint, Estimate, Progress, Query, Sweep,
};
pub use fault::{FaultExtent, FaultRange, Persistence};
pub use fit::FitRates;
pub use geometry::DramGeometry;
pub use montecarlo::{
    MonteCarlo, MonteCarloConfig, RunReport, RunStats, SchemeResult, TrialKernel,
};
pub use rareevent::{TailConfig, TailEstimate, TailMode, TailSimulator};
pub use schemes::{CodeModel, Scheme};
pub use system::SystemConfig;
