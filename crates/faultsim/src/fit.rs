//! DRAM failure rates (FIT) from field data — the paper's Table I.
//!
//! A FIT is one failure per 10⁹ device-hours. The rates below are the
//! per-chip failure rates measured by Sridharan & Liberty ("A study of DRAM
//! failures in the field", SC 2012), reproduced as Table I of the XED paper.

use crate::fault::{FaultExtent, Persistence};
use rand::Rng;

/// Hours in one (365-day) year.
pub const HOURS_PER_YEAR: f64 = 24.0 * 365.0;

/// The paper's evaluation lifetime, in years.
pub const LIFETIME_YEARS: f64 = 7.0;

/// One row of Table I: transient and permanent FIT for a fault mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModeRate {
    /// Fault extent this row applies to.
    pub extent: FaultExtent,
    /// Transient failures per 10⁹ device-hours.
    pub transient_fit: f64,
    /// Permanent failures per 10⁹ device-hours.
    pub permanent_fit: f64,
}

/// Per-chip DRAM failure rates by mode (Table I).
#[derive(Debug, Clone, PartialEq)]
pub struct FitRates {
    rows: Vec<ModeRate>,
}

impl FitRates {
    /// Builds the Table I rates.
    ///
    /// Multi-bank (0.3 / 1.4 FIT) and multi-rank (0.9 / 2.8 FIT) are folded
    /// into the [`FaultExtent::Chip`] row (see DESIGN.md §3).
    pub fn table_i() -> Self {
        Self {
            rows: vec![
                ModeRate {
                    extent: FaultExtent::Bit,
                    transient_fit: 14.2,
                    permanent_fit: 18.6,
                },
                ModeRate {
                    extent: FaultExtent::Word,
                    transient_fit: 1.4,
                    permanent_fit: 0.3,
                },
                ModeRate {
                    extent: FaultExtent::Column,
                    transient_fit: 1.4,
                    permanent_fit: 5.6,
                },
                ModeRate {
                    extent: FaultExtent::Row,
                    transient_fit: 0.2,
                    permanent_fit: 8.2,
                },
                ModeRate {
                    extent: FaultExtent::Bank,
                    transient_fit: 0.8,
                    permanent_fit: 10.0,
                },
                // multi-bank (0.3t, 1.4p) + multi-rank (0.9t, 2.8p)
                ModeRate {
                    extent: FaultExtent::Chip,
                    transient_fit: 1.2,
                    permanent_fit: 4.2,
                },
            ],
        }
    }

    /// Builds custom rates (for ablation studies).
    ///
    /// # Panics
    ///
    /// Panics if an extent appears twice or a rate is negative.
    pub fn custom(rows: Vec<ModeRate>) -> Self {
        for (i, r) in rows.iter().enumerate() {
            assert!(
                r.transient_fit >= 0.0 && r.permanent_fit >= 0.0,
                "negative FIT"
            );
            assert!(
                rows[..i].iter().all(|p| p.extent != r.extent),
                "duplicate extent {:?}",
                r.extent
            );
        }
        Self { rows }
    }

    /// The rate rows.
    pub fn rows(&self) -> &[ModeRate] {
        &self.rows
    }

    /// Total FIT per chip (all modes, transient + permanent).
    pub fn total_fit(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| r.transient_fit + r.permanent_fit)
            .sum()
    }

    /// Total FIT per chip for multi-bit (non-bit-extent) modes only.
    pub fn large_fault_fit(&self) -> f64 {
        self.rows
            .iter()
            .filter(|r| r.extent.is_multi_bit())
            .map(|r| r.transient_fit + r.permanent_fit)
            .sum()
    }

    /// FIT for a specific (extent, persistence) pair, 0 if absent.
    pub fn fit_for(&self, extent: FaultExtent, persistence: Persistence) -> f64 {
        self.rows
            .iter()
            .find(|r| r.extent == extent)
            .map_or(0.0, |r| match persistence {
                Persistence::Transient => r.transient_fit,
                Persistence::Permanent => r.permanent_fit,
            })
    }

    /// Expected number of faults per chip over `hours`.
    pub fn expected_faults(&self, hours: f64) -> f64 {
        self.total_fit() * 1e-9 * hours
    }

    /// Samples a fault mode proportionally to its FIT contribution.
    pub fn sample_mode<R: Rng + ?Sized>(&self, rng: &mut R) -> (FaultExtent, Persistence) {
        let total = self.total_fit();
        assert!(total > 0.0, "cannot sample from all-zero FIT rates");
        let mut x = rng.gen_range(0.0..total);
        for r in &self.rows {
            if x < r.transient_fit {
                return (r.extent, Persistence::Transient);
            }
            x -= r.transient_fit;
            if x < r.permanent_fit {
                return (r.extent, Persistence::Permanent);
            }
            x -= r.permanent_fit;
        }
        // Floating-point edge: fall back to the last nonzero row.
        // invariant: total > 0.0 was asserted above, and total is the sum of
        // the per-row rates, so at least one row has a nonzero rate.
        let last = (self.rows.iter().rev())
            .find(|r| r.transient_fit + r.permanent_fit > 0.0)
            .expect("nonzero total implies a nonzero row");
        if last.permanent_fit > 0.0 {
            (last.extent, Persistence::Permanent)
        } else {
            (last.extent, Persistence::Transient)
        }
    }
}

impl Default for FitRates {
    fn default() -> Self {
        Self::table_i()
    }
}

/// Converts a FIT rate into a probability of at least one event over a
/// duration (exponential model).
pub fn fit_to_probability(fit: f64, hours: f64) -> f64 {
    1.0 - (-fit * 1e-9 * hours).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn table_i_totals() {
        let r = FitRates::table_i();
        // Transient: 14.2+1.4+1.4+0.2+0.8+0.3+0.9 = 19.2
        // Permanent: 18.6+0.3+5.6+8.2+10+1.4+2.8 = 46.9
        assert!((r.total_fit() - 66.1).abs() < 1e-9);
        assert!((r.large_fault_fit() - 33.3).abs() < 1e-9);
    }

    #[test]
    fn per_mode_lookup() {
        let r = FitRates::table_i();
        assert_eq!(r.fit_for(FaultExtent::Bit, Persistence::Transient), 14.2);
        assert_eq!(r.fit_for(FaultExtent::Bank, Persistence::Permanent), 10.0);
        assert_eq!(r.fit_for(FaultExtent::Chip, Persistence::Transient), 1.2);
    }

    #[test]
    fn expected_faults_over_seven_years() {
        let r = FitRates::table_i();
        let hours = LIFETIME_YEARS * HOURS_PER_YEAR;
        let e = r.expected_faults(hours);
        // 66.1e-9 * 61320 ≈ 4.05e-3 per chip.
        assert!((e - 66.1e-9 * hours).abs() < 1e-12);
        assert!(e > 3e-3 && e < 5e-3);
    }

    #[test]
    fn sampling_matches_rates() {
        let r = FitRates::table_i();
        let mut rng = StdRng::seed_from_u64(5);
        let n = 200_000;
        let mut bit_transient = 0u32;
        let mut bank_permanent = 0u32;
        for _ in 0..n {
            match r.sample_mode(&mut rng) {
                (FaultExtent::Bit, Persistence::Transient) => bit_transient += 1,
                (FaultExtent::Bank, Persistence::Permanent) => bank_permanent += 1,
                _ => {}
            }
        }
        let p_bit_t = bit_transient as f64 / n as f64;
        let p_bank_p = bank_permanent as f64 / n as f64;
        assert!(
            (p_bit_t - 14.2 / 66.1).abs() < 0.01,
            "bit transient {p_bit_t}"
        );
        assert!(
            (p_bank_p - 10.0 / 66.1).abs() < 0.01,
            "bank permanent {p_bank_p}"
        );
    }

    #[test]
    fn fit_probability_small_rate_linear() {
        let p = fit_to_probability(33.3, 61320.0);
        let linear = 33.3e-9 * 61320.0;
        assert!((p - linear).abs() / linear < 0.01);
    }

    #[test]
    #[should_panic]
    fn custom_rejects_duplicates() {
        FitRates::custom(vec![
            ModeRate {
                extent: FaultExtent::Bit,
                transient_fit: 1.0,
                permanent_fit: 1.0,
            },
            ModeRate {
                extent: FaultExtent::Bit,
                transient_fit: 2.0,
                permanent_fit: 2.0,
            },
        ]);
    }

    #[test]
    #[should_panic]
    fn custom_rejects_negative() {
        FitRates::custom(vec![ModeRate {
            extent: FaultExtent::Bit,
            transient_fit: -1.0,
            permanent_fit: 0.0,
        }]);
    }

    #[test]
    fn missing_extent_is_zero() {
        let r = FitRates::custom(vec![]);
        assert_eq!(r.fit_for(FaultExtent::Row, Persistence::Permanent), 0.0);
        assert_eq!(r.total_fit(), 0.0);
    }
}
