//! Internal organization of a DRAM device.

/// Geometry of one DRAM device (chip), in units of on-die ECC words.
///
/// The paper's baseline devices are 2Gb x8 parts organized as 8 banks ×
/// 32K rows × 128 cache-line columns (Table V); each column access makes
/// the chip supply one 64-bit word (8 bursts of 8 bits), which is also the
/// granularity of the on-die ECC. So the device's address space, at on-die
/// word granularity, is `banks × rows × cols` 64-bit words:
/// 8 × 32768 × 128 × 64 bits = 2 Gbit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramGeometry {
    /// Banks per device.
    pub banks: u32,
    /// Rows per bank.
    pub rows: u32,
    /// Cache-line columns per row (each contributes one 64-bit word per
    /// device).
    pub cols: u32,
    /// Bits per on-die ECC word (64 for x8 devices; 32 for x4 devices,
    /// which supply 32 bits per cache-line access).
    pub word_bits: u32,
}

impl DramGeometry {
    /// The paper's 2Gb x8 device: 8 banks, 32K rows, 128 columns, 64-bit
    /// words (Table V).
    pub const fn x8_2gb() -> Self {
        Self {
            banks: 8,
            rows: 32 * 1024,
            cols: 128,
            word_bits: 64,
        }
    }

    /// A 2Gb x4 device: same array organization but each access supplies a
    /// 32-bit word, so twice the columns.
    pub const fn x4_2gb() -> Self {
        Self {
            banks: 8,
            rows: 32 * 1024,
            cols: 256,
            word_bits: 32,
        }
    }

    /// Total capacity in bits.
    pub fn capacity_bits(&self) -> u64 {
        self.banks as u64 * self.rows as u64 * self.cols as u64 * self.word_bits as u64
    }

    /// Total number of on-die ECC words.
    pub fn words(&self) -> u64 {
        self.banks as u64 * self.rows as u64 * self.cols as u64
    }
}

impl Default for DramGeometry {
    fn default() -> Self {
        Self::x8_2gb()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x8_device_is_2gbit() {
        assert_eq!(DramGeometry::x8_2gb().capacity_bits(), 2u64 << 30);
    }

    #[test]
    fn x4_device_is_2gbit() {
        assert_eq!(DramGeometry::x4_2gb().capacity_bits(), 2u64 << 30);
    }

    #[test]
    fn word_count_matches_capacity() {
        let g = DramGeometry::x8_2gb();
        assert_eq!(g.words() * 64, g.capacity_bits());
    }

    #[test]
    fn default_is_x8() {
        assert_eq!(DramGeometry::default(), DramGeometry::x8_2gb());
    }
}
