//! Poisson sampling of fault arrivals over a system lifetime.
//!
//! Faults arrive in each device as a Poisson process with the Table I FIT
//! rates. Rather than drawing per-chip arrival counts (slow for large
//! systems), the sampler draws the *system-wide* fault count from a single
//! Poisson distribution and assigns each fault a uniformly random chip,
//! arrival time and mode — statistically identical because the per-chip
//! processes are i.i.d.

use crate::fault::Fault;
use crate::fit::{FitRates, HOURS_PER_YEAR};
use crate::geometry::DramGeometry;
use rand::Rng;

/// One fault arrival in the system timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Arrival time, in hours since system start.
    pub time_hours: f64,
    /// Global chip index the fault struck.
    pub chip: u32,
    /// The fault itself.
    pub fault: Fault,
}

/// Samples a Poisson-distributed count with mean `lambda`.
///
/// Uses Knuth's product-of-uniforms method (exact) for small means — the
/// paper configurations all have λ < 1 — and splits larger means into
/// chunks, exploiting that sums of independent Poissons are Poisson.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u32 {
    assert!(
        lambda.is_finite() && lambda >= 0.0,
        "poisson mean {lambda} must be finite and ≥ 0"
    );
    const CHUNK: f64 = 30.0;
    let mut total = 0u32;
    let mut remaining = lambda;
    while remaining > CHUNK {
        total += poisson_knuth(rng, CHUNK);
        remaining -= CHUNK;
    }
    total + poisson_knuth(rng, remaining)
}

fn poisson_knuth<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u32 {
    let l = (-lambda).exp();
    let mut k = 0u32;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Samples the full fault timeline of one system over `years`, sorted by
/// arrival time.
pub fn sample_lifetime<R: Rng + ?Sized>(
    rng: &mut R,
    rates: &FitRates,
    geom: &DramGeometry,
    total_chips: u32,
    years: f64,
) -> Vec<FaultEvent> {
    let hours = years * HOURS_PER_YEAR;
    let lambda = rates.total_fit() * 1e-9 * hours * total_chips as f64;
    let count = poisson(rng, lambda);
    let mut events = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let (extent, persistence) = rates.sample_mode(rng);
        events.push(FaultEvent {
            time_hours: rng.gen_range(0.0..hours),
            chip: rng.gen_range(0..total_chips),
            fault: Fault::sample(rng, extent, persistence, geom),
        });
    }
    events.sort_by(|a, b| a.time_hours.total_cmp(&b.time_hours));
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fit::LIFETIME_YEARS;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn poisson_mean_and_variance() {
        let mut rng = StdRng::seed_from_u64(1);
        let lambda = 3.7;
        let n = 100_000;
        let samples: Vec<u32> = (0..n).map(|_| poisson(&mut rng, lambda)).collect();
        let mean = samples.iter().map(|&x| x as f64).sum::<f64>() / n as f64;
        let var = samples
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        assert!((mean - lambda).abs() < 0.05, "mean {mean}");
        assert!((var - lambda).abs() < 0.15, "var {var}");
    }

    #[test]
    fn poisson_zero_lambda() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert_eq!(poisson(&mut rng, 0.0), 0);
        }
    }

    #[test]
    fn lifetime_event_count_matches_expectation() {
        let mut rng = StdRng::seed_from_u64(3);
        let rates = FitRates::table_i();
        let geom = DramGeometry::x8_2gb();
        let chips = 72;
        let runs = 20_000;
        let total: usize = (0..runs)
            .map(|_| sample_lifetime(&mut rng, &rates, &geom, chips, LIFETIME_YEARS).len())
            .sum();
        let mean = total as f64 / runs as f64;
        // λ = 66.1e-9 · 61320 · 72 ≈ 0.2919
        let expected = 66.1e-9 * LIFETIME_YEARS * HOURS_PER_YEAR * chips as f64;
        assert!(
            (mean - expected).abs() < 0.02,
            "mean {mean} expected {expected}"
        );
    }

    #[test]
    fn events_sorted_and_in_range() {
        let mut rng = StdRng::seed_from_u64(4);
        let rates = FitRates::table_i();
        let geom = DramGeometry::x8_2gb();
        // Crank the chip count so most samples have several events.
        for _ in 0..50 {
            let ev = sample_lifetime(&mut rng, &rates, &geom, 100_000, LIFETIME_YEARS);
            for w in ev.windows(2) {
                assert!(w[0].time_hours <= w[1].time_hours);
            }
            for e in &ev {
                assert!(e.chip < 100_000);
                assert!(e.time_hours >= 0.0 && e.time_hours <= LIFETIME_YEARS * HOURS_PER_YEAR);
            }
        }
    }

    #[test]
    #[should_panic]
    fn poisson_rejects_negative_lambda() {
        let mut rng = StdRng::seed_from_u64(5);
        poisson(&mut rng, -1.0);
    }

    #[test]
    fn poisson_large_lambda_chunked() {
        let mut rng = StdRng::seed_from_u64(6);
        let lambda = 120.0;
        let n = 20_000;
        let mean = (0..n)
            .map(|_| poisson(&mut rng, lambda) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - lambda).abs() < 0.5, "mean {mean}");
    }
}
