//! Poisson sampling of fault arrivals over a system lifetime.
//!
//! Faults arrive in each device as a Poisson process with the Table I FIT
//! rates. Rather than drawing per-chip arrival counts (slow for large
//! systems), the sampler draws the *system-wide* fault count from a single
//! Poisson distribution and assigns each fault a uniformly random chip,
//! arrival time and mode — statistically identical because the per-chip
//! processes are i.i.d.

use crate::fault::{Fault, FaultExtent, Persistence};
use crate::fit::{FitRates, HOURS_PER_YEAR};
use crate::geometry::DramGeometry;
use rand::Rng;

/// One fault arrival in the system timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Arrival time, in hours since system start.
    pub time_hours: f64,
    /// Global chip index the fault struck.
    pub chip: u32,
    /// The fault itself.
    pub fault: Fault,
}

/// Mean above which [`poisson`] splits the draw into independent chunks
/// (`exp(-30)` is still comfortably inside `f64` range; the paper's system
/// means are all below 1).
pub(crate) const POISSON_CHUNK: f64 = 30.0;

/// Samples a Poisson-distributed count with mean `lambda`.
///
/// Uses Knuth's product-of-uniforms method (exact) for small means — the
/// paper configurations all have λ < 1 — and splits larger means into
/// chunks, exploiting that sums of independent Poissons are Poisson.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u32 {
    assert!(
        lambda.is_finite() && lambda >= 0.0,
        "poisson mean {lambda} must be finite and ≥ 0"
    );
    let mut total = 0u32;
    let mut remaining = lambda;
    while remaining > POISSON_CHUNK {
        total += poisson_knuth(rng, (-POISSON_CHUNK).exp());
        remaining -= POISSON_CHUNK;
    }
    total + poisson_knuth(rng, (-remaining).exp())
}

/// Knuth's method given the precomputed threshold `l = exp(-lambda)`.
///
/// A count of zero costs exactly one uniform draw and one compare — the
/// Monte-Carlo zero-fault fast path rides on this.
fn poisson_knuth<R: Rng + ?Sized>(rng: &mut R, l: f64) -> u32 {
    let mut k = 0u32;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// [`poisson_knuth`] with the first uniform supplied by the caller as `p0`
/// (everything after it still comes from `rng`). Same counts from the same
/// uniforms — the split-stream Monte-Carlo path draws the first uniform
/// out-of-band to decide zero-fault trials cheaply.
fn poisson_knuth_from<R: Rng + ?Sized>(p0: f64, rng: &mut R, l: f64) -> u32 {
    let mut k = 0u32;
    let mut p = p0;
    loop {
        if p <= l {
            return k;
        }
        k += 1;
        p *= rng.gen::<f64>();
    }
}

/// A Poisson sampler with its `exp(-λ)` threshold precomputed.
///
/// [`poisson`] recomputes the exponential on every call; at Monte-Carlo
/// trial rates (tens of millions of draws per second) that transcendental
/// dominates the zero-fault path, so the hot loop hoists it here once per
/// run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonSampler {
    lambda: f64,
    /// `exp(-lambda)`, valid only when `lambda <= POISSON_CHUNK`.
    exp_neg_lambda: f64,
    /// `(u64 >> 11) < zero_thresh` ⟺ the first uniform is ≤ `exp(-λ)`:
    /// the count-zero test in exact integer form, skipping the int→float
    /// conversion on the dominant zero-fault path. Equals
    /// `⌊exp(-λ)·2⁵³⌋ + 1`, matching the shim's 53-bit `f64` mapping.
    zero_thresh: u64,
}

impl PoissonSampler {
    /// Builds a sampler for mean `lambda`.
    ///
    /// # Panics
    ///
    /// Panics unless `lambda` is finite and ≥ 0.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda >= 0.0,
            "poisson mean {lambda} must be finite and ≥ 0"
        );
        let exp_neg_lambda = (-lambda.min(POISSON_CHUNK)).exp();
        Self {
            lambda,
            exp_neg_lambda,
            zero_thresh: (exp_neg_lambda * (1u64 << 53) as f64) as u64 + 1,
        }
    }

    /// The configured mean.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Draws one Poisson-distributed count.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        if self.lambda <= POISSON_CHUNK {
            // First Knuth iteration, unrolled with the integer-form compare.
            // `u/2⁵³ ≤ exp(-λ) ⟺ u < zero_thresh` exactly, so this returns
            // the same counts from the same draws as `poisson_knuth`.
            let u = rng.next_u64() >> 11;
            if u < self.zero_thresh {
                return 0;
            }
            let mut p = u as f64 * (1.0 / (1u64 << 53) as f64);
            let mut k = 1u32;
            loop {
                p *= rng.gen::<f64>();
                if p <= self.exp_neg_lambda {
                    return k;
                }
                k += 1;
            }
        } else {
            poisson(rng, self.lambda)
        }
    }

    /// `true` if a trial whose first uniform draw is the 64-bit value `u0`
    /// has a fault count of zero — decidable from `u0` alone whenever
    /// `λ ≤ POISSON_CHUNK` (always, for the paper's systems). For larger
    /// means this conservatively answers `false` and the full
    /// [`Self::sample_split`] decides.
    #[inline]
    pub fn is_zero(&self, u0: u64) -> bool {
        self.lambda <= POISSON_CHUNK && (u0 >> 11) < self.zero_thresh
    }

    /// Lane-transposed form of [`Self::is_zero`]: classifies 64 headline
    /// draws at once, returning a word whose bit `ℓ` is set iff lane `ℓ`
    /// is *not* provably zero-count.
    ///
    /// The λ-range test hoists out of the lane loop, leaving one
    /// shift+compare+or per lane — straight-line, branch-free, and
    /// bit-for-bit equivalent to 64 scalar [`Self::is_zero`] calls. The
    /// bit-sliced Monte-Carlo kernel pops this word to credit a whole
    /// block's zero-fault trials in one tally add and spills only the set
    /// bits to the scalar event machinery.
    #[inline]
    pub fn nonzero_mask(&self, u0s: &[u64; 64]) -> u64 {
        if self.lambda > POISSON_CHUNK {
            // Conservative, like is_zero: a headline draw alone cannot
            // prove a zero count on the chunked large-λ path.
            return u64::MAX;
        }
        let mut mask = 0u64;
        for (lane, &u0) in u0s.iter().enumerate() {
            mask |= u64::from((u0 >> 11) >= self.zero_thresh) << lane;
        }
        mask
    }

    /// Draws one Poisson count with the first uniform supplied as the raw
    /// 64-bit value `u0` and the rest from `rng`.
    ///
    /// Pairing `u0 = Streams::split_first(i)` with
    /// `rng = Streams::split_rest(i)` makes the count (and everything
    /// after it) a pure function of the stream index, while letting the
    /// caller skip building `rng` at all when [`Self::is_zero`]`(u0)`.
    pub fn sample_split<R: Rng + ?Sized>(&self, u0: u64, rng: &mut R) -> u32 {
        let p0 = (u0 >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if self.lambda <= POISSON_CHUNK {
            poisson_knuth_from(p0, rng, self.exp_neg_lambda)
        } else {
            let mut total = poisson_knuth_from(p0, rng, (-POISSON_CHUNK).exp());
            let mut remaining = self.lambda - POISSON_CHUNK;
            while remaining > POISSON_CHUNK {
                total += poisson_knuth(rng, (-POISSON_CHUNK).exp());
                remaining -= POISSON_CHUNK;
            }
            total + poisson_knuth(rng, (-remaining).exp())
        }
    }
}

/// Every extent × persistence pair ([`FaultExtent::ALL`] × 2).
const MAX_MODES: usize = 12;

/// Walker alias-table slots: the smallest power of two ≥ [`MAX_MODES`]
/// (power of two so the slot pick is a mask, not a modulo).
const ALIAS_SLOTS: usize = 16;

/// One slot of the Walker/Vose alias table over fault modes.
///
/// A draw picks a slot from its low bits and compares the remaining 60
/// bits against `thresh`: below takes `primary`, at-or-above takes
/// `alias`. One uniform, one load, one conditional move — no
/// data-dependent branch, unlike a cumulative-weight scan whose exit
/// point is random and mispredicts nearly every event.
#[derive(Debug, Clone, Copy, PartialEq)]
struct AliasSlot {
    /// Acceptance threshold on the 60 high bits of the draw.
    thresh: u64,
    primary: (FaultExtent, Persistence),
    alias: (FaultExtent, Persistence),
}

/// A reusable sampler for full system-fault timelines.
///
/// Precomputes everything that is constant across trials: lifetime hours,
/// the system-wide Poisson mean with its `exp(-λ)`, and the fault-mode
/// distribution compiled into a Walker alias table (one uniform draw and
/// one branch-free table lookup per event, instead of walking the
/// `FitRates` row `Vec`). The per-trial work is only the draws
/// themselves; used with a caller-owned event buffer via
/// [`LifetimeSampler::sample_into`], a trial allocates nothing.
#[derive(Debug, Clone)]
pub struct LifetimeSampler<'a> {
    rates: &'a FitRates,
    geom: DramGeometry,
    total_chips: u32,
    hours: f64,
    poisson: PoissonSampler,
    alias: [AliasSlot; ALIAS_SLOTS],
}

impl<'a> LifetimeSampler<'a> {
    /// Builds a sampler for systems of `total_chips` devices of geometry
    /// `geom` observed for `years` years under `rates`.
    ///
    /// # Panics
    ///
    /// Panics if `rates` carries more than one row per extent (which
    /// [`FitRates::custom`] already rejects).
    pub fn new(rates: &'a FitRates, geom: DramGeometry, total_chips: u32, years: f64) -> Self {
        let hours = years * HOURS_PER_YEAR;
        let lambda = rates.total_fit() * 1e-9 * hours * total_chips as f64;

        // Flatten (extent, persistence, weight) triples, dropping
        // zero-weight modes, then compile them into an alias table with
        // Vose's method. Construction is deterministic (fixed iteration
        // order), so every worker thread builds the identical table.
        let mut weighted: Vec<(f64, FaultExtent, Persistence)> = Vec::with_capacity(MAX_MODES);
        for r in rates.rows() {
            if r.transient_fit > 0.0 {
                weighted.push((r.transient_fit, r.extent, Persistence::Transient));
            }
            if r.permanent_fit > 0.0 {
                weighted.push((r.permanent_fit, r.extent, Persistence::Permanent));
            }
        }
        assert!(weighted.len() <= MAX_MODES, "duplicate extents in rates");
        let total: f64 = weighted.iter().map(|w| w.0).sum();

        const ALWAYS: u64 = 1 << 60; // > any 60-bit draw ⇒ primary always
        let dummy = (FaultExtent::Bit, Persistence::Transient);
        let mut alias = [AliasSlot {
            thresh: ALWAYS,
            primary: dummy,
            alias: dummy,
        }; ALIAS_SLOTS];
        if total > 0.0 {
            let mut scaled = [0.0f64; ALIAS_SLOTS];
            let mut mode = [dummy; ALIAS_SLOTS];
            for (i, (w, extent, persistence)) in weighted.iter().enumerate() {
                scaled[i] = w / total * ALIAS_SLOTS as f64;
                mode[i] = (*extent, *persistence);
            }
            let mut small: Vec<usize> = Vec::with_capacity(ALIAS_SLOTS);
            let mut large: Vec<usize> = Vec::with_capacity(ALIAS_SLOTS);
            for (i, &s) in scaled.iter().enumerate() {
                if s < 1.0 {
                    small.push(i);
                } else {
                    large.push(i);
                }
            }
            while let (Some(s), Some(l)) = (small.pop(), large.last().copied()) {
                alias[s] = AliasSlot {
                    thresh: (scaled[s] * ALWAYS as f64) as u64,
                    primary: mode[s],
                    alias: mode[l],
                };
                scaled[l] = (scaled[l] + scaled[s]) - 1.0;
                if scaled[l] < 1.0 {
                    large.pop();
                    small.push(l);
                }
            }
            // Leftovers (floating-point residue, each ≈ 1) keep their own
            // mode with probability one.
            for i in large.into_iter().chain(small) {
                alias[i] = AliasSlot {
                    thresh: ALWAYS,
                    primary: mode[i],
                    alias: mode[i],
                };
            }
        }
        Self {
            rates,
            geom,
            total_chips,
            hours,
            poisson: PoissonSampler::new(lambda),
            alias,
        }
    }

    /// The system-wide Poisson mean (expected faults per lifetime).
    pub fn lambda(&self) -> f64 {
        self.poisson.lambda()
    }

    /// The configured FIT rates.
    pub fn rates(&self) -> &FitRates {
        self.rates
    }

    /// Samples a fault mode proportionally to its FIT contribution from
    /// the precomputed alias table: one uniform, no data-dependent branch
    /// (the primary/alias pick compiles to an indexed select).
    #[inline]
    fn sample_mode<R: Rng + ?Sized>(&self, rng: &mut R) -> (FaultExtent, Persistence) {
        let u = rng.next_u64();
        // indexing: masked to ALIAS_SLOTS - 1 (power of two), in bounds.
        let slot = &self.alias[(u & (ALIAS_SLOTS as u64 - 1)) as usize];
        // indexing: a bool (0 or 1) selecting from a two-element array.
        [slot.alias, slot.primary][usize::from(u >> 4 < slot.thresh)]
    }

    /// Samples one system's fault timeline into `out` (cleared first),
    /// sorted by arrival time.
    ///
    /// Zero-fault fast path: the Poisson count is drawn before the buffer
    /// is touched, so the overwhelmingly common empty lifetime costs one
    /// uniform draw and never writes an event. Reusing `out` across trials
    /// makes the loop allocation-free once the buffer has grown to the
    /// largest count seen.
    #[inline]
    pub fn sample_into<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut Vec<FaultEvent>) {
        out.clear();
        let count = self.poisson.sample(rng);
        self.push_events(count, rng, out);
    }

    /// `true` if a trial whose first uniform draw is `u0` sees no fault at
    /// all — the Monte-Carlo zero-fault fast path (see
    /// [`PoissonSampler::is_zero`]).
    #[inline]
    pub fn is_zero_fault(&self, u0: u64) -> bool {
        self.poisson.is_zero(u0)
    }

    /// Lane-transposed [`Self::is_zero_fault`] over a 64-trial block: bit
    /// `ℓ` of the result is set iff the trial whose headline draw is
    /// `u0s[ℓ]` needs the full event machinery (see
    /// [`PoissonSampler::nonzero_mask`]).
    #[inline]
    pub fn nonzero_mask(&self, u0s: &[u64; 64]) -> u64 {
        self.poisson.nonzero_mask(u0s)
    }

    /// [`Self::sample_into`] with the trial's first uniform supplied as the
    /// raw 64-bit value `u0` (see [`PoissonSampler::sample_split`]); `rng`
    /// carries every draw after it.
    #[inline]
    pub fn sample_into_split<R: Rng + ?Sized>(
        &self,
        u0: u64,
        rng: &mut R,
        out: &mut Vec<FaultEvent>,
    ) {
        out.clear();
        let count = self.poisson.sample_split(u0, rng);
        self.push_events(count, rng, out);
    }

    /// The trial's fault count, split form (see
    /// [`PoissonSampler::sample_split`]). Callers that dispatch on the
    /// count before generating events pair this with
    /// [`Self::sample_mode_time`] / [`Self::events_into`].
    #[inline]
    pub fn count_split<R: Rng + ?Sized>(&self, u0: u64, rng: &mut R) -> u32 {
        self.poisson.sample_split(u0, rng)
    }

    /// Draws one event's mode and arrival time — the first two per-event
    /// draws of [`Self::sample_into`], without the chip/range draws.
    ///
    /// The Monte-Carlo single-fault fast path uses this: with no other
    /// active faults, a verdict never depends on *which* chip or address
    /// range the fault hit (see `SchemeModel::evaluate_isolated`), so
    /// those draws are dead and skipped.
    #[inline]
    pub fn sample_mode_time<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
    ) -> (FaultExtent, Persistence, f64) {
        let (extent, persistence) = self.sample_mode(rng);
        (extent, persistence, rng.gen::<f64>() * self.hours)
    }

    /// Generates exactly `count` events into `out` (cleared first), sorted
    /// by arrival time — [`Self::sample_into`] with the count already
    /// drawn.
    #[inline]
    pub fn events_into<R: Rng + ?Sized>(&self, count: u32, rng: &mut R, out: &mut Vec<FaultEvent>) {
        out.clear();
        self.push_events(count, rng, out);
    }

    /// Appends exactly `count` fresh events to `out` **without clearing
    /// or sorting** — the rare-event engine interleaves these with forced
    /// fault cliques and orders the combined timeline itself.
    #[inline]
    pub fn events_append<R: Rng + ?Sized>(
        &self,
        count: u32,
        rng: &mut R,
        out: &mut Vec<FaultEvent>,
    ) {
        out.reserve(count as usize);
        for _ in 0..count {
            let (extent, persistence) = self.sample_mode(rng);
            out.push(FaultEvent {
                time_hours: rng.gen::<f64>() * self.hours,
                chip: rng.gen_range(0..self.total_chips),
                fault: Fault::sample(rng, extent, persistence, &self.geom),
            });
        }
    }

    /// Generates `count` events into `out`, sorted by arrival time.
    #[inline]
    fn push_events<R: Rng + ?Sized>(&self, count: u32, rng: &mut R, out: &mut Vec<FaultEvent>) {
        if count == 0 {
            return;
        }
        self.events_append(count, rng, out);
        if out.len() > 1 {
            out.sort_unstable_by(|a, b| a.time_hours.total_cmp(&b.time_hours));
        }
    }
}

/// Samples the full fault timeline of one system over `years`, sorted by
/// arrival time.
///
/// Convenience wrapper over [`LifetimeSampler`] that allocates a fresh
/// `Vec`; hot loops should hold a `LifetimeSampler` and reuse a buffer via
/// [`LifetimeSampler::sample_into`] instead.
pub fn sample_lifetime<R: Rng + ?Sized>(
    rng: &mut R,
    rates: &FitRates,
    geom: &DramGeometry,
    total_chips: u32,
    years: f64,
) -> Vec<FaultEvent> {
    let sampler = LifetimeSampler::new(rates, *geom, total_chips, years);
    let mut events = Vec::new();
    sampler.sample_into(rng, &mut events);
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fit::LIFETIME_YEARS;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn poisson_mean_and_variance() {
        let mut rng = StdRng::seed_from_u64(1);
        let lambda = 3.7;
        let n = 100_000;
        let samples: Vec<u32> = (0..n).map(|_| poisson(&mut rng, lambda)).collect();
        let mean = samples.iter().map(|&x| x as f64).sum::<f64>() / n as f64;
        let var = samples
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        assert!((mean - lambda).abs() < 0.05, "mean {mean}");
        assert!((var - lambda).abs() < 0.15, "var {var}");
    }

    #[test]
    fn poisson_zero_lambda() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert_eq!(poisson(&mut rng, 0.0), 0);
        }
    }

    #[test]
    fn lifetime_event_count_matches_expectation() {
        let mut rng = StdRng::seed_from_u64(3);
        let rates = FitRates::table_i();
        let geom = DramGeometry::x8_2gb();
        let chips = 72;
        let runs = 20_000;
        let total: usize = (0..runs)
            .map(|_| sample_lifetime(&mut rng, &rates, &geom, chips, LIFETIME_YEARS).len())
            .sum();
        let mean = total as f64 / runs as f64;
        // λ = 66.1e-9 · 61320 · 72 ≈ 0.2919
        let expected = 66.1e-9 * LIFETIME_YEARS * HOURS_PER_YEAR * chips as f64;
        assert!(
            (mean - expected).abs() < 0.02,
            "mean {mean} expected {expected}"
        );
    }

    #[test]
    fn events_sorted_and_in_range() {
        let mut rng = StdRng::seed_from_u64(4);
        let rates = FitRates::table_i();
        let geom = DramGeometry::x8_2gb();
        // Crank the chip count so most samples have several events.
        for _ in 0..50 {
            let ev = sample_lifetime(&mut rng, &rates, &geom, 100_000, LIFETIME_YEARS);
            for w in ev.windows(2) {
                assert!(w[0].time_hours <= w[1].time_hours);
            }
            for e in &ev {
                assert!(e.chip < 100_000);
                assert!(e.time_hours >= 0.0 && e.time_hours <= LIFETIME_YEARS * HOURS_PER_YEAR);
            }
        }
    }

    #[test]
    fn sampler_equivalent_to_sample_lifetime() {
        // The wrapper and the reusable-buffer path must draw identical
        // timelines from identical generator states.
        let rates = FitRates::table_i();
        let geom = DramGeometry::x8_2gb();
        let sampler = LifetimeSampler::new(&rates, geom, 5_000, LIFETIME_YEARS);
        let mut buf = Vec::new();
        for seed in 0..200 {
            let mut a = StdRng::seed_from_u64(seed);
            let mut b = StdRng::seed_from_u64(seed);
            let fresh = sample_lifetime(&mut a, &rates, &geom, 5_000, LIFETIME_YEARS);
            sampler.sample_into(&mut b, &mut buf);
            assert_eq!(fresh, buf, "seed {seed}");
            assert_eq!(a, b, "generators must consume the same draws");
        }
    }

    #[test]
    fn poisson_sampler_matches_poisson_distribution() {
        let mut rng = StdRng::seed_from_u64(8);
        let sampler = PoissonSampler::new(0.3);
        let n = 200_000;
        let zeros = (0..n).filter(|_| sampler.sample(&mut rng) == 0).count();
        let p0 = zeros as f64 / n as f64;
        let expected = (-0.3f64).exp(); // ≈ 0.7408
        assert!((p0 - expected).abs() < 0.005, "P(0) {p0} vs {expected}");
        // Large-mean fallback still chunks correctly.
        let big = PoissonSampler::new(120.0);
        let mean = (0..20_000)
            .map(|_| big.sample(&mut rng) as f64)
            .sum::<f64>()
            / 20_000.0;
        assert!((mean - 120.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn zero_fault_fast_path_consumes_one_draw() {
        // With λ = 0 every trial is the fast path: one uniform draw, no
        // buffer writes.
        let rates = FitRates::custom(vec![]);
        let geom = DramGeometry::x8_2gb();
        let sampler = LifetimeSampler::new(&rates, geom, 72, LIFETIME_YEARS);
        assert_eq!(sampler.lambda(), 0.0);
        let mut rng = StdRng::seed_from_u64(11);
        let mut reference = StdRng::seed_from_u64(11);
        let mut buf = vec![];
        for _ in 0..50 {
            sampler.sample_into(&mut rng, &mut buf);
            assert!(buf.is_empty());
            let _: f64 = reference.gen();
        }
        assert_eq!(rng, reference, "fast path must draw exactly one uniform");
    }

    #[test]
    fn nonzero_mask_agrees_with_scalar_is_zero() {
        // The lane classifier must be bit-for-bit the 64 scalar calls —
        // this is what licenses the bit-sliced kernel's bulk zero-fault
        // credit and spill set.
        let rates = FitRates::table_i();
        let geom = DramGeometry::x8_2gb();
        let sampler = LifetimeSampler::new(&rates, geom, 72, LIFETIME_YEARS);
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..200 {
            let mut u0s = [0u64; 64];
            for slot in u0s.iter_mut() {
                *slot = rng.gen::<u64>();
            }
            let mask = sampler.nonzero_mask(&u0s);
            for (lane, &u0) in u0s.iter().enumerate() {
                assert_eq!(
                    mask >> lane & 1 == 1,
                    !sampler.is_zero_fault(u0),
                    "lane {lane}"
                );
            }
        }
        // Large λ: conservative all-ones (headline draw proves nothing).
        let big = PoissonSampler::new(120.0);
        assert_eq!(big.nonzero_mask(&[0u64; 64]), u64::MAX);
    }

    #[test]
    #[should_panic]
    fn poisson_rejects_negative_lambda() {
        let mut rng = StdRng::seed_from_u64(5);
        poisson(&mut rng, -1.0);
    }

    #[test]
    fn poisson_large_lambda_chunked() {
        let mut rng = StdRng::seed_from_u64(6);
        let lambda = 120.0;
        let n = 20_000;
        let mean = (0..n)
            .map(|_| poisson(&mut rng, lambda) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - lambda).abs() < 0.5, "mean {mean}");
    }
}
