//! The engine facade: one entry point for every reliability query.
//!
//! Everything that evaluates a `(scheme, FIT table, lifetime, parameters)`
//! configuration — the figure binaries, the bench harnesses and the `xedd`
//! daemon — funnels through this module, so there is exactly one hot path
//! behind every consumer (DESIGN.md §15):
//!
//! * [`Query`] is the normalized request: scheme, sample budget, seed,
//!   model parameters, FIT table and an optional `epsilon` early-stop
//!   target. Execution knobs (threads, kernel, streaming block size) ride
//!   in [`Exec`] and are *excluded* from the canonical identity.
//! * [`Query::canonical_key`] derives a 128-bit canonical key over the
//!   canonicalized encoding — sorted FIT rows, canonical scheme tag — so
//!   semantically-equal queries (reordered FIT rows, alternative scheme
//!   spellings) key the same memo-cache slot, and the engine evaluates
//!   the *canonicalized* form, making hash-equal configs bit-identical in
//!   results, not merely cache-compatible.
//! * [`evaluate`] answers a query; [`evaluate_streaming`] additionally
//!   reports a [`Progress`] snapshot after every trial block, each
//!   bit-identical to a batch run of that many samples (the
//!   `merge_from`/`run_range_timed` contract), honoring `epsilon`.
//! * [`Sweep`] is the batch front door the figure binaries use for
//!   multi-scheme sweeps over one work-stealing pool.

use crate::fault::FaultExtent;
use crate::fit::{FitRates, ModeRate, LIFETIME_YEARS};
use crate::montecarlo::{
    MonteCarlo, MonteCarloConfig, RunReport, RunStats, SchemeResult, TrialKernel,
};
use crate::rareevent::{TailConfig, TailEstimate, TailMode, TailSimulator};
use crate::schemes::{CodeModel, ModelParams, Scheme};
use std::fmt;
use xed_telemetry::trace::{self, Phase, SpanCtx, SpanEvent};

/// Trials per streamed partial-confidence block (¼ of the paper-scale
/// second at the measured ~100M samples/sec, and a multiple of both the
/// 64-lane bit-slice blocks and the 4096-trial steal chunks).
pub const DEFAULT_BLOCK: u64 = 1 << 18;

/// Version tag absorbed first into every canonical key. Bump whenever the
/// canonical encoding changes meaning, so stale caches can never alias a
/// new encoding. v2: absorbs `ModelParams::code_model` (the inferred-code
/// uncertainty knob).
const KEY_VERSION: u64 = 2;

/// Execution knobs: how a query runs, never *what* it computes. Excluded
/// from [`Query::canonical_key`] — results are thread-count- and
/// kernel-invariant by the engine's reproducibility contract, and the
/// block size only changes where partials are emitted, not their values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exec {
    /// Worker threads; `0` = all available cores.
    pub threads: usize,
    /// Per-trial evaluation kernel (results bit-identical either way).
    pub kernel: TrialKernel,
    /// Trials per streamed block ([`evaluate_streaming`]).
    pub block: u64,
}

impl Default for Exec {
    fn default() -> Self {
        Self {
            threads: 0,
            kernel: TrialKernel::default(),
            block: DEFAULT_BLOCK,
        }
    }
}

/// What kind of estimate the query asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// Full-lifetime Monte-Carlo failure probability ([`MonteCarlo`]).
    Lifetime,
    /// Importance-sampled rare-event tail estimate ([`TailSimulator`]).
    Tail {
        /// Force a specific conditioning mode (`None` = auto-select).
        force: Option<TailMode>,
    },
}

/// A normalized reliability query: the unit of work the engine evaluates
/// and the `xedd` daemon serves, memoizes and coalesces.
#[derive(Debug, Clone)]
pub struct Query {
    /// The scheme under evaluation.
    pub scheme: Scheme,
    /// Estimate kind (lifetime MC or importance-sampled tail).
    pub kind: QueryKind,
    /// Trial budget.
    pub samples: u64,
    /// Lifetime in years (paper: 7).
    pub years: f64,
    /// Base RNG seed; results are a pure function of
    /// `(seed, scheme, trial)`.
    pub seed: u64,
    /// Early-stop target on the relative 95 % CI width (`ci95 / p_fail`):
    /// streaming evaluation stops at the first block boundary where the
    /// width is at or below this. `None` = run the full budget.
    pub epsilon: Option<f64>,
    /// Fault-response model parameters.
    pub params: ModelParams,
    /// Per-chip FIT rates.
    pub rates: FitRates,
    /// Execution knobs (not part of the canonical identity).
    pub exec: Exec,
}

impl Query {
    /// A lifetime Monte-Carlo query with paper-default parameters.
    pub fn lifetime(scheme: Scheme, samples: u64, seed: u64) -> Self {
        Self {
            scheme,
            kind: QueryKind::Lifetime,
            samples,
            years: LIFETIME_YEARS,
            seed,
            epsilon: None,
            params: ModelParams::default(),
            rates: FitRates::table_i(),
            exec: Exec::default(),
        }
    }

    /// An importance-sampled tail query with paper-default parameters.
    pub fn tail(scheme: Scheme, samples: u64, seed: u64) -> Self {
        Self {
            kind: QueryKind::Tail { force: None },
            ..Self::lifetime(scheme, samples, seed)
        }
    }

    /// Validates the query, returning a human-readable reason when it
    /// cannot be evaluated. The daemon maps this to HTTP 400.
    pub fn validate(&self) -> Result<(), String> {
        if self.samples == 0 {
            return Err("samples must be at least 1".into());
        }
        if !(self.years.is_finite() && self.years > 0.0) {
            return Err(format!(
                "years must be finite and positive, got {}",
                self.years
            ));
        }
        if let Some(eps) = self.epsilon {
            if !(eps.is_finite() && eps > 0.0) {
                return Err(format!("epsilon must be finite and positive, got {eps}"));
            }
        }
        let p = &self.params;
        for (name, v) in [
            ("on_die_miss", p.on_die_miss),
            ("dimm_secded_burst_detect", p.dimm_secded_burst_detect),
            ("scaling.bit_rate", p.scaling.bit_rate),
        ] {
            if !((0.0..=1.0).contains(&v)) {
                return Err(format!("{name} must be in [0, 1], got {v}"));
            }
        }
        if !(self.params.transient_exposure_hours.is_finite()
            && self.params.transient_exposure_hours >= 0.0)
        {
            return Err("transient_exposure_hours must be finite and non-negative".into());
        }
        if let crate::schemes::CodeModel::InferredAmbiguous { unresolved_rows } =
            self.params.code_model
        {
            if unresolved_rows > 8 {
                return Err(format!(
                    "code_model ambiguity must leave at most 8 unresolved rows, got {unresolved_rows}"
                ));
            }
        }
        for row in self.rates.rows() {
            if !(row.transient_fit.is_finite()
                && row.transient_fit >= 0.0
                && row.permanent_fit.is_finite()
                && row.permanent_fit >= 0.0)
            {
                return Err(format!(
                    "FIT rates for {:?} must be finite and non-negative",
                    row.extent
                ));
            }
        }
        if matches!(self.kind, QueryKind::Tail { .. }) && self.epsilon.is_some() {
            return Err("epsilon early-stop applies to lifetime queries only".into());
        }
        Ok(())
    }

    /// The canonicalized form: FIT rows sorted by extent. The engine
    /// always evaluates this form, so two queries with equal
    /// [`Query::canonical_key`]s produce **bit-identical** results — row
    /// order would otherwise leak into the mode-sampling alias-table
    /// layout and change individual draws.
    pub fn canonicalized(&self) -> Query {
        let mut rows: Vec<ModeRate> = self.rates.rows().to_vec();
        rows.sort_by_key(|r| r.extent.index());
        Query {
            rates: FitRates::custom(rows),
            ..self.clone()
        }
    }

    /// Derives the 128-bit canonical key of this query's semantic
    /// identity (DESIGN.md §15): two independently-mixed 64-bit lanes
    /// over the canonical word encoding — version, scheme stream tag,
    /// kind, budget, seed, lifetime, epsilon, model parameters, then the
    /// FIT rows *sorted by extent*. Execution knobs are excluded. The
    /// encoding is length-prefixed and every field has a fixed slot, so
    /// distinct configurations cannot collide by field aliasing.
    ///
    /// Allocation-free and panic-free: this runs on the daemon's
    /// memoized request path, where a repeat query must cost O(1).
    pub fn canonical_key(&self) -> CanonicalKey {
        let mut h = KeyHasher::new();
        h.word(KEY_VERSION);
        h.word(self.scheme.stream_tag());
        match self.kind {
            QueryKind::Lifetime => h.word(0),
            QueryKind::Tail { force } => {
                h.word(1);
                h.word(match force {
                    None => 0,
                    Some(TailMode::CliqueForced) => 1,
                    Some(TailMode::CountConditioned) => 2,
                    Some(TailMode::PlainMc) => 3,
                });
            }
        }
        h.word(self.samples);
        h.f64(self.years);
        h.word(self.seed);
        match self.epsilon {
            None => h.word(0),
            Some(eps) => {
                h.word(1);
                h.f64(eps);
            }
        }
        let p = &self.params;
        h.word(u64::from(p.on_die_ecc));
        h.f64(p.on_die_miss);
        h.f64(p.dimm_secded_burst_detect);
        h.f64(p.scaling.bit_rate);
        h.word(u64::from(p.scaling.word_bits));
        h.word(u64::from(p.require_line_intersection));
        h.f64(p.transient_exposure_hours);
        let (code_tag, code_arg) = p.code_model.key_tag();
        h.word(code_tag);
        h.word(code_arg);

        // FIT rows sorted by extent index, via an in-place insertion sort
        // over a fixed-size buffer: extents are unique (asserted by
        // `FitRates::custom`), so a table has at most one row per
        // `FaultExtent` variant — six.
        let rows = self.rates.rows();
        let mut sorted = [ModeRate {
            extent: FaultExtent::Bit,
            transient_fit: 0.0,
            permanent_fit: 0.0,
        }; 6];
        let mut n = 0usize;
        for &row in rows {
            if n == sorted.len() {
                break; // unreachable: at most one row per extent
            }
            let mut i = n;
            // indexing: i ≤ n < sorted.len() on entry and only decreases.
            while i > 0 && sorted[i - 1].extent.index() > row.extent.index() {
                sorted[i] = sorted[i - 1];
                i -= 1;
            }
            // indexing: i ≤ n < sorted.len(), as above.
            sorted[i] = row;
            n += 1;
        }
        h.word(rows.len() as u64);
        // indexing: n counts rows written above, so n ≤ sorted.len().
        for row in &sorted[..n] {
            h.word(row.extent.index() as u64);
            h.f64(row.transient_fit);
            h.f64(row.permanent_fit);
        }
        h.finish()
    }

    /// The Monte-Carlo configuration this (canonicalized) query maps to.
    fn mc_config(&self) -> MonteCarloConfig {
        MonteCarloConfig {
            samples: self.samples,
            years: self.years,
            seed: self.seed,
            threads: self.exec.threads,
            params: self.params,
            rates: self.rates.clone(),
            kernel: self.exec.kernel,
        }
    }
}

/// The 128-bit canonical identity of a [`Query`]: equal for
/// semantically-equal configurations, collision-resistant across distinct
/// ones (two independently-keyed 64-bit mixes must collide
/// simultaneously). This is the `xedd` memo-cache and coalescing key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CanonicalKey {
    /// First hash lane.
    pub hi: u64,
    /// Second, independently-keyed hash lane.
    pub lo: u64,
}

impl CanonicalKey {
    /// Maps the key onto one of `shards` cache shards (uniform in `hi`).
    pub fn shard(&self, shards: usize) -> usize {
        debug_assert!(shards > 0);
        (self.hi % shards.max(1) as u64) as usize
    }
}

impl fmt::Display for CanonicalKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

/// SplitMix64 finalizer: a full-avalanche 64-bit mix.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Two independently-keyed absorb-mix lanes over a word stream.
#[derive(Debug)]
struct KeyHasher {
    a: u64,
    b: u64,
}

impl KeyHasher {
    fn new() -> Self {
        // Distinct arbitrary offsets (π digits) so the lanes never start
        // aligned.
        Self {
            a: 0x243F_6A88_85A3_08D3,
            b: 0x1319_8A2E_0370_7344,
        }
    }

    /// Absorbs one canonical word into both lanes.
    fn word(&mut self, w: u64) {
        self.a = mix64(self.a ^ w).wrapping_add(0x9E37_79B9_7F4A_7C15);
        self.b = mix64(self.b.rotate_left(23) ^ w ^ 0x5851_F42D_4C95_7F2D);
    }

    /// Absorbs an IEEE-754 double by bit pattern, with `-0.0` normalized
    /// to `+0.0` (the two compare equal and sample identically).
    fn f64(&mut self, x: f64) {
        let mut bits = x.to_bits();
        if bits == 0x8000_0000_0000_0000 {
            bits = 0;
        }
        self.word(bits);
    }

    fn finish(&self) -> CanonicalKey {
        CanonicalKey {
            hi: mix64(self.a),
            lo: mix64(self.b),
        }
    }
}

/// A completed estimate: what [`evaluate`] returns and the `xedd` memo
/// cache stores.
#[derive(Debug, Clone, PartialEq)]
pub enum Estimate {
    /// Full-lifetime Monte-Carlo outcome.
    Lifetime(RunReport),
    /// Importance-sampled tail outcome.
    Tail(Box<TailEstimate>),
}

impl Estimate {
    /// The evaluated scheme.
    pub fn scheme(&self) -> Scheme {
        match self {
            Estimate::Lifetime(r) => r.result.scheme,
            Estimate::Tail(t) => t.scheme,
        }
    }

    /// Trials the estimate is based on.
    pub fn samples(&self) -> u64 {
        match self {
            Estimate::Lifetime(r) => r.result.samples,
            Estimate::Tail(t) => t.samples,
        }
    }

    /// Estimated lifetime failure probability (DUE + SDC).
    pub fn p_fail(&self) -> f64 {
        match self {
            Estimate::Lifetime(r) => r.result.lifetime_failure_probability(),
            Estimate::Tail(t) => t.p_fail,
        }
    }

    /// Estimated lifetime detected-uncorrectable probability.
    pub fn p_due(&self) -> f64 {
        match self {
            Estimate::Lifetime(r) => r.result.due as f64 / r.result.samples as f64,
            Estimate::Tail(t) => t.p_due,
        }
    }

    /// Estimated lifetime silent-corruption probability.
    pub fn p_sdc(&self) -> f64 {
        match self {
            Estimate::Lifetime(r) => r.result.sdc as f64 / r.result.samples as f64,
            Estimate::Tail(t) => t.p_sdc,
        }
    }

    /// Two-sided 95 % confidence half-width on [`Self::p_fail`].
    pub fn ci95(&self) -> f64 {
        match self {
            Estimate::Lifetime(r) => r.result.confidence95(),
            Estimate::Tail(t) => t.ci95(),
        }
    }

    /// Two-sided 99 % confidence half-width on [`Self::p_fail`].
    pub fn ci99(&self) -> f64 {
        match self {
            Estimate::Lifetime(r) => r.result.confidence99(),
            Estimate::Tail(t) => t.ci99(),
        }
    }

    /// Relative precision `ci95 / p_fail` (∞ when no failure was seen).
    pub fn relative_ci95(&self) -> f64 {
        let p = self.p_fail();
        if p > 0.0 {
            self.ci95() / p
        } else {
            f64::INFINITY
        }
    }

    /// Wall-clock seconds the evaluation took (metadata).
    pub fn wall_seconds(&self) -> f64 {
        match self {
            Estimate::Lifetime(r) => r.stats.wall_seconds,
            Estimate::Tail(t) => t.wall_seconds,
        }
    }
}

/// One streamed partial-confidence snapshot: the estimate after
/// `trials_done` of `total` budgeted trials. Every snapshot is
/// **bit-identical** to what a batch run of exactly `trials_done` samples
/// would report — trial randomness is keyed `(seed, scheme, trial)`, so
/// the block partition cannot leak into any partial.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Progress {
    /// Trials accumulated so far.
    pub trials_done: u64,
    /// The query's full trial budget.
    pub total: u64,
    /// Failure-probability estimate over the accumulated trials.
    pub p_fail: f64,
    /// 95 % confidence half-width at this point.
    pub ci95: f64,
    /// 99 % confidence half-width at this point.
    pub ci99: f64,
    /// Relative precision `ci95 / p_fail` (∞ when no failure yet).
    pub relative_ci95: f64,
}

impl Progress {
    fn from_result(result: &SchemeResult, total: u64) -> Self {
        let p = result.lifetime_failure_probability();
        let ci95 = result.confidence95();
        Progress {
            trials_done: result.samples,
            total,
            p_fail: p,
            ci95,
            ci99: result.confidence99(),
            relative_ci95: if p > 0.0 { ci95 / p } else { f64::INFINITY },
        }
    }
}

/// Evaluates a query to completion (honoring `epsilon` early stop) and
/// returns the estimate. See [`evaluate_streaming`] for the same
/// computation with per-block progress callbacks.
pub fn evaluate(query: &Query) -> Result<Estimate, String> {
    evaluate_streaming(query, |_| {})
}

/// Evaluates a query, invoking `sink` with a [`Progress`] snapshot after
/// every completed trial block (tail queries report a single final
/// snapshot). Stops early at the first block boundary where the relative
/// 95 % CI width meets the query's `epsilon`, if one is set.
///
/// The returned estimate — and every intermediate snapshot — is a pure
/// function of the canonicalized query (thread count, kernel and block
/// size never change values), which is the daemon's bit-reproducibility
/// guarantee for streamed responses.
pub fn evaluate_streaming(
    query: &Query,
    mut sink: impl FnMut(&Progress),
) -> Result<Estimate, String> {
    let Some(caller) = trace::current() else {
        return evaluate_streaming_inner(query, &mut sink);
    };
    // Traced request: run under an Evaluate span so the scheduler-chunk
    // spans the workers record nest beneath it, not the caller's span.
    let span_id = trace::next_span_id();
    trace::set_current(Some(SpanCtx {
        trace_id: caller.trace_id,
        span_id,
    }));
    let t_start = trace::now_ns();
    let result = evaluate_streaming_inner(query, &mut sink);
    trace::set_current(Some(caller));
    trace::record_span(SpanEvent {
        trace_id: caller.trace_id,
        span_id,
        parent: caller.span_id,
        phase: Phase::Evaluate,
        a: u64::from(result.is_err()),
        t_start,
        t_end: trace::now_ns(),
    });
    result
}

fn evaluate_streaming_inner(
    query: &Query,
    sink: &mut impl FnMut(&Progress),
) -> Result<Estimate, String> {
    query.validate()?;
    let q = query.canonicalized();
    match q.kind {
        QueryKind::Tail { force } => {
            let sim = TailSimulator::new(TailConfig {
                samples: q.samples,
                years: q.years,
                seed: q.seed,
                threads: q.exec.threads,
                params: q.params,
                rates: q.rates.clone(),
                force_mode: force,
            });
            let est = sim.run(q.scheme);
            sink(&Progress {
                trials_done: est.samples,
                total: q.samples,
                p_fail: est.p_fail,
                ci95: est.ci95(),
                ci99: est.ci99(),
                relative_ci95: est.relative_ci95(),
            });
            Ok(Estimate::Tail(Box::new(est)))
        }
        QueryKind::Lifetime => {
            let mc = MonteCarlo::new(q.mc_config());
            let block = q.exec.block.max(1);
            let mut acc: Option<(SchemeResult, RunStats)> = None;
            let mut done = 0u64;
            while done < q.samples {
                let n = block.min(q.samples - done);
                let report = mc.run_range_timed(q.scheme, done, n);
                done += n;
                let (result, stats) = match acc.take() {
                    Some((mut result, stats)) => {
                        result.merge_from(&report.result);
                        (result, stats.merge(&report.stats))
                    }
                    None => (report.result, report.stats),
                };
                let progress = Progress::from_result(&result, q.samples);
                acc = Some((result, stats));
                sink(&progress);
                if let Some(eps) = q.epsilon {
                    if progress.relative_ci95 <= eps {
                        break;
                    }
                }
            }
            // invariant: samples ≥ 1 (validated), so the loop ran at
            // least once and acc is populated.
            let (result, stats) = acc.expect("at least one trial block");
            Ok(Estimate::Lifetime(RunReport { result, stats }))
        }
    }
}

/// Batch front door for multi-scheme sweeps: what the figure and bench
/// binaries use instead of hand-rolling [`MonteCarloConfig`]s. All
/// schemes share one work-stealing pool, and each per-scheme result is
/// bit-identical to evaluating that scheme's [`Sweep::query`] alone.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Trials per scheme.
    pub samples: u64,
    /// Base RNG seed.
    pub seed: u64,
    /// Lifetime in years.
    pub years: f64,
    /// Worker threads; `0` = all available cores.
    pub threads: usize,
    /// Per-trial evaluation kernel.
    pub kernel: TrialKernel,
    /// Fault-response model parameters.
    pub params: ModelParams,
    /// Per-chip FIT rates.
    pub rates: FitRates,
}

impl Sweep {
    /// A paper-default sweep: Table I rates, 7-year lifetime, all cores.
    pub fn new(samples: u64, seed: u64) -> Self {
        Self {
            samples,
            seed,
            years: LIFETIME_YEARS,
            threads: 0,
            kernel: TrialKernel::default(),
            params: ModelParams::default(),
            rates: FitRates::table_i(),
        }
    }

    /// Replaces the model parameters (ablation studies).
    #[must_use]
    pub fn with_params(mut self, params: ModelParams) -> Self {
        self.params = params;
        self
    }

    /// Replaces the FIT table (scaling studies).
    #[must_use]
    pub fn with_rates(mut self, rates: FitRates) -> Self {
        self.rates = rates;
        self
    }

    /// Sets the lifetime in years.
    #[must_use]
    pub fn with_years(mut self, years: f64) -> Self {
        self.years = years;
        self
    }

    /// Sets the worker thread count (`0` = all cores).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the per-trial kernel.
    #[must_use]
    pub fn with_kernel(mut self, kernel: TrialKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// The [`MonteCarloConfig`] this sweep maps to.
    pub fn config(&self) -> MonteCarloConfig {
        MonteCarloConfig {
            samples: self.samples,
            years: self.years,
            seed: self.seed,
            threads: self.threads,
            params: self.params,
            rates: self.rates.clone(),
            kernel: self.kernel,
        }
    }

    /// The simulator for this sweep.
    pub fn monte_carlo(&self) -> MonteCarlo {
        MonteCarlo::new(self.config())
    }

    /// Runs every scheme over one shared work-stealing pool.
    pub fn run_all(&self, schemes: &[Scheme]) -> (Vec<SchemeResult>, RunStats) {
        self.monte_carlo().run_all_timed(schemes)
    }

    /// Runs one scheme.
    pub fn run_one(&self, scheme: Scheme) -> RunReport {
        self.monte_carlo().run_timed(scheme)
    }

    /// The [`Query`] equivalent of running `scheme` under this sweep —
    /// the daemon-side identity of the same computation.
    pub fn query(&self, scheme: Scheme) -> Query {
        Query {
            scheme,
            kind: QueryKind::Lifetime,
            samples: self.samples,
            years: self.years,
            seed: self.seed,
            epsilon: None,
            params: self.params,
            rates: self.rates.clone(),
            exec: Exec {
                threads: self.threads,
                kernel: self.kernel,
                block: DEFAULT_BLOCK,
            },
        }
    }
}

/// One point of the inferred-code scenario family: a scheme's lifetime
/// estimate under one controller knowledge state.
#[derive(Debug, Clone)]
pub struct CodeModelPoint {
    /// The knowledge state this point was evaluated under.
    pub code_model: CodeModel,
    /// The lifetime Monte-Carlo outcome.
    pub report: RunReport,
}

/// The inferred-code scenario family (ROADMAP item 2): evaluates one
/// scheme's lifetime estimate under each controller knowledge state in
/// `models`, holding every other knob of `sweep` fixed, so the cost of
/// *not* knowing the vendor's on-die code can be read off directly.
///
/// Two structural guarantees the differential tests pin down:
///
/// * the [`CodeModel::Known`] and [`CodeModel::InferredExact`] points are
///   **bit-identical** — exact BEER recovery is free;
/// * failure probability is monotonically non-decreasing in the number
///   of unresolved check rows (more ambiguity can only hurt).
pub fn code_model_family(
    sweep: &Sweep,
    scheme: Scheme,
    models: &[CodeModel],
) -> Vec<CodeModelPoint> {
    models
        .iter()
        .map(|&code_model| {
            let params = ModelParams {
                code_model,
                ..sweep.params
            };
            CodeModelPoint {
                code_model,
                report: sweep.clone().with_params(params).run_one(scheme),
            }
        })
        .collect()
}

/// The canonical ladder of knowledge states the scenario pack compares:
/// known → inferred-exact → increasingly pattern-starved campaigns.
pub fn code_model_ladder() -> Vec<CodeModel> {
    vec![
        CodeModel::Known,
        CodeModel::InferredExact,
        CodeModel::InferredAmbiguous { unresolved_rows: 1 },
        CodeModel::InferredAmbiguous { unresolved_rows: 2 },
        CodeModel::InferredAmbiguous { unresolved_rows: 4 },
        CodeModel::InferredAmbiguous { unresolved_rows: 8 },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fit::ModeRate;

    fn reversed_table_i() -> FitRates {
        let mut rows: Vec<ModeRate> = FitRates::table_i().rows().to_vec();
        rows.reverse();
        FitRates::custom(rows)
    }

    #[test]
    fn reordered_fit_rows_hash_equal_and_evaluate_bit_identical() {
        let a = Query::lifetime(Scheme::Xed, 20_000, 7);
        let mut b = a.clone();
        b.rates = reversed_table_i();
        assert_eq!(a.canonical_key(), b.canonical_key());
        let ea = evaluate(&a).expect("valid query");
        let eb = evaluate(&b).expect("valid query");
        match (ea, eb) {
            (Estimate::Lifetime(ra), Estimate::Lifetime(rb)) => {
                assert_eq!(
                    ra.result, rb.result,
                    "hash-equal queries must be result-identical"
                );
            }
            _ => panic!("lifetime queries returned tail estimates"),
        }
    }

    #[test]
    fn scheme_spellings_parse_to_the_same_scheme() {
        for (a, b) in [
            ("XED", "xed"),
            ("ecc-dimm", "ECC_DIMM"),
            ("secded", "eccdimm"),
            ("single-chipkill", "chipkill-x4"),
            ("Double Chipkill", "double-chipkill"),
        ] {
            assert_eq!(Scheme::parse(a), Scheme::parse(b), "{a} vs {b}");
            assert!(Scheme::parse(a).is_some(), "{a} must parse");
        }
        for scheme in Scheme::ALL {
            assert_eq!(Scheme::parse(scheme.id()), Some(scheme));
        }
    }

    #[test]
    fn execution_knobs_do_not_change_the_key() {
        let a = Query::lifetime(Scheme::Xed, 20_000, 7);
        let mut b = a.clone();
        b.exec = Exec {
            threads: 3,
            kernel: TrialKernel::Scalar,
            block: 1024,
        };
        assert_eq!(a.canonical_key(), b.canonical_key());
    }

    #[test]
    fn semantic_fields_all_feed_the_key() {
        let base = Query::lifetime(Scheme::Xed, 20_000, 7);
        let key = base.canonical_key();
        let mut variants = Vec::new();
        let mut q = base.clone();
        q.scheme = Scheme::EccDimm;
        variants.push(q);
        let mut q = base.clone();
        q.kind = QueryKind::Tail { force: None };
        variants.push(q);
        let mut q = base.clone();
        q.kind = QueryKind::Tail {
            force: Some(TailMode::CountConditioned),
        };
        variants.push(q);
        let mut q = base.clone();
        q.samples += 1;
        variants.push(q);
        let mut q = base.clone();
        q.years = 5.0;
        variants.push(q);
        let mut q = base.clone();
        q.seed += 1;
        variants.push(q);
        let mut q = base.clone();
        q.epsilon = Some(0.05);
        variants.push(q);
        let mut q = base.clone();
        q.params.on_die_ecc = false;
        variants.push(q);
        let mut q = base.clone();
        q.params.on_die_miss = 0.009;
        variants.push(q);
        let mut q = base.clone();
        q.params.scaling = crate::scaling::ScalingFaults::paper_default();
        variants.push(q);
        let mut q = base.clone();
        let mut rows: Vec<ModeRate> = q.rates.rows().to_vec();
        rows[0].transient_fit += 0.1;
        q.rates = FitRates::custom(rows);
        variants.push(q);
        let mut q = base.clone();
        q.params.code_model = CodeModel::InferredExact;
        variants.push(q);
        let mut q = base.clone();
        q.params.code_model = CodeModel::InferredAmbiguous { unresolved_rows: 2 };
        variants.push(q);
        let mut q = base.clone();
        q.params.code_model = CodeModel::InferredAmbiguous { unresolved_rows: 3 };
        variants.push(q);
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(v.canonical_key(), key, "variant {i} must change the key");
        }
        // Distinct ambiguity depths must also key apart from each other.
        assert_ne!(
            variants[variants.len() - 2].canonical_key(),
            variants[variants.len() - 1].canonical_key()
        );
    }

    #[test]
    fn code_model_validation_rejects_impossible_ambiguity() {
        let mut q = Query::lifetime(Scheme::Xed, 1_000, 7);
        q.params.code_model = CodeModel::InferredAmbiguous { unresolved_rows: 9 };
        assert!(q.validate().is_err());
        q.params.code_model = CodeModel::InferredAmbiguous { unresolved_rows: 8 };
        assert!(q.validate().is_ok());
    }

    #[test]
    fn code_model_family_known_and_inferred_exact_are_bit_identical() {
        let sweep = Sweep::new(20_000, 7);
        let points = code_model_family(
            &sweep,
            Scheme::Xed,
            &[CodeModel::Known, CodeModel::InferredExact],
        );
        assert_eq!(points.len(), 2);
        assert_eq!(
            points[0].report.result, points[1].report.result,
            "exact inference must cost nothing"
        );
    }

    #[test]
    fn code_model_family_failures_grow_with_ambiguity() {
        // More unresolved rows ⇒ higher effective miss ⇒ weakly more
        // failures at fixed seed (the miss threshold only moves one way
        // against the same uniform draws).
        let sweep = Sweep::new(50_000, 7);
        let points = code_model_family(&sweep, Scheme::Xed, &code_model_ladder());
        assert_eq!(points.len(), code_model_ladder().len());
        let fails: Vec<u64> = points.iter().map(|p| p.report.result.failures()).collect();
        assert_eq!(fails[0], fails[1], "known vs inferred-exact");
        assert!(
            fails.windows(2).all(|w| w[0] <= w[1]),
            "failures must be monotone in ambiguity: {fails:?}"
        );
        assert!(
            fails[fails.len() - 1] > fails[0],
            "full ambiguity must visibly hurt XED: {fails:?}"
        );
    }

    #[test]
    fn seeded_sweep_of_distinct_queries_is_collision_free() {
        // Canonical keys over a broad seeded sweep of distinct
        // configurations: all distinct (128-bit keys, two independent
        // lanes — a collision here is a bug, not bad luck).
        let mut keys = std::collections::HashSet::new();
        let mut count = 0usize;
        for scheme in Scheme::ALL {
            for samples in [1_000u64, 10_000, 100_000] {
                for seed in 0..12u64 {
                    for eps in [None, Some(0.1), Some(0.05)] {
                        let mut q = Query::lifetime(scheme, samples, seed);
                        q.epsilon = eps;
                        keys.insert(q.canonical_key());
                        count += 1;
                    }
                }
            }
        }
        assert_eq!(keys.len(), count, "canonical-key collision in sweep");
    }

    #[test]
    fn negative_zero_hashes_like_positive_zero() {
        let a = Query::lifetime(Scheme::Xed, 1_000, 7);
        let mut b = a.clone();
        b.params.transient_exposure_hours = -0.0;
        assert_eq!(a.canonical_key(), b.canonical_key());
    }

    #[test]
    fn streamed_partials_are_bit_identical_to_batch_runs() {
        // Every emitted snapshot must equal a batch run of exactly that
        // many samples — the xedd streaming contract. Block size chosen
        // unaligned to both lanes (64) and steal chunks (4096).
        let mut q = Query::lifetime(Scheme::EccDimm, 10_000, 7);
        q.exec.block = 3_000;
        let mut snapshots = Vec::new();
        let est = evaluate_streaming(&q, |p| snapshots.push(*p)).expect("valid query");
        assert_eq!(snapshots.len(), 4, "10k trials in 3k blocks");
        for p in &snapshots {
            let batch = Query::lifetime(Scheme::EccDimm, p.trials_done, 7);
            let expect = evaluate(&batch).expect("valid query");
            assert_eq!(p.p_fail, expect.p_fail(), "at {} trials", p.trials_done);
            assert_eq!(p.ci95, expect.ci95(), "at {} trials", p.trials_done);
            assert_eq!(p.ci99, expect.ci99(), "at {} trials", p.trials_done);
        }
        match est {
            Estimate::Lifetime(report) => assert_eq!(report.result.samples, 10_000),
            Estimate::Tail(_) => panic!("lifetime query returned a tail estimate"),
        }
    }

    #[test]
    fn epsilon_stops_early_and_matches_the_prefix_run() {
        // A loose epsilon stops at the first block; the result must be
        // bit-identical to a batch run of exactly one block.
        let mut q = Query::lifetime(Scheme::EccDimm, 1_000_000, 7);
        q.exec.block = 10_000;
        q.epsilon = Some(0.5);
        let est = evaluate(&q).expect("valid query");
        assert_eq!(est.samples(), 10_000, "loose epsilon stops after one block");
        let prefix = evaluate(&Query::lifetime(Scheme::EccDimm, 10_000, 7)).expect("valid query");
        assert_eq!(est.p_fail(), prefix.p_fail());
        assert!(est.relative_ci95() <= 0.5);
    }

    #[test]
    fn evaluate_matches_direct_monte_carlo() {
        let q = Query::lifetime(Scheme::Xed, 20_000, 7);
        let direct = MonteCarlo::new(q.mc_config()).run(Scheme::Xed);
        match evaluate(&q).expect("valid query") {
            Estimate::Lifetime(report) => assert_eq!(report.result, direct),
            Estimate::Tail(_) => panic!("lifetime query returned a tail estimate"),
        }
    }

    #[test]
    fn evaluate_matches_tail_simulator() {
        let q = Query::tail(Scheme::XedChipkill, 20_000, 7);
        let direct = TailSimulator::new(TailConfig {
            samples: 20_000,
            seed: 7,
            ..TailConfig::default()
        })
        .run(Scheme::XedChipkill);
        match evaluate(&q).expect("valid query") {
            Estimate::Tail(est) => {
                // Wall time is nondeterministic metadata; everything else
                // must match bit for bit.
                let mut est = *est;
                est.wall_seconds = direct.wall_seconds;
                assert_eq!(est, direct);
            }
            Estimate::Lifetime(_) => panic!("tail query returned a lifetime estimate"),
        }
    }

    #[test]
    fn sweep_results_match_per_scheme_queries() {
        let sweep = Sweep::new(20_000, 7);
        let (results, _) = sweep.run_all(&[Scheme::EccDimm, Scheme::Xed]);
        for result in &results {
            match evaluate(&sweep.query(result.scheme)).expect("valid query") {
                Estimate::Lifetime(report) => assert_eq!(&report.result, result),
                Estimate::Tail(_) => panic!("lifetime query returned a tail estimate"),
            }
        }
    }

    #[test]
    fn invalid_queries_are_rejected() {
        let mut q = Query::lifetime(Scheme::Xed, 0, 7);
        assert!(q.validate().is_err(), "zero samples");
        q.samples = 1;
        q.years = f64::NAN;
        assert!(q.validate().is_err(), "NaN years");
        q.years = 7.0;
        q.epsilon = Some(0.0);
        assert!(q.validate().is_err(), "zero epsilon");
        q.epsilon = None;
        q.params.on_die_miss = 1.5;
        assert!(q.validate().is_err(), "miss probability above 1");
        q.params.on_die_miss = 0.008;
        assert!(q.validate().is_ok());
    }
}
