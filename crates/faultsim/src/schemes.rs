//! The memory-protection schemes the paper compares, and their
//! fault-response models.
//!
//! Each scheme is evaluated FaultSim-style: after every fault arrival the
//! scheme decides whether the system *corrected* the error, suffered a
//! *detected uncorrectable error* (DUE), or suffered *silent data
//! corruption* (SDC). The decision depends on how many distinct chips in
//! the scheme's protection domain hold concurrent faults that intersect a
//! common cache line.
//!
//! | Scheme | Devices | Domain | Tolerates |
//! |---|---|---|---|
//! | `NonEcc` | x8, 8/rank | rank | nothing beyond on-die ECC |
//! | `EccDimm` | x8, 9/rank | rank | 1 bit per 72-bit beat |
//! | `Xed` | x8, 9/rank | rank | 1 chip (erasure via catch-word + parity) |
//! | `Chipkill` | x8, 2 ranks ganged | channel (18 chips) | 1 chip (SSC-DSD) |
//! | `ChipkillX4` | x4, 18/rank | rank | 1 chip (SSC-DSD) |
//! | `XedChipkill` | x4, 18/rank | rank | 2 chips (erasures) |
//! | `DoubleChipkill` | x4, 2 ranks ganged | channel (36 chips) | 2 chips |

use crate::event::FaultEvent;
use crate::fault::{FaultExtent, FaultRange, Persistence};
use crate::scaling::ScalingFaults;
use crate::system::SystemConfig;
use rand::Rng;
use std::fmt;

/// Identifies one of the evaluated protection schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// 8-chip non-ECC DIMM (Figure 1 baseline).
    NonEcc,
    /// 9-chip ECC-DIMM running conventional (72,64) SECDED.
    EccDimm,
    /// XED: 9-chip ECC-DIMM with RAID-3 parity + exposed on-die detection.
    Xed,
    /// Commercial chipkill on x8 parts: two 9-chip ranks ganged (18 chips).
    Chipkill,
    /// Single-Chipkill on x4 parts: one 18-chip rank (Section IX baseline).
    ChipkillX4,
    /// XED on top of single-chipkill hardware: 18 x4 chips, check symbols
    /// used as erasures (Double-Chipkill-level reliability, Section IX-A).
    XedChipkill,
    /// Double-Chipkill: 36 x4 chips across two ganged ranks.
    DoubleChipkill,
}

impl Scheme {
    /// Every scheme, in presentation order.
    pub const ALL: [Scheme; 7] = [
        Scheme::NonEcc,
        Scheme::EccDimm,
        Scheme::Xed,
        Scheme::Chipkill,
        Scheme::ChipkillX4,
        Scheme::XedChipkill,
        Scheme::DoubleChipkill,
    ];

    /// The physical system organization this scheme runs on.
    pub fn system_config(self) -> SystemConfig {
        match self {
            Scheme::NonEcc => SystemConfig::x8_non_ecc(),
            Scheme::EccDimm | Scheme::Xed | Scheme::Chipkill => SystemConfig::x8_ecc_dimm(),
            Scheme::ChipkillX4 | Scheme::XedChipkill | Scheme::DoubleChipkill => {
                SystemConfig::x4_chipkill()
            }
        }
    }

    /// Number of chips that share an ECC codeword (the protection domain).
    pub fn domain_chips(self) -> u32 {
        match self {
            Scheme::NonEcc => 8,
            Scheme::EccDimm | Scheme::Xed => 9,
            Scheme::Chipkill | Scheme::ChipkillX4 | Scheme::XedChipkill => 18,
            Scheme::DoubleChipkill => 36,
        }
    }

    /// `true` if the protection domain spans both ranks of a channel
    /// (rank-ganged schemes).
    pub fn domain_is_channel(self) -> bool {
        matches!(self, Scheme::Chipkill | Scheme::DoubleChipkill)
    }

    /// Stable nonzero tag mixed into Monte-Carlo RNG stream keys, so trial
    /// `i` of one scheme draws randomness independent of trial `i` of every
    /// other scheme (the per-trial stream is keyed by `(seed, scheme,
    /// trial)`; see `montecarlo`).
    ///
    /// The values are part of the reproducibility contract: changing them
    /// changes every seeded simulation result.
    pub const fn stream_tag(self) -> u64 {
        match self {
            Scheme::NonEcc => 1,
            Scheme::EccDimm => 2,
            Scheme::Xed => 3,
            Scheme::Chipkill => 4,
            Scheme::ChipkillX4 => 5,
            Scheme::XedChipkill => 6,
            Scheme::DoubleChipkill => 7,
        }
    }

    /// Short stable identifier used in URLs, JSON payloads and CLI flags.
    ///
    /// [`Scheme::parse`] accepts these (and common alternative spellings)
    /// case- and punctuation-insensitively.
    pub const fn id(self) -> &'static str {
        match self {
            Scheme::NonEcc => "non-ecc",
            Scheme::EccDimm => "ecc-dimm",
            Scheme::Xed => "xed",
            Scheme::Chipkill => "chipkill",
            Scheme::ChipkillX4 => "chipkill-x4",
            Scheme::XedChipkill => "xed-chipkill",
            Scheme::DoubleChipkill => "double-chipkill",
        }
    }

    /// Parses a scheme name, tolerating case, `-`/`_`/space punctuation
    /// and the common alternative spellings (`secded`, `single-chipkill`,
    /// …). Every spelling of one scheme canonicalizes to the same variant,
    /// so semantically-equal queries hash to the same canonical key no
    /// matter how the scheme was written.
    pub fn parse(name: &str) -> Option<Scheme> {
        let mut key = String::with_capacity(name.len());
        for c in name.chars() {
            if c.is_ascii_alphanumeric() {
                key.push(c.to_ascii_lowercase());
            }
        }
        match key.as_str() {
            "nonecc" | "noecc" | "none" => Some(Scheme::NonEcc),
            "eccdimm" | "ecc" | "secded" => Some(Scheme::EccDimm),
            "xed" => Some(Scheme::Xed),
            "chipkill" | "chipkillx8" => Some(Scheme::Chipkill),
            "chipkillx4" | "singlechipkill" => Some(Scheme::ChipkillX4),
            "xedchipkill" | "xedsinglechipkill" => Some(Scheme::XedChipkill),
            "doublechipkill" | "dck" => Some(Scheme::DoubleChipkill),
            _ => None,
        }
    }

    /// Human-readable name used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Scheme::NonEcc => "Non-ECC DIMM (8 chips)",
            Scheme::EccDimm => "ECC-DIMM SECDED (9 chips)",
            Scheme::Xed => "XED (9 chips)",
            Scheme::Chipkill => "Chipkill (18 chips, x8 ganged)",
            Scheme::ChipkillX4 => "Single-Chipkill (18 chips, x4)",
            Scheme::XedChipkill => "XED + Single-Chipkill (18 chips, x4)",
            Scheme::DoubleChipkill => "Double-Chipkill (36 chips, x4)",
        }
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// What happened to the system when a fault arrived.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// The fault is invisible outside the chip (on-die ECC absorbs it).
    Benign,
    /// The scheme detected and corrected the error.
    Corrected,
    /// Detected uncorrectable error — system failure.
    Due,
    /// Undetected or mis-corrected error — silent system failure.
    Sdc,
}

impl Verdict {
    /// `true` if the verdict terminates the system (DUE or SDC).
    pub fn is_failure(self) -> bool {
        matches!(self, Verdict::Due | Verdict::Sdc)
    }
}

/// How much the memory controller knows about the *on-die* ECC function.
///
/// XED's baseline (and this repo's default) assumes the vendor's (72,64)
/// code is disclosed. Real on-die ECC is proprietary; `xed_ecc::infer`
/// implements BEER-style recovery of the parity-check matrix from
/// retention-test probes, which either succeeds bit-exactly (up to the
/// unobservable check-column relabeling) or certifies an ambiguity
/// class. This knob propagates that epistemic state into the fault-model
/// scenarios so lifetime/tail estimates can be compared across it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodeModel {
    /// The vendor disclosed the code — the paper's assumption.
    Known,
    /// Inference recovered the full matrix (certified bit-exact against
    /// ground truth). Indistinguishable from [`CodeModel::Known`] by
    /// construction: an exactly recovered code predicts the same
    /// detect/miss behavior, so results are bit-identical.
    InferredExact,
    /// Inference was pattern-starved: `unresolved_rows` of the 8 check
    /// rows could not be distinguished. The controller must treat any
    /// syndrome confined to the unresolved subspace as potentially
    /// aliasing, inflating the effective on-die miss probability.
    InferredAmbiguous {
        /// Check rows (of 8) the probe campaign failed to resolve.
        unresolved_rows: u8,
    },
}

impl CodeModel {
    /// Stable discriminant for canonical-key hashing.
    pub(crate) fn key_tag(self) -> (u64, u64) {
        match self {
            CodeModel::Known => (0, 0),
            CodeModel::InferredExact => (1, 0),
            CodeModel::InferredAmbiguous { unresolved_rows } => (2, u64::from(unresolved_rows)),
        }
    }

    /// The on-die miss probability under this knowledge state, given the
    /// known-code baseline `base`.
    ///
    /// With `u` unresolved check rows, the controller can only evaluate
    /// syndromes in the resolved `(8-u)`-dimensional quotient: each of
    /// the `2^u − 1` nonzero unresolved-subspace cosets may collapse a
    /// detectable syndrome onto one of the 73 correctable signatures
    /// (72 single-bit columns + zero), so the escape mass grows as
    /// `(2^u − 1) · 73/256` on top of the code's intrinsic miss:
    /// `effective = base + (1 − base) · min(1, (2^u − 1) · 73/256)`.
    /// `u = 0` (and both fully-known states) return `base` unchanged.
    pub fn effective_on_die_miss(self, base: f64) -> f64 {
        match self {
            CodeModel::Known | CodeModel::InferredExact => base,
            CodeModel::InferredAmbiguous { unresolved_rows } => {
                let cosets = (1u64 << u32::from(unresolved_rows).min(63)) - 1;
                let escape = (cosets as f64 * 73.0 / 256.0).min(1.0);
                base + (1.0 - base) * escape
            }
        }
    }
}

impl fmt::Display for CodeModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodeModel::Known => f.write_str("known"),
            CodeModel::InferredExact => f.write_str("inferred"),
            CodeModel::InferredAmbiguous { unresolved_rows } => {
                write!(f, "ambiguous:{unresolved_rows}")
            }
        }
    }
}

/// Tunable response-model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelParams {
    /// Whether devices have on-die ECC (paper default: yes).
    pub on_die_ecc: bool,
    /// Probability that the on-die SECDED fails to flag a multi-bit error
    /// (paper Section VI: 0.8%).
    pub on_die_miss: f64,
    /// Probability that the DIMM-level SECDED *detects* (rather than
    /// silently mis-corrects) the 8-bit burst a faulty chip injects into a
    /// 72-bit beat. Measured from this repo's (72,64) Hamming code under
    /// burst-8 errors (cf. Table II, where the paper reports 50.75%).
    pub dimm_secded_burst_detect: f64,
    /// Scaling (birthtime) fault configuration.
    pub scaling: ScalingFaults,
    /// Whether two faults must intersect at a common cache line to defeat
    /// a scheme (FaultSim's range model, the default), or merely coexist
    /// anywhere in the protection domain (the coarser classical model —
    /// the `ablation_intersection` bench quantifies the difference).
    pub require_line_intersection: bool,
    /// How long a *corrected transient* fault's corruption lingers before
    /// a demand read or patrol scrub cleans it (hours). `0.0` (default)
    /// models immediate read-and-scrub; larger values let two transient
    /// faults coexist and defeat erasure schemes.
    pub transient_exposure_hours: f64,
    /// The controller's knowledge of the on-die ECC function (default:
    /// [`CodeModel::Known`], the paper's assumption). Inflates the
    /// effective on-die miss probability under inferred-code ambiguity;
    /// see [`CodeModel::effective_on_die_miss`].
    pub code_model: CodeModel,
}

impl Default for ModelParams {
    fn default() -> Self {
        Self {
            on_die_ecc: true,
            on_die_miss: 0.008,
            dimm_secded_burst_detect: 0.51,
            scaling: ScalingFaults::none(),
            require_line_intersection: true,
            transient_exposure_hours: 0.0,
            code_model: CodeModel::Known,
        }
    }
}

impl ModelParams {
    /// Exhaustively measures the probability modeled by
    /// [`ModelParams::dimm_secded_burst_detect`] against the repo's own
    /// (72,64) Hamming decoder: the fraction of the 9 × 255 chip-aligned
    /// nonzero 8-bit burst patterns that decode as *detected* rather than
    /// clean or (mis-)corrected. The code is linear and decoding is
    /// syndrome-based, so checking each pattern against the all-zeros
    /// codeword covers every codeword.
    pub fn measured_secded_burst_detect() -> f64 {
        use xed_ecc::secded::{DecodeOutcome, SecDed};
        let code = xed_ecc::Hamming7264::new();
        let clean = code.encode(0);
        let mut detected = 0u32;
        let mut total = 0u32;
        for chip in 0..9u32 {
            for pattern in 1..=255u8 {
                let e = xed_ecc::CodeWord72::error_pattern(
                    (0..8u32)
                        .filter(|j| (pattern >> j) & 1 == 1)
                        .map(|j| 8 * chip + (7 - j)),
                );
                total += 1;
                if code.decode(clean.with_error(e)) == DecodeOutcome::Detected {
                    detected += 1;
                }
            }
        }
        f64::from(detected) / f64::from(total)
    }

    /// [`ModelParams::default`] with `dimm_secded_burst_detect` replaced by
    /// the [`ModelParams::measured_secded_burst_detect`] census value.
    /// Opt-in: the default keeps the documented 0.51 so seeded Monte-Carlo
    /// outputs stay bit-stable across releases.
    pub fn with_measured_burst_detect() -> Self {
        Self {
            dimm_secded_burst_detect: Self::measured_secded_burst_detect(),
            ..Self::default()
        }
    }
}

/// A scheme plus its response-model parameters; evaluates fault arrivals.
#[derive(Debug, Clone)]
pub struct SchemeModel {
    scheme: Scheme,
    params: ModelParams,
    config: SystemConfig,
    /// Precomputed: with on-die ECC present and scaling faults disabled,
    /// *every* single-bit fault is corrected invisibly on die
    /// ([`Self::evaluate_bit_fault`] would return [`Verdict::Benign`]
    /// without consuming randomness). Half of Table I's faults are
    /// single-bit, so the Monte-Carlo hot loop short-circuits on this.
    bit_always_benign: bool,
    /// Precomputed `params.code_model.effective_on_die_miss(on_die_miss)`
    /// — under [`CodeModel::Known`] and [`CodeModel::InferredExact`] this
    /// is exactly `params.on_die_miss`, keeping those runs bit-identical.
    effective_on_die_miss: f64,
}

impl SchemeModel {
    /// Builds the model for a scheme with the given parameters.
    pub fn new(scheme: Scheme, params: ModelParams) -> Self {
        let config = scheme.system_config();
        Self {
            scheme,
            params,
            config,
            bit_always_benign: params.on_die_ecc && !params.scaling.enabled(),
            effective_on_die_miss: params.code_model.effective_on_die_miss(params.on_die_miss),
        }
    }

    /// The on-die miss probability actually used by the verdict logic:
    /// the configured baseline, inflated under inferred-code ambiguity.
    pub fn effective_on_die_miss(&self) -> f64 {
        self.effective_on_die_miss
    }

    /// The scheme being modeled.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// The underlying system organization.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The model parameters.
    pub fn params(&self) -> &ModelParams {
        &self.params
    }

    /// `true` if chips `a` and `b` share this scheme's protection domain.
    pub fn same_domain(&self, a: u32, b: u32) -> bool {
        if self.scheme.domain_is_channel() {
            self.config.channel_of(a) == self.config.channel_of(b)
        } else {
            self.config.rank_of(a) == self.config.rank_of(b)
        }
    }

    /// Counts the largest set of distinct chips (including `e.chip`) in
    /// `e`'s protection domain whose *visible* (multi-bit) faults all
    /// intersect one common cache line with `e`'s fault (or, with
    /// `require_line_intersection` disabled, merely coexist in the
    /// domain).
    pub fn concurrent_chips(&self, e: &FaultEvent, active: &[FaultEvent]) -> u32 {
        let visible = |a: &&FaultEvent| {
            a.chip != e.chip && a.fault.extent.is_multi_bit() && self.same_domain(a.chip, e.chip)
        };
        if !self.params.require_line_intersection {
            let mut chips: Vec<u32> = active.iter().filter(visible).map(|a| a.chip).collect();
            chips.sort_unstable();
            chips.dedup();
            return 1 + chips.len() as u32;
        }
        let line = FaultRange {
            bit: None,
            ..e.fault.range
        };
        let cands: Vec<(u32, FaultRange)> = active
            .iter()
            .filter(visible)
            .filter_map(|a| {
                let r = FaultRange {
                    bit: None,
                    ..a.fault.range
                };
                line.intersect(&r).map(|x| (a.chip, x))
            })
            .collect();
        1 + max_chips_with_common_line(&line, &cands)
    }

    /// Evaluates one fault arrival against the currently active faults.
    ///
    /// `active` must contain only faults that are still uncorrected (the
    /// Monte-Carlo driver drops transient faults once a scheme corrects
    /// them, modeling scrub-on-correct).
    #[inline]
    pub fn evaluate<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        e: &FaultEvent,
        active: &[FaultEvent],
    ) -> Verdict {
        if e.fault.extent == FaultExtent::Bit {
            if self.bit_always_benign {
                return Verdict::Benign;
            }
            self.evaluate_bit_fault(rng, e, active)
        } else {
            self.evaluate_large_fault(rng, e, active)
        }
    }

    /// Evaluates a fault that arrives with *no* other fault active in its
    /// protection domain, from its mode alone.
    ///
    /// With an empty active set, [`Self::evaluate`]'s verdict never
    /// depends on which chip or address range the fault struck
    /// (`concurrent_chips` is 1 regardless), so the Monte-Carlo driver's
    /// single-fault fast path skips those draws and calls this instead.
    /// Must consume the same randomness and return the same verdict as
    /// `evaluate(rng, e, &[])` for any event of this mode — pinned by the
    /// `isolated_evaluation_matches_general_path` test.
    #[inline]
    pub fn evaluate_isolated<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        extent: FaultExtent,
        persistence: Persistence,
    ) -> Verdict {
        if extent == FaultExtent::Bit {
            if self.bit_always_benign {
                return Verdict::Benign;
            }
            if !self.params.on_die_ecc {
                return match self.scheme {
                    Scheme::NonEcc => Verdict::Sdc,
                    _ => Verdict::Corrected,
                };
            }
            let collides_with_scaling = self.params.scaling.enabled()
                && rng.gen::<f64>() < self.params.scaling.p_word_faulty();
            if !collides_with_scaling {
                return Verdict::Benign;
            }
            return match self.scheme {
                Scheme::NonEcc => Verdict::Sdc,
                Scheme::EccDimm => {
                    if rng.gen::<f64>() < 7.0 / 63.0 {
                        Verdict::Due
                    } else {
                        Verdict::Corrected
                    }
                }
                // One erasure / one garbage symbol: within every other
                // scheme's budget.
                _ => Verdict::Corrected,
            };
        }
        match self.scheme {
            Scheme::NonEcc => Verdict::Sdc,
            Scheme::EccDimm => {
                if rng.gen::<f64>() < self.params.dimm_secded_burst_detect {
                    Verdict::Due
                } else {
                    Verdict::Sdc
                }
            }
            Scheme::Xed => self.xed_single_chip_verdict(rng, extent, persistence),
            // A single faulty chip is within budget for the erasure and
            // symbol-correcting schemes.
            Scheme::XedChipkill
            | Scheme::Chipkill
            | Scheme::ChipkillX4
            | Scheme::DoubleChipkill => Verdict::Corrected,
        }
    }

    /// Response to a single-bit runtime fault.
    fn evaluate_bit_fault<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        e: &FaultEvent,
        active: &[FaultEvent],
    ) -> Verdict {
        if !self.params.on_die_ecc {
            // Without on-die ECC the bit error reaches the bus.
            return match self.scheme {
                Scheme::NonEcc => Verdict::Sdc,
                // Every other scheme corrects a single-bit (single-symbol)
                // error at DIMM level.
                _ => Verdict::Corrected,
            };
        }
        // On-die SECDED corrects an isolated single-bit error invisibly —
        // unless the struck word already holds a scaling fault, making it a
        // 2-bit error the on-die code detects but cannot correct.
        let collides_with_scaling =
            self.params.scaling.enabled() && rng.gen::<f64>() < self.params.scaling.p_word_faulty();
        if !collides_with_scaling {
            return Verdict::Benign;
        }
        match self.scheme {
            Scheme::NonEcc => Verdict::Sdc,
            Scheme::EccDimm => {
                // The chip emits the word with 2 bad bits. They land in the
                // same 72-bit beat with probability 7/63 (2 of 8 beats × 8
                // bits); same beat ⇒ DIMM SECDED flags a DUE, different
                // beats ⇒ two correctable single-bit beats.
                if rng.gen::<f64>() < 7.0 / 63.0 {
                    Verdict::Due
                } else {
                    Verdict::Corrected
                }
            }
            Scheme::Xed | Scheme::XedChipkill => {
                // Catch-word identifies the chip; parity / erasure symbols
                // reconstruct it — unless other chips are concurrently
                // faulty at the same line.
                let n = self.concurrent_chips(e, active);
                if n <= self.erasure_budget() {
                    Verdict::Corrected
                } else {
                    Verdict::Due
                }
            }
            Scheme::Chipkill | Scheme::ChipkillX4 | Scheme::DoubleChipkill => {
                // One garbage symbol: within symbol-correction budget.
                let n = self.concurrent_chips(e, active);
                self.symbol_verdict(n)
            }
        }
    }

    /// Response to a multi-bit (word or larger) fault.
    fn evaluate_large_fault<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        e: &FaultEvent,
        active: &[FaultEvent],
    ) -> Verdict {
        let n = self.concurrent_chips(e, active);
        match self.scheme {
            Scheme::NonEcc => Verdict::Sdc,
            Scheme::EccDimm => {
                // A multi-bit chip fault injects an 8-bit burst into each
                // affected 72-bit beat. The DIMM SECDED usually flags it
                // (DUE); otherwise it silently mis-corrects (SDC).
                if rng.gen::<f64>() < self.params.dimm_secded_burst_detect {
                    Verdict::Due
                } else {
                    Verdict::Sdc
                }
            }
            Scheme::Xed => {
                if n >= 2 {
                    // Two chips faulty at one line: one parity chip cannot
                    // reconstruct both.
                    return Verdict::Due;
                }
                self.xed_single_chip_verdict(rng, e.fault.extent, e.fault.persistence)
            }
            Scheme::XedChipkill => {
                if n > 2 {
                    return Verdict::Due;
                }
                if n == 2 {
                    // Two erasures consume both check symbols; if either
                    // chip's error additionally escapes on-die detection
                    // (possible only for word faults) the erasure set is
                    // wrong and decoding fails.
                    if e.fault.extent == FaultExtent::Word
                        && rng.gen::<f64>() < self.effective_on_die_miss
                    {
                        return Verdict::Due;
                    }
                    return Verdict::Corrected;
                }
                // Single faulty chip: even an on-die miss is recoverable —
                // RS(18,16) corrects one *unknown* symbol error.
                Verdict::Corrected
            }
            Scheme::Chipkill | Scheme::ChipkillX4 | Scheme::DoubleChipkill => {
                self.symbol_verdict(n)
            }
        }
    }

    /// XED's handling of exactly one faulty chip (paper Sections V–VI).
    /// Depends only on the fault's mode, never its location.
    fn xed_single_chip_verdict<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        extent: FaultExtent,
        persistence: Persistence,
    ) -> Verdict {
        if extent.spans_lines() {
            // Column/row/bank/chip faults: even if the on-die ECC misses
            // the requested line (0.8%), DIMM parity flags it and
            // Inter-Line Fault Diagnosis identifies the chip from the
            // neighboring faulty lines; parity reconstructs the data. The
            // residual SDC from diagnosis misidentification is ~1e-12 over
            // 7 years (Table IV) — below Monte-Carlo resolution, tracked
            // analytically instead.
            return Verdict::Corrected;
        }
        // Word fault confined to one line.
        if rng.gen::<f64>() >= self.effective_on_die_miss {
            // Detected on die → catch-word → parity reconstruction.
            return Verdict::Corrected;
        }
        // On-die miss: DIMM parity still detects the mismatch. Inter-line
        // diagnosis finds nothing (neighboring lines are clean); intra-line
        // diagnosis reproduces *permanent* faults only.
        match persistence {
            Persistence::Permanent => Verdict::Corrected,
            Persistence::Transient => Verdict::Due,
        }
    }

    /// Verdict for symbol-correcting codes given `n` concurrently faulty
    /// chips at one line.
    fn symbol_verdict(&self, n: u32) -> Verdict {
        let budget = self.symbol_correct_budget();
        if n <= budget {
            Verdict::Corrected
        } else if n == budget + 1 {
            // Within the guaranteed detection radius.
            Verdict::Due
        } else {
            Verdict::Sdc
        }
    }

    /// Chips correctable when locations are unknown (symbol codes).
    fn symbol_correct_budget(&self) -> u32 {
        match self.scheme {
            Scheme::Chipkill | Scheme::ChipkillX4 => 1,
            Scheme::DoubleChipkill => 2,
            _ => 0,
        }
    }

    /// Chips correctable when locations are known (erasure schemes).
    fn erasure_budget(&self) -> u32 {
        match self.scheme {
            Scheme::Xed => 1,
            Scheme::XedChipkill => 2,
            _ => 0,
        }
    }
}

/// Finds the largest number of distinct chips whose candidate line-ranges
/// (already intersected with the new fault's line range) share one common
/// line. Brute-force subset search — candidate counts are tiny in practice.
fn max_chips_with_common_line(base: &FaultRange, cands: &[(u32, FaultRange)]) -> u32 {
    fn rec(current: FaultRange, cands: &[(u32, FaultRange)], used: &mut Vec<u32>, best: &mut u32) {
        *best = (*best).max(used.len() as u32);
        for (i, (chip, range)) in cands.iter().enumerate() {
            if used.contains(chip) {
                continue;
            }
            if let Some(next) = current.intersect(range) {
                // Tiny per-call scratch Vec, bounded by the candidate count.
                // alloc: at most chips-per-rank pushes, amortized growth.
                used.push(*chip);
                // indexing: i < cands.len(), so i + 1 is a valid start.
                rec(next, &cands[i + 1..], used, best);
                used.pop();
            }
        }
    }
    let mut best = 0;
    rec(*base, cands, &mut Vec::new(), &mut best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::Fault;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ev(
        chip: u32,
        extent: FaultExtent,
        persistence: Persistence,
        range: FaultRange,
    ) -> FaultEvent {
        FaultEvent {
            time_hours: 0.0,
            chip,
            fault: Fault {
                extent,
                persistence,
                range,
            },
        }
    }

    fn bank_fault(chip: u32, bank: u32) -> FaultEvent {
        ev(
            chip,
            FaultExtent::Bank,
            Persistence::Permanent,
            FaultRange {
                bank: Some(bank),
                row: None,
                col: None,
                bit: None,
            },
        )
    }

    fn chip_fault(chip: u32) -> FaultEvent {
        ev(
            chip,
            FaultExtent::Chip,
            Persistence::Permanent,
            FaultRange::default(),
        )
    }

    fn model(scheme: Scheme) -> SchemeModel {
        SchemeModel::new(scheme, ModelParams::default())
    }

    #[test]
    fn bit_fault_is_benign_with_on_die() {
        let m = model(Scheme::EccDimm);
        let mut rng = StdRng::seed_from_u64(1);
        let e = ev(
            0,
            FaultExtent::Bit,
            Persistence::Transient,
            FaultRange {
                bank: Some(0),
                row: Some(0),
                col: Some(0),
                bit: Some(0),
            },
        );
        assert_eq!(m.evaluate(&mut rng, &e, &[]), Verdict::Benign);
    }

    #[test]
    fn bit_fault_sdc_on_non_ecc_without_on_die() {
        let params = ModelParams {
            on_die_ecc: false,
            ..ModelParams::default()
        };
        let m = SchemeModel::new(Scheme::NonEcc, params);
        let mut rng = StdRng::seed_from_u64(1);
        let e = ev(
            0,
            FaultExtent::Bit,
            Persistence::Transient,
            FaultRange {
                bank: Some(0),
                row: Some(0),
                col: Some(0),
                bit: Some(0),
            },
        );
        assert_eq!(m.evaluate(&mut rng, &e, &[]), Verdict::Sdc);
    }

    #[test]
    fn large_fault_fails_ecc_dimm() {
        let m = model(Scheme::EccDimm);
        let mut rng = StdRng::seed_from_u64(2);
        let e = bank_fault(0, 3);
        let v = m.evaluate(&mut rng, &e, &[]);
        assert!(v.is_failure());
    }

    #[test]
    fn large_fault_fails_non_ecc_silently() {
        let m = model(Scheme::NonEcc);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(m.evaluate(&mut rng, &bank_fault(0, 3), &[]), Verdict::Sdc);
    }

    #[test]
    fn xed_corrects_single_chip_failure() {
        let m = model(Scheme::Xed);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(
            m.evaluate(&mut rng, &chip_fault(0), &[]),
            Verdict::Corrected
        );
        assert_eq!(
            m.evaluate(&mut rng, &bank_fault(5, 0), &[]),
            Verdict::Corrected
        );
    }

    #[test]
    fn xed_two_chips_same_rank_due() {
        let m = model(Scheme::Xed);
        let mut rng = StdRng::seed_from_u64(4);
        let active = [chip_fault(1)];
        assert_eq!(m.evaluate(&mut rng, &chip_fault(0), &active), Verdict::Due);
    }

    #[test]
    fn xed_two_chips_different_rank_independent() {
        let m = model(Scheme::Xed);
        let mut rng = StdRng::seed_from_u64(5);
        // chip 9 is in rank 1; chip 0 in rank 0.
        let active = [chip_fault(9)];
        assert_eq!(
            m.evaluate(&mut rng, &chip_fault(0), &active),
            Verdict::Corrected
        );
    }

    #[test]
    fn xed_bank_faults_interact_only_in_same_bank() {
        let m = model(Scheme::Xed);
        let mut rng = StdRng::seed_from_u64(6);
        let active = [bank_fault(1, 2)];
        assert_eq!(
            m.evaluate(&mut rng, &bank_fault(0, 3), &active),
            Verdict::Corrected
        );
        assert_eq!(
            m.evaluate(&mut rng, &bank_fault(0, 2), &active),
            Verdict::Due
        );
    }

    #[test]
    fn xed_transient_word_fault_due_on_miss() {
        let params = ModelParams {
            on_die_miss: 1.0,
            ..ModelParams::default()
        };
        let m = SchemeModel::new(Scheme::Xed, params);
        let mut rng = StdRng::seed_from_u64(7);
        let word = ev(
            0,
            FaultExtent::Word,
            Persistence::Transient,
            FaultRange {
                bank: Some(0),
                row: Some(1),
                col: Some(2),
                bit: None,
            },
        );
        assert_eq!(m.evaluate(&mut rng, &word, &[]), Verdict::Due);
        let word_perm = FaultEvent {
            fault: Fault {
                persistence: Persistence::Permanent,
                ..word.fault
            },
            ..word
        };
        assert_eq!(m.evaluate(&mut rng, &word_perm, &[]), Verdict::Corrected);
    }

    #[test]
    fn chipkill_domain_spans_both_ranks_of_channel() {
        let m = model(Scheme::Chipkill);
        let mut rng = StdRng::seed_from_u64(8);
        // chips 0 (rank 0) and 9 (rank 1) are in the same channel: ganged.
        let active = [chip_fault(9)];
        assert_eq!(m.evaluate(&mut rng, &chip_fault(0), &active), Verdict::Due);
        // chip 18 is channel 1: independent.
        let active = [chip_fault(18)];
        assert_eq!(
            m.evaluate(&mut rng, &chip_fault(0), &active),
            Verdict::Corrected
        );
    }

    #[test]
    fn chipkill_single_chip_corrected() {
        let m = model(Scheme::Chipkill);
        let mut rng = StdRng::seed_from_u64(9);
        assert_eq!(
            m.evaluate(&mut rng, &chip_fault(0), &[]),
            Verdict::Corrected
        );
    }

    #[test]
    fn chipkill_three_chips_sdc() {
        let m = model(Scheme::Chipkill);
        let mut rng = StdRng::seed_from_u64(10);
        let active = [chip_fault(1), chip_fault(2)];
        assert_eq!(m.evaluate(&mut rng, &chip_fault(0), &active), Verdict::Sdc);
    }

    #[test]
    fn double_chipkill_corrects_two_fails_at_three() {
        let m = model(Scheme::DoubleChipkill);
        let mut rng = StdRng::seed_from_u64(11);
        let active = [chip_fault(1)];
        assert_eq!(
            m.evaluate(&mut rng, &chip_fault(0), &active),
            Verdict::Corrected
        );
        let active = [chip_fault(1), chip_fault(2)];
        assert_eq!(m.evaluate(&mut rng, &chip_fault(0), &active), Verdict::Due);
    }

    #[test]
    fn xed_chipkill_corrects_two_chips() {
        let m = model(Scheme::XedChipkill);
        let mut rng = StdRng::seed_from_u64(12);
        let active = [chip_fault(1)];
        assert_eq!(
            m.evaluate(&mut rng, &chip_fault(0), &active),
            Verdict::Corrected
        );
        let active = [chip_fault(1), chip_fault(2)];
        assert_eq!(m.evaluate(&mut rng, &chip_fault(0), &active), Verdict::Due);
    }

    #[test]
    fn concurrency_requires_common_line_not_just_pairwise() {
        // Row faults in three different chips, same bank: row 5, row 5 and a
        // column fault — rows at different rows don't stack.
        let m = model(Scheme::DoubleChipkill);
        let r5 = FaultRange {
            bank: Some(0),
            row: Some(5),
            col: None,
            bit: None,
        };
        let r6 = FaultRange {
            bank: Some(0),
            row: Some(6),
            col: None,
            bit: None,
        };
        let e = ev(0, FaultExtent::Row, Persistence::Permanent, r5);
        let a1 = ev(1, FaultExtent::Row, Persistence::Permanent, r5);
        let a2 = ev(2, FaultExtent::Row, Persistence::Permanent, r6);
        // a2's row 6 never meets row 5: only chips {0,1} share a line.
        assert_eq!(m.concurrent_chips(&e, &[a1, a2]), 2);
        let a3 = ev(3, FaultExtent::Row, Persistence::Permanent, r5);
        assert_eq!(m.concurrent_chips(&e, &[a1, a2, a3]), 3);
    }

    #[test]
    fn bit_faults_do_not_count_as_concurrent() {
        let m = model(Scheme::Xed);
        let bit = ev(
            1,
            FaultExtent::Bit,
            Persistence::Permanent,
            FaultRange {
                bank: Some(0),
                row: Some(0),
                col: Some(0),
                bit: Some(0),
            },
        );
        let e = chip_fault(0);
        assert_eq!(m.concurrent_chips(&e, &[bit]), 1);
    }

    #[test]
    fn multiple_faults_same_chip_count_once() {
        let m = model(Scheme::Xed);
        let active = [bank_fault(1, 0), bank_fault(1, 1), chip_fault(1)];
        assert_eq!(m.concurrent_chips(&chip_fault(0), &active), 2);
    }

    #[test]
    fn without_intersection_any_coexisting_pair_counts() {
        let params = ModelParams {
            require_line_intersection: false,
            ..ModelParams::default()
        };
        let m = SchemeModel::new(Scheme::Xed, params);
        let mut rng = StdRng::seed_from_u64(20);
        // Two row faults in *different* banks: disjoint ranges, but the
        // coarse model still counts them as a fatal pair.
        let active = [bank_fault(1, 2)];
        assert_eq!(m.concurrent_chips(&bank_fault(0, 3), &active), 2);
        assert_eq!(
            m.evaluate(&mut rng, &bank_fault(0, 3), &active),
            Verdict::Due
        );
        // The intersection model disagrees (cf. xed_bank_faults test).
        let strict = SchemeModel::new(Scheme::Xed, ModelParams::default());
        assert_eq!(strict.concurrent_chips(&bank_fault(0, 3), &active), 1);
    }

    #[test]
    fn known_and_inferred_exact_code_models_are_bit_identical() {
        // The headline property of exact BEER recovery: a bit-exactly
        // inferred code predicts the same on-die behavior as a disclosed
        // one, so the verdict stream is *identical*, not merely close.
        let known = SchemeModel::new(Scheme::Xed, ModelParams::default());
        let inferred = SchemeModel::new(
            Scheme::Xed,
            ModelParams {
                code_model: CodeModel::InferredExact,
                ..ModelParams::default()
            },
        );
        assert_eq!(
            known.effective_on_die_miss(),
            inferred.effective_on_die_miss()
        );
        for seed in 0..64u64 {
            let mut a = StdRng::seed_from_u64(seed);
            let mut b = StdRng::seed_from_u64(seed);
            let va = known.evaluate_isolated(&mut a, FaultExtent::Word, Persistence::Transient);
            let vb = inferred.evaluate_isolated(&mut b, FaultExtent::Word, Persistence::Transient);
            assert_eq!(va, vb);
        }
    }

    #[test]
    fn ambiguous_code_model_inflates_the_effective_miss_monotonically() {
        let base = ModelParams::default().on_die_miss;
        let mut prev = CodeModel::Known.effective_on_die_miss(base);
        assert_eq!(prev, base);
        assert_eq!(
            CodeModel::InferredAmbiguous { unresolved_rows: 0 }.effective_on_die_miss(base),
            base
        );
        for u in 1..=8u8 {
            let eff =
                CodeModel::InferredAmbiguous { unresolved_rows: u }.effective_on_die_miss(base);
            // Weakly monotone; strictly while the escape mass has not yet
            // saturated (every syndrome aliasing ⇒ miss pinned at 1).
            assert!(eff >= prev, "u={u}: {eff} < {prev}");
            if prev < 1.0 {
                assert!(eff > prev, "u={u}: {eff} !> {prev}");
            }
            assert!(eff <= 1.0);
            prev = eff;
        }
        // Fully unresolved: every syndrome may alias — miss saturates.
        assert_eq!(
            CodeModel::InferredAmbiguous { unresolved_rows: 8 }.effective_on_die_miss(base),
            1.0
        );
    }

    #[test]
    fn code_model_display_and_key_tags_are_distinct() {
        let models = [
            CodeModel::Known,
            CodeModel::InferredExact,
            CodeModel::InferredAmbiguous { unresolved_rows: 2 },
            CodeModel::InferredAmbiguous { unresolved_rows: 3 },
        ];
        let tags: Vec<(u64, u64)> = models.iter().map(|m| m.key_tag()).collect();
        let shown: Vec<String> = models.iter().map(|m| m.to_string()).collect();
        for (i, t) in tags.iter().enumerate() {
            assert!(!tags[..i].contains(t));
            assert!(!shown[..i].contains(&shown[i]));
        }
        assert_eq!(shown[0], "known");
        assert_eq!(shown[3], "ambiguous:3");
    }

    #[test]
    fn verdict_failure_predicate() {
        assert!(Verdict::Due.is_failure());
        assert!(Verdict::Sdc.is_failure());
        assert!(!Verdict::Corrected.is_failure());
        assert!(!Verdict::Benign.is_failure());
    }

    #[test]
    fn scheme_labels_unique() {
        let labels: Vec<&str> = Scheme::ALL.iter().map(|s| s.label()).collect();
        for (i, l) in labels.iter().enumerate() {
            assert!(!labels[..i].contains(l));
        }
    }

    #[test]
    fn isolated_evaluation_matches_general_path() {
        // `evaluate_isolated` promises to return the same verdict *and*
        // consume the same randomness as `evaluate` with an empty active
        // set, for every scheme × mode × parameter variant the engine can
        // reach. Compare both the verdicts and the final RNG states.
        use crate::geometry::DramGeometry;
        use crate::scaling::ScalingFaults;
        let geom = DramGeometry::x8_2gb();
        let variants = [
            ModelParams::default(),
            ModelParams {
                on_die_ecc: false,
                ..ModelParams::default()
            },
            ModelParams {
                scaling: ScalingFaults::with_rate(1e-4),
                ..ModelParams::default()
            },
            ModelParams {
                scaling: ScalingFaults::with_rate(0.9),
                on_die_miss: 0.5,
                dimm_secded_burst_detect: 0.5,
                ..ModelParams::default()
            },
        ];
        let mut sample_rng = StdRng::seed_from_u64(99);
        for scheme in Scheme::ALL {
            for params in variants {
                let m = SchemeModel::new(scheme, params);
                for extent in FaultExtent::ALL {
                    for persistence in [Persistence::Transient, Persistence::Permanent] {
                        for round in 0..8u64 {
                            let e = FaultEvent {
                                time_hours: 0.0,
                                chip: sample_rng.gen_range(0..m.config().total_chips()),
                                fault: Fault::sample(&mut sample_rng, extent, persistence, &geom),
                            };
                            let seed = round
                                .wrapping_mul(1000)
                                .wrapping_add(scheme.stream_tag() * 100)
                                .wrapping_add(extent.index() as u64);
                            let mut general = StdRng::seed_from_u64(seed);
                            let mut isolated = general.clone();
                            let vg = m.evaluate(&mut general, &e, &[]);
                            let vi = m.evaluate_isolated(&mut isolated, extent, persistence);
                            assert_eq!(
                                vg, vi,
                                "verdict diverged: {scheme:?} {extent:?} {persistence:?} {params:?}"
                            );
                            assert_eq!(
                                general, isolated,
                                "rng consumption diverged: {scheme:?} {extent:?} {persistence:?} {params:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn measured_burst_detect_matches_paper_census() {
        let m = ModelParams::measured_secded_burst_detect();
        // Paper Table II reports 50.75% burst-8 detection for Hamming;
        // the chip-aligned census of our construction must land nearby.
        assert!((m - 0.5075).abs() < 0.03, "measured {m}");
        let p = ModelParams::with_measured_burst_detect();
        assert!((p.dimm_secded_burst_detect - m).abs() < 1e-12);
        // The documented default stays pinned for seeded reproducibility.
        let d = ModelParams::default().dimm_secded_burst_detect;
        assert!((d - 0.51).abs() < 1e-12);
    }

    #[test]
    fn scheme_stream_tags_unique_and_nonzero() {
        let tags: Vec<u64> = Scheme::ALL.iter().map(|s| s.stream_tag()).collect();
        for (i, t) in tags.iter().enumerate() {
            assert_ne!(*t, 0, "{}: zero tag would collide with the bare seed", i);
            assert!(!tags[..i].contains(t));
        }
    }
}
