//! Birthtime ("scaling") fault modeling.
//!
//! Scaling faults are weak cells introduced by process scaling (paper
//! Section II-C). The paper assumes a scaling bit-fault rate of 10⁻⁴ and
//! that vendors screen devices so **no 64-bit word holds more than one
//! faulty bit** — single-bit faults that the on-die SECDED corrects on
//! every access.
//!
//! A device has ~2²⁵ words, so at a 10⁻⁴ bit-fault rate essentially *every*
//! device contains millions of scaling faults; materializing them per bit
//! is infeasible and unnecessary. Instead this module provides the derived
//! probabilities the Monte-Carlo and analytic models need:
//!
//! * the probability that a given word contains a scaling fault (drives the
//!   rate of catch-words and of multi-catch-word accesses, Table III);
//! * the probability that a runtime single-bit fault lands in a word that
//!   already has a scaling fault, turning a correctable 1-bit error into a
//!   detectable-but-uncorrectable 2-bit error for an on-die-only system
//!   (Section VII / footnote 2).

/// Scaling-fault configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingFaults {
    /// Per-bit probability that a cell is a (screened, ≤1 per word) scaling
    /// fault. The paper evaluates 10⁻⁴ (and 10⁻⁵, 10⁻⁶ in Table III).
    pub bit_rate: f64,
    /// Bits per on-die ECC word (64 for x8 devices).
    pub word_bits: u32,
}

impl ScalingFaults {
    /// No scaling faults (Figs. 1, 7, 9).
    pub const fn none() -> Self {
        Self {
            bit_rate: 0.0,
            word_bits: 64,
        }
    }

    /// The paper's high scaling rate, 10⁻⁴ per bit (Figs. 8, 10).
    pub const fn paper_default() -> Self {
        Self {
            bit_rate: 1e-4,
            word_bits: 64,
        }
    }

    /// With a different rate.
    pub fn with_rate(rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate {rate} out of [0,1]");
        Self {
            bit_rate: rate,
            word_bits: 64,
        }
    }

    /// `true` if scaling faults are enabled.
    pub fn enabled(&self) -> bool {
        self.bit_rate > 0.0
    }

    /// Probability that a given word contains (at least) one scaling fault:
    /// `1 − (1−r)^word_bits`.
    ///
    /// Because vendors screen to ≤ 1 fault per word, this is also the
    /// probability of *exactly one* fault in the word.
    pub fn p_word_faulty(&self) -> f64 {
        1.0 - (1.0 - self.bit_rate).powi(self.word_bits as i32)
    }

    /// Probability that an access to one cache line receives catch-words
    /// from `k` or more of `chips` data chips simultaneously, assuming each
    /// chip's word is independently faulty with [`Self::p_word_faulty`]
    /// (Table III is the `k = 2` column).
    pub fn p_multi_catch_word(&self, chips: u32, k: u32) -> f64 {
        let p = self.p_word_faulty();
        let n = chips;
        // P(X ≥ k) for X ~ Binomial(n, p); exact sum (n ≤ 32 in practice).
        let mut p_lt = 0.0;
        for i in 0..k {
            p_lt += binomial(n, i) * p.powi(i as i32) * (1.0 - p).powi((n - i) as i32);
        }
        (1.0 - p_lt).max(0.0)
    }
}

impl Default for ScalingFaults {
    fn default() -> Self {
        Self::none()
    }
}

/// Binomial coefficient as f64 (exact for the small arguments used here).
pub fn binomial(n: u32, k: u32) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut acc = 1.0f64;
    for i in 0..k {
        acc = acc * (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_disabled() {
        let s = ScalingFaults::none();
        assert!(!s.enabled());
        assert_eq!(s.p_word_faulty(), 0.0);
        assert_eq!(s.p_multi_catch_word(8, 2), 0.0);
    }

    #[test]
    fn word_fault_probability_approximates_64r() {
        let s = ScalingFaults::paper_default();
        let p = s.p_word_faulty();
        assert!((p - 64.0 * 1e-4).abs() / p < 0.01, "p = {p}");
    }

    #[test]
    fn multi_catch_word_scales_quadratically() {
        // Table III behavior: the multi-catch-word chance drops 100x per 10x
        // drop in scaling rate (it is quadratic in the rate).
        let p4 = ScalingFaults::with_rate(1e-4).p_multi_catch_word(8, 2);
        let p5 = ScalingFaults::with_rate(1e-5).p_multi_catch_word(8, 2);
        let p6 = ScalingFaults::with_rate(1e-6).p_multi_catch_word(8, 2);
        assert!(p4 > 0.0);
        assert!((p4 / p5 - 100.0).abs() < 5.0, "p4/p5 = {}", p4 / p5);
        assert!((p5 / p6 - 100.0).abs() < 5.0, "p5/p6 = {}", p5 / p6);
    }

    #[test]
    fn multi_catch_word_monotone_in_k() {
        let s = ScalingFaults::paper_default();
        let p1 = s.p_multi_catch_word(8, 1);
        let p2 = s.p_multi_catch_word(8, 2);
        let p3 = s.p_multi_catch_word(8, 3);
        assert!(p1 > p2 && p2 > p3);
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(8, 0), 1.0);
        assert_eq!(binomial(8, 2), 28.0);
        assert_eq!(binomial(8, 8), 1.0);
        assert_eq!(binomial(3, 5), 0.0);
        assert_eq!(binomial(36, 3), 7140.0);
    }

    #[test]
    #[should_panic]
    fn with_rate_rejects_out_of_range() {
        ScalingFaults::with_rate(1.5);
    }
}
