//! The threaded Monte-Carlo simulation driver.
//!
//! Reproduces the paper's methodology (Section III): simulate many
//! independent systems over a 7-year lifetime, record whether and when each
//! encounters an uncorrectable (DUE) or silent (SDC) error, and report the
//! probability of system failure as a function of time.
//!
//! # Engine design (see DESIGN.md §9)
//!
//! * **Counter-based per-trial RNG streams.** Trial `i` of scheme `s`
//!   draws from the split form of stream `i` of `Streams::new(seed ⊕
//!   mix(s))`: `split_first(i)` yields the headline uniform that decides
//!   the zero-fault fast path, and `split_rest(i)` carries any remaining
//!   draws — together one logical stream, a pure function of `(seed,
//!   scheme, trial)`. Randomness is therefore independent of which worker
//!   executes the trial, which makes every [`SchemeResult`]
//!   **bit-identical for any thread count** (enforced by tier-1 tests).
//! * **Work-stealing chunk scheduler.** Workers repeatedly claim the next
//!   `STEAL_CHUNK`-trial slice from a shared atomic counter spanning
//!   *all* schemes of the invocation, so [`MonteCarlo::run_all`] is
//!   parallel across schemes and no core idles at the tail. All
//!   accumulators are `u64` counters (commutative merges), so the claim
//!   order cannot affect results.
//! * **Bit-sliced trial classification.** The default [`TrialKernel`]
//!   processes trials in 64-lane blocks: the block's headline draws come
//!   from one Weyl-incremented SplitMix64 sweep, the zero-fault decisions
//!   transpose into a single `nonzero` word, one popcount credits the
//!   whole block's zero-fault trials, and only set bits spill to the
//!   scalar event machinery — bit-identical to the scalar loop by
//!   construction (see DESIGN.md §14).
//! * **Allocation-free hot loop.** Each worker owns reusable event/active
//!   buffers; `LifetimeSampler::sample_into` writes into them, and the
//!   zero-fault fast path draws only the Poisson count (one uniform) for
//!   the ~75 % of lifetimes that see no fault at all.
//! * **Throughput instrumentation.** [`MonteCarlo::run_timed`] and
//!   [`MonteCarlo::run_all_timed`] report wall time and samples/sec via
//!   [`RunStats`]; the `mc_throughput` bench binary persists the trajectory
//!   to `BENCH_faultsim.json`.

use crate::event::{FaultEvent, LifetimeSampler};
use crate::fault::Persistence;
use crate::fit::{FitRates, HOURS_PER_YEAR, LIFETIME_YEARS};
use crate::schemes::{ModelParams, Scheme, SchemeModel, Verdict};
use rand::rngs::Streams;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use xed_telemetry::trace::{self, Phase, SpanCtx, SpanEvent};
use xed_telemetry::{registry::metrics, Tallies};

/// Trials claimed per scheduler steal. Large enough that the atomic
/// `fetch_add` is noise (one per ~4k trials), small enough that the tail
/// imbalance at the end of a run is microseconds. A multiple of [`LANES`],
/// so every full chunk decomposes into whole bit-sliced blocks.
const STEAL_CHUNK: u64 = 4096;

/// Trials per bit-sliced block: one trial per bit of the classification
/// word (see [`TrialKernel::BitSliced`]).
const LANES: u64 = 64;

/// `1 / HOURS_PER_YEAR`: the failure-year bucket divide as a multiply
/// (the hot loop computes it on every recorded failure).
const YEAR_RECIP: f64 = 1.0 / HOURS_PER_YEAR;

/// Which per-trial evaluation kernel the driver runs.
///
/// Both kernels consume the identical counter-based streams and produce
/// **bit-identical** [`SchemeResult`]s (enforced by tier-1 tests and the
/// ci.sh equivalence gate); the choice only affects how fast the ~75 %
/// zero-fault trials are classified.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TrialKernel {
    /// 64-lane bit-sliced classification (default): headline draws for a
    /// whole trial block are generated with one Weyl add + SplitMix64 mix
    /// per lane ([`Streams::split_first_block`]), transposed into a single
    /// `nonzero` word by [`LifetimeSampler::nonzero_mask`], credited to
    /// the zero-fault tally with one popcount, and only the set bits spill
    /// into the scalar event machinery.
    #[default]
    BitSliced,
    /// The straight scalar loop, one trial at a time — kept as the live
    /// differential oracle for the bit-sliced path.
    Scalar,
}

/// Monte-Carlo run configuration.
#[derive(Debug, Clone)]
pub struct MonteCarloConfig {
    /// Number of independent systems to simulate per scheme. The paper uses
    /// 10⁹; 10⁶–10⁸ gives tight estimates at the probabilities involved.
    pub samples: u64,
    /// Lifetime in years (paper: 7).
    pub years: f64,
    /// Base RNG seed. Results are a pure function of `(seed, scheme,
    /// samples)` — the thread count never changes them.
    pub seed: u64,
    /// Worker threads; `0` = use all available cores.
    pub threads: usize,
    /// Fault-response model parameters (on-die ECC, scaling faults, …).
    pub params: ModelParams,
    /// Per-chip FIT rates.
    pub rates: FitRates,
    /// Per-trial evaluation kernel (bit-sliced by default; results are
    /// bit-identical either way).
    pub kernel: TrialKernel,
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        Self {
            samples: 1_000_000,
            years: LIFETIME_YEARS,
            seed: 0x5EED,
            threads: 0,
            params: ModelParams::default(),
            rates: FitRates::table_i(),
            kernel: TrialKernel::default(),
        }
    }
}

/// Aggregated outcome of simulating one scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeResult {
    /// The simulated scheme.
    pub scheme: Scheme,
    /// Systems simulated.
    pub samples: u64,
    /// Failures (DUE + SDC) whose failure time fell in year `i`
    /// (`failures_by_year[0]` = failures during the first year).
    pub failures_by_year: Vec<u64>,
    /// Total detected-uncorrectable failures.
    pub due: u64,
    /// Total silent failures.
    pub sdc: u64,
    /// Failures attributed to the extent of the fault whose arrival
    /// triggered them, indexed like [`crate::fault::FaultExtent::ALL`].
    pub failures_by_extent: [u64; 6],
}

impl SchemeResult {
    /// Total failed systems.
    pub fn failures(&self) -> u64 {
        self.due + self.sdc
    }

    /// Probability that a system fails within the first `years` years
    /// (cumulative; fractional years round up to the enclosing year bucket).
    pub fn failure_probability(&self, years: f64) -> f64 {
        let buckets = (years.ceil() as usize).min(self.failures_by_year.len());
        let failed: u64 = self.failures_by_year[..buckets].iter().sum();
        failed as f64 / self.samples as f64
    }

    /// Probability that a system fails at any point in the simulated
    /// lifetime (every recorded failure, regardless of year).
    pub fn lifetime_failure_probability(&self) -> f64 {
        self.failures() as f64 / self.samples as f64
    }

    /// Cumulative failure-probability curve, one point per year boundary —
    /// the series plotted in the paper's Figures 1 and 7–10.
    pub fn curve(&self) -> Vec<f64> {
        let mut acc = 0u64;
        self.failures_by_year
            .iter()
            .map(|&f| {
                acc += f;
                acc as f64 / self.samples as f64
            })
            .collect()
    }

    /// Failure share attributed to each triggering fault extent, as
    /// `(extent, count)` pairs in [`crate::fault::FaultExtent::ALL`] order.
    pub fn attribution(&self) -> [(crate::fault::FaultExtent, u64); 6] {
        let mut out = [(crate::fault::FaultExtent::Bit, 0u64); 6];
        for (i, (slot, &count)) in out
            .iter_mut()
            .zip(self.failures_by_extent.iter())
            .enumerate()
        {
            *slot = (crate::fault::FaultExtent::ALL[i], count);
        }
        out
    }

    /// Two-sided 95 % binomial confidence half-width on the lifetime
    /// failure probability: `1.96 · √(p(1−p)/n)` with `p` the observed
    /// [`Self::lifetime_failure_probability`] (normal approximation, which
    /// is comfortably valid at the ≥10⁵-sample counts the driver runs).
    pub fn confidence95(&self) -> f64 {
        let p = self.lifetime_failure_probability();
        1.96 * (p * (1.0 - p) / self.samples as f64).sqrt()
    }

    /// Two-sided 99 % binomial confidence half-width on the lifetime
    /// failure probability: `2.576 · √(p(1−p)/n)`. The analytic oracle in
    /// `xed-testkit` gates the Monte-Carlo estimate against closed-form
    /// probabilities at this stricter bound, so a divergence it reports is
    /// statistically significant, not sampling noise.
    pub fn confidence99(&self) -> f64 {
        let p = self.lifetime_failure_probability();
        2.576 * (p * (1.0 - p) / self.samples as f64).sqrt()
    }

    /// Folds another result for the *same scheme* over a *disjoint trial
    /// range* into this one.
    ///
    /// Every field is a plain `u64` tally, so accumulating the range runs
    /// `[0, B), [B, 2B), …` produced by [`MonteCarlo::run_range_timed`]
    /// is **bit-identical** to one batch run over the union of the ranges
    /// — trial randomness is a pure function of `(seed, scheme, trial)`,
    /// never of how the trial space was partitioned. This is the merge
    /// that backs the streaming engine facade (`faultsim::engine`) and
    /// the `xedd` partial-confidence responses.
    pub fn merge_from(&mut self, other: &SchemeResult) {
        debug_assert_eq!(self.scheme, other.scheme, "merging different schemes");
        debug_assert_eq!(
            self.failures_by_year.len(),
            other.failures_by_year.len(),
            "merging different lifetimes"
        );
        self.samples += other.samples;
        self.due += other.due;
        self.sdc += other.sdc;
        for (a, b) in self
            .failures_by_year
            .iter_mut()
            .zip(&other.failures_by_year)
        {
            *a += b;
        }
        for (a, b) in self
            .failures_by_extent
            .iter_mut()
            .zip(&other.failures_by_extent)
        {
            *a += b;
        }
    }
}

/// One classifier decision inside a replayed trial ([`MonteCarlo::replay_trial`]).
#[derive(Debug, Clone, PartialEq)]
pub struct TrialStep {
    /// Arrival time of the evaluated fault, in hours since system start.
    pub time_hours: f64,
    /// Global chip index the fault struck; `None` on the isolated-fault
    /// fast path (the verdict is chip-independent there, and the replay
    /// mirrors the production loop draw-for-draw).
    pub chip: Option<u32>,
    /// Spatial extent of the evaluated fault.
    pub extent: crate::fault::FaultExtent,
    /// Persistence of the evaluated fault.
    pub persistence: Persistence,
    /// Faults still active (unexpired, survived) when this one arrived.
    pub active: usize,
    /// The classifier's verdict for this access.
    pub verdict: Verdict,
}

/// Failure record of a replayed trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialFailure {
    /// `true` for a detected-uncorrectable failure, `false` for silent
    /// data corruption.
    pub due: bool,
    /// Year bucket the failure falls in (clamped like the aggregate run).
    pub year: usize,
    /// Extent index (per [`crate::fault::FaultExtent::ALL`]) of the fault
    /// whose arrival triggered the failure.
    pub extent_index: usize,
}

/// Deterministic single-trial evaluation: the full decision timeline of
/// trial `trial`, exactly as the aggregate run scored it.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialReplay {
    /// The replayed scheme.
    pub scheme: Scheme,
    /// The replayed trial index.
    pub trial: u64,
    /// `true` if the lifetime drew zero faults (no steps).
    pub zero_fault: bool,
    /// Every classifier decision, in arrival order. Evaluation stops at
    /// the first failure, like the production loop.
    pub steps: Vec<TrialStep>,
    /// The failure that ended the trial, if any.
    pub failure: Option<TrialFailure>,
}

/// Throughput and scheduler counters for one Monte-Carlo invocation.
///
/// Everything here is *metadata*: the simulated [`SchemeResult`]s are
/// bit-identical regardless of threads or timing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunStats {
    /// Wall-clock duration of the invocation, in seconds.
    pub wall_seconds: f64,
    /// Trials simulated per wall-clock second (all schemes combined).
    pub samples_per_sec: f64,
    /// Worker threads used.
    pub threads: usize,
    /// Total trials simulated (`samples × schemes`).
    pub samples: u64,
    /// Trials that took the zero-fault fast path (drew a Poisson count of
    /// zero and touched no buffer).
    pub zero_fault_samples: u64,
}

impl RunStats {
    /// Combines this invocation's stats with another's, as if the two had
    /// run back to back: wall times and sample counts add, throughput is
    /// recomputed over the combined run. Used by study binaries that sweep
    /// several configurations and report one aggregate footer.
    ///
    /// The countable fields ride [`Tallies::merge`] — the same commutative
    /// wrapping add the worker partials fold with, so every accumulation
    /// in this module shares one merge primitive.
    #[must_use]
    pub fn merge(&self, other: &RunStats) -> RunStats {
        let counts = Tallies::from_array([self.samples, self.zero_fault_samples]).merge(
            &Tallies::from_array([other.samples, other.zero_fault_samples]),
        );
        let wall_seconds = self.wall_seconds + other.wall_seconds;
        RunStats {
            wall_seconds,
            samples_per_sec: counts.get(0) as f64 / wall_seconds.max(1e-9),
            threads: self.threads.max(other.threads),
            samples: counts.get(0),
            zero_fault_samples: counts.get(1),
        }
    }
}

/// A [`SchemeResult`] plus the [`RunStats`] of the invocation that
/// produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// The (thread-count-invariant) simulation outcome.
    pub result: SchemeResult,
    /// Timing metadata for this invocation.
    pub stats: RunStats,
}

/// The Monte-Carlo simulator.
#[derive(Debug, Clone)]
pub struct MonteCarlo {
    config: MonteCarloConfig,
}

impl MonteCarlo {
    /// Creates a simulator with the given configuration.
    pub fn new(config: MonteCarloConfig) -> Self {
        assert!(config.samples > 0, "need at least one sample");
        assert!(config.years > 0.0, "lifetime must be positive");
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &MonteCarloConfig {
        &self.config
    }

    /// Worker threads this configuration resolves to.
    pub fn threads(&self) -> usize {
        if self.config.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.config.threads
        }
    }

    /// Simulates one scheme across all samples, in parallel.
    ///
    /// The result is a pure function of `(seed, scheme, samples, years,
    /// params, rates)`; thread count only affects wall time.
    pub fn run(&self, scheme: Scheme) -> SchemeResult {
        self.run_timed(scheme).result
    }

    /// Like [`Self::run`], additionally reporting wall time and
    /// samples/sec for this invocation.
    pub fn run_timed(&self, scheme: Scheme) -> RunReport {
        self.run_range_timed(scheme, 0, self.config.samples)
    }

    /// Simulates trials `[first, first + count)` of one scheme, in
    /// parallel, ignoring the configured sample count.
    ///
    /// Trial randomness is a pure function of `(seed, scheme, trial)`, so
    /// accumulating consecutive range runs with
    /// [`SchemeResult::merge_from`] reproduces a single batch run of the
    /// union **bit-for-bit** — the primitive behind the streaming
    /// `faultsim::engine` facade and `xedd`'s partial-confidence
    /// responses. Range boundaries need not align with the 64-lane
    /// bit-sliced blocks or the work-stealing chunks.
    pub fn run_range_timed(&self, scheme: Scheme, first: u64, count: u64) -> RunReport {
        assert!(count > 0, "need at least one trial in the range");
        let (mut results, stats) = self.run_many(&[scheme], first, count);
        // invariant: run_many returns exactly one result per input scheme.
        let result = results.pop().expect("one scheme in, one result out");
        RunReport { result, stats }
    }

    /// Runs every scheme in `schemes` and returns the results in order.
    ///
    /// The schemes share one work-stealing pool: all `schemes.len() ×
    /// samples` trials are interleaved across the workers, so a
    /// seven-scheme sweep saturates the machine instead of running seven
    /// serial barriers. Each result is bit-identical to what a solo
    /// [`Self::run`] of that scheme produces, because every trial's
    /// randomness is keyed by `(seed, scheme, trial)` — never by worker or
    /// batch composition.
    pub fn run_all(&self, schemes: &[Scheme]) -> Vec<SchemeResult> {
        self.run_all_timed(schemes).0
    }

    /// Like [`Self::run_all`], additionally reporting aggregate throughput
    /// stats for the whole invocation.
    pub fn run_all_timed(&self, schemes: &[Scheme]) -> (Vec<SchemeResult>, RunStats) {
        self.run_many(schemes, 0, self.config.samples)
    }

    /// Replays one trial of `scheme` and returns its full decision
    /// timeline.
    ///
    /// This is the deterministic single-shot evaluation hook behind the
    /// golden conformance traces (`xed-trace-v1`): it consumes the *same*
    /// counter-based stream as trial `trial` of [`Self::run`], mirrors the
    /// production loop draw-for-draw (zero-fault fast path, isolated-fault
    /// fast path, expiry bookkeeping, stop-at-first-failure), and so
    /// aggregating `replay_trial` over every trial index reproduces the
    /// aggregate [`SchemeResult`] bit-for-bit (asserted by
    /// `replaying_every_trial_reproduces_the_aggregate_result` below).
    pub fn replay_trial(&self, scheme: Scheme, trial: u64) -> TrialReplay {
        let config = &self.config;
        let years = config.years.ceil() as usize;
        let model = SchemeModel::new(scheme, config.params);
        let sampler = LifetimeSampler::new(
            &config.rates,
            model.config().geometry,
            model.config().total_chips(),
            config.years,
        );
        let streams = Streams::new(
            config
                .seed
                .wrapping_add(scheme.stream_tag().wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );
        let exposure = model.params().transient_exposure_hours;
        let mut replay = TrialReplay {
            scheme,
            trial,
            zero_fault: false,
            steps: Vec::new(),
            failure: None,
        };

        let u0 = streams.split_first(trial);
        if sampler.is_zero_fault(u0) {
            replay.zero_fault = true;
            return replay;
        }
        let mut rng = streams.split_rest(trial);
        let count = sampler.count_split(u0, &mut rng);
        if count == 0 {
            replay.zero_fault = true;
            return replay;
        }
        if count == 1 {
            let (extent, persistence, time_hours) = sampler.sample_mode_time(&mut rng);
            let verdict = model.evaluate_isolated(&mut rng, extent, persistence);
            replay.steps.push(TrialStep {
                time_hours,
                chip: None,
                extent,
                persistence,
                active: 0,
                verdict,
            });
            if matches!(verdict, Verdict::Due | Verdict::Sdc) {
                replay.failure = Some(TrialFailure {
                    due: verdict == Verdict::Due,
                    year: ((time_hours * YEAR_RECIP) as usize).min(years - 1),
                    extent_index: extent.index(),
                });
            }
            return replay;
        }
        let mut events = Vec::new();
        sampler.events_into(count, &mut rng, &mut events);
        let mut active: Vec<(f64, FaultEvent)> = Vec::new();
        let mut view: Vec<FaultEvent> = Vec::new();
        for e in &events {
            active.retain(|&(expiry, _)| expiry > e.time_hours);
            view.clear();
            view.extend(active.iter().map(|&(_, f)| f));
            let verdict = model.evaluate(&mut rng, e, &view);
            replay.steps.push(TrialStep {
                time_hours: e.time_hours,
                chip: Some(e.chip),
                extent: e.fault.extent,
                persistence: e.fault.persistence,
                active: view.len(),
                verdict,
            });
            match verdict {
                Verdict::Due | Verdict::Sdc => {
                    replay.failure = Some(TrialFailure {
                        due: verdict == Verdict::Due,
                        year: ((e.time_hours * YEAR_RECIP) as usize).min(years - 1),
                        extent_index: e.fault.extent.index(),
                    });
                    break;
                }
                Verdict::Corrected | Verdict::Benign => match e.fault.persistence {
                    Persistence::Permanent => active.push((f64::INFINITY, *e)),
                    Persistence::Transient if exposure > 0.0 => {
                        active.push((e.time_hours + exposure, *e));
                    }
                    Persistence::Transient => {}
                },
            }
        }
        replay
    }

    /// The shared engine behind `run`/`run_all`/`run_range_timed`:
    /// simulates trials `[first, first + count)` of every scheme in
    /// `schemes` over one work-stealing pool.
    fn run_many(
        &self,
        schemes: &[Scheme],
        first: u64,
        count: u64,
    ) -> (Vec<SchemeResult>, RunStats) {
        let threads = self.threads();
        let config = &self.config;
        let years = config.years.ceil() as usize;
        let models: Vec<SchemeModel> = schemes
            .iter()
            .map(|&s| SchemeModel::new(s, config.params))
            .collect();
        let chunks_per_scheme = count.div_ceil(STEAL_CHUNK);
        // invariant: chunks_per_scheme ≤ samples and scheme counts are tiny
        // (≤ dozens), so the chunk-id space cannot overflow u64 for any
        // simulation size a machine can actually run.
        let total_chunks = chunks_per_scheme
            .checked_mul(models.len() as u64)
            .expect("chunk-id space overflow");
        let next_chunk = AtomicU64::new(0);

        // Capture the caller's span context before fanning out: the
        // scoped workers are fresh threads, so the tracing thread-local
        // does not propagate on its own.
        let span_ctx = trace::current();

        // Wall-clock timing is reporting-only metadata; the simulation
        // itself stays deterministic.
        let start = Instant::now(); // xed-lint: allow(XL005)
        let per_worker: Vec<Vec<Partial>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let models = &models;
                    let next_chunk = &next_chunk;
                    scope.spawn(move || {
                        worker(
                            models,
                            config,
                            next_chunk,
                            chunks_per_scheme,
                            total_chunks,
                            first,
                            count,
                            years,
                            span_ctx,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    // invariant: workers never panic; a worker panic is a bug
                    // in the simulator itself, so propagate it.
                    h.join().expect("monte-carlo worker panicked")
                })
                .collect()
        });
        let wall_seconds = start.elapsed().as_secs_f64();

        let mut zero_fault_samples = 0u64;
        let mut bitslice_blocks = 0u64;
        let mut bitslice_spills = 0u64;
        let results: Vec<SchemeResult> = schemes
            .iter()
            .enumerate()
            .map(|(si, &scheme)| {
                let mut result = SchemeResult {
                    scheme,
                    samples: count,
                    failures_by_year: vec![0; years],
                    due: 0,
                    sdc: 0,
                    failures_by_extent: [0; 6],
                };
                let mut counts: Tallies<P_SLOTS> = Tallies::new();
                for partials in &per_worker {
                    let p = &partials[si];
                    counts.merge_from(&p.counts);
                    for (a, b) in result.failures_by_year.iter_mut().zip(&p.failures_by_year) {
                        *a += b;
                    }
                }
                result.due = counts.get(P_DUE);
                result.sdc = counts.get(P_SDC);
                zero_fault_samples += counts.get(P_ZERO_FAULT);
                bitslice_blocks += counts.get(P_BITSLICE_BLOCKS);
                bitslice_spills += counts.get(P_BITSLICE_SPILLS);
                for (i, slot) in result.failures_by_extent.iter_mut().enumerate() {
                    *slot = counts.get(P_EXTENT0 + i);
                }
                result
            })
            .collect();

        let samples = count * schemes.len() as u64;
        let stats = RunStats {
            wall_seconds,
            samples_per_sec: samples as f64 / wall_seconds.max(1e-9),
            threads,
            samples,
            zero_fault_samples,
        };

        // Publish-at-merge (DESIGN.md §11): the hot loop accumulated into
        // owned tallies; the global registry counters are bumped once per
        // invocation, here at the join point.
        if xed_telemetry::enabled() {
            metrics::FAULTSIM_RUNS.incr();
            metrics::FAULTSIM_TRIALS.add(samples);
            metrics::FAULTSIM_ZERO_FAULT_TRIALS.add(zero_fault_samples);
            metrics::FAULTSIM_DUE.add(results.iter().map(|r| r.due).sum());
            metrics::FAULTSIM_SDC.add(results.iter().map(|r| r.sdc).sum());
            metrics::FAULTSIM_BITSLICE_BLOCKS.add(bitslice_blocks);
            metrics::FAULTSIM_BITSLICE_SPILLS.add(bitslice_spills);
        }
        (results, stats)
    }
}

/// Slot layout of a [`Partial`]'s fixed-size tally block.
const P_DUE: usize = 0;
const P_SDC: usize = 1;
const P_ZERO_FAULT: usize = 2;
/// First of six failure-extent slots (indexed like
/// [`crate::fault::FaultExtent::ALL`]).
const P_EXTENT0: usize = 3;
/// 64-lane blocks classified by the bit-sliced kernel.
const P_BITSLICE_BLOCKS: usize = P_EXTENT0 + 6;
/// Trials a bit-sliced block spilled to the scalar event machinery
/// (the popcount of the block's `nonzero` word).
const P_BITSLICE_SPILLS: usize = P_BITSLICE_BLOCKS + 1;
const P_SLOTS: usize = P_BITSLICE_SPILLS + 1;

/// Per-worker, per-scheme accumulator. The fixed-size counters live in
/// one owned [`Tallies`] block (plain adds, commutative merge — the
/// foundation of thread-count invariance); only the variable-length
/// per-year failure counts stay a `Vec`.
struct Partial {
    failures_by_year: Vec<u64>,
    counts: Tallies<P_SLOTS>,
}

impl Partial {
    fn new(years: usize) -> Self {
        Self {
            failures_by_year: vec![0; years],
            counts: Tallies::new(),
        }
    }
}

/// Reusable per-worker scratch buffers; allocated once per worker, reused
/// for every trial (the hot loop itself never allocates).
struct Scratch {
    /// Current trial's fault timeline.
    events: Vec<FaultEvent>,
    /// `(expiry time, fault)`: permanent faults never expire; corrected
    /// transient faults linger for the configured exposure window before a
    /// read/scrub cleans them.
    active: Vec<(f64, FaultEvent)>,
    /// The faults of `active`, projected for `SchemeModel::evaluate`.
    view: Vec<FaultEvent>,
}

/// One work-stealing worker: claims chunk ids from `next_chunk` until the
/// space is exhausted. Chunk `c` maps to trials
/// `[range_first + (c % chunks_per_scheme) · STEAL_CHUNK ..][..n]` of
/// scheme `c / chunks_per_scheme`, where the range covers
/// `[range_first, range_first + range_count)`.
#[allow(clippy::too_many_arguments)]
fn worker(
    models: &[SchemeModel],
    config: &MonteCarloConfig,
    next_chunk: &AtomicU64,
    chunks_per_scheme: u64,
    total_chunks: u64,
    range_first: u64,
    range_count: u64,
    years: usize,
    span_ctx: Option<SpanCtx>,
) -> Vec<Partial> {
    let mut partials: Vec<Partial> = models.iter().map(|_| Partial::new(years)).collect();
    let contexts: Vec<(LifetimeSampler<'_>, Streams)> = models
        .iter()
        .map(|m| {
            let sampler = LifetimeSampler::new(
                &config.rates,
                m.config().geometry,
                m.config().total_chips(),
                config.years,
            );
            // Key the stream family by (seed, scheme): trial i of scheme s
            // draws from stream i of this family.
            let streams = Streams::new(
                config
                    .seed
                    .wrapping_add(m.scheme().stream_tag().wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            );
            (sampler, streams)
        })
        .collect();
    let mut scratch = Scratch {
        events: Vec::new(),
        active: Vec::new(),
        view: Vec::new(),
    };
    // One flag load per worker: chunk-grain telemetry costs four atomic
    // updates and two clock reads per STEAL_CHUNK (4096) trials — ~0.1 %
    // of a chunk's work — and vanishes entirely under `--no-telemetry`.
    let telemetry_on = xed_telemetry::enabled();
    loop {
        let c = next_chunk.fetch_add(1, Ordering::Relaxed);
        if c >= total_chunks {
            break;
        }
        let si = (c / chunks_per_scheme) as usize;
        let offset = (c % chunks_per_scheme) * STEAL_CHUNK;
        let first = range_first + offset;
        let count = STEAL_CHUNK.min(range_count - offset);
        let (sampler, streams) = &contexts[si];
        // Chunk wall time is reporting-only metadata (never fed back into
        // the simulation), same as run_many's outer timer. The clock is
        // also read when the calling request is traced, so each chunk can
        // land in the flight recorder as a SchedulerChunk span.
        let chunk_start = (telemetry_on || span_ctx.is_some()).then(Instant::now); // xed-lint: allow(XL005)
        run_trials(
            &models[si],
            sampler,
            streams,
            config.kernel,
            first,
            count,
            years,
            &mut partials[si],
            &mut scratch,
        );
        if let Some(start) = chunk_start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            if telemetry_on {
                metrics::FAULTSIM_STEAL_CHUNKS.incr();
                metrics::FAULTSIM_STEAL_CHUNK_TRIALS.record(count);
                metrics::FAULTSIM_CHUNK_NS.record(ns);
                metrics::FAULTSIM_TRIAL_NS.record(ns / count);
            }
            if let Some(ctx) = span_ctx {
                let t_end = trace::now_ns();
                trace::record_span(SpanEvent {
                    trace_id: ctx.trace_id,
                    span_id: trace::next_span_id(),
                    parent: ctx.span_id,
                    phase: Phase::SchedulerChunk,
                    a: count,
                    t_start: t_end.saturating_sub(ns),
                    t_end,
                });
            }
        }
    }
    partials
}

/// Simulates trials `[first, first + count)` of one scheme into `partial`.
#[allow(clippy::too_many_arguments)]
fn run_trials(
    model: &SchemeModel,
    sampler: &LifetimeSampler<'_>,
    streams: &Streams,
    kernel: TrialKernel,
    first: u64,
    count: u64,
    years: usize,
    partial: &mut Partial,
    scratch: &mut Scratch,
) {
    match kernel {
        TrialKernel::Scalar => {
            for trial in first..first + count {
                // Trial randomness is the split form of stream `trial`:
                // the headline draw decides the zero-fault fast path
                // without paying for generator construction, and
                // `split_rest` carries the (rare) remaining draws. Still a
                // pure function of `(seed, scheme, trial)` — thread-count
                // invariance intact.
                let u0 = streams.split_first(trial);
                run_trial(model, sampler, streams, trial, u0, years, partial, scratch);
            }
        }
        TrialKernel::BitSliced => {
            run_trials_bitsliced(
                model, sampler, streams, first, count, years, partial, scratch,
            );
        }
    }
}

/// The bit-sliced kernel: classifies whole 64-trial blocks.
///
/// Per block, one [`Streams::split_first_block`] fills the 64 headline
/// draws (one Weyl add + SplitMix64 mix per lane — the index multiply is
/// hoisted), [`LifetimeSampler::nonzero_mask`] transposes the zero-fault
/// decisions into one word, a single popcount credits the whole block's
/// zero-fault trials to the tally, and only the set bits spill into
/// [`run_trial`]. Spilled lanes consume *exactly* the draws the scalar
/// kernel would — `u0` is handed over, `split_rest` is keyed by trial —
/// so results are bit-identical to [`TrialKernel::Scalar`] by
/// construction. The tail of a short chunk (< 64 trials) runs scalar.
#[allow(clippy::too_many_arguments)]
fn run_trials_bitsliced(
    model: &SchemeModel,
    sampler: &LifetimeSampler<'_>,
    streams: &Streams,
    first: u64,
    count: u64,
    years: usize,
    partial: &mut Partial,
    scratch: &mut Scratch,
) {
    let end = first + count;
    let mut block = first;
    let mut u0s = [0u64; LANES as usize];
    while block + LANES <= end {
        streams.split_first_block(block, &mut u0s);
        let nonzero = sampler.nonzero_mask(&u0s);
        let spills = u64::from(nonzero.count_ones());
        partial.counts.add(P_ZERO_FAULT, LANES - spills);
        partial.counts.bump(P_BITSLICE_BLOCKS);
        partial.counts.add(P_BITSLICE_SPILLS, spills);
        let mut m = nonzero;
        while m != 0 {
            let lane = m.trailing_zeros() as u64;
            m &= m - 1;
            // indexing: lane < 64 (trailing_zeros of a non-zero u64).
            let u0 = u0s[lane as usize];
            run_trial(
                model,
                sampler,
                streams,
                block + lane,
                u0,
                years,
                partial,
                scratch,
            );
        }
        block += LANES;
    }
    for trial in block..end {
        let u0 = streams.split_first(trial);
        run_trial(model, sampler, streams, trial, u0, years, partial, scratch);
    }
}

/// Evaluates one trial whose headline draw `u0` is already taken. The
/// single per-trial body shared by both kernels — the scalar loop calls it
/// for every trial, the bit-sliced kernel only for spilled lanes (where
/// the `is_zero_fault` test is a redundant-but-cheap recheck that keeps
/// the draw sequence identical).
#[allow(clippy::too_many_arguments)]
fn run_trial(
    model: &SchemeModel,
    sampler: &LifetimeSampler<'_>,
    streams: &Streams,
    trial: u64,
    u0: u64,
    years: usize,
    partial: &mut Partial,
    scratch: &mut Scratch,
) {
    let exposure = model.params().transient_exposure_hours;
    if sampler.is_zero_fault(u0) {
        partial.counts.bump(P_ZERO_FAULT);
        return;
    }
    let mut rng = streams.split_rest(trial);
    let count = sampler.count_split(u0, &mut rng);
    if count == 0 {
        // Unreachable for λ ≤ 30 (is_zero_fault caught it); kept for
        // the chunked large-λ Poisson path, where the headline draw
        // alone cannot prove the count is zero.
        partial.counts.bump(P_ZERO_FAULT);
        return;
    }
    if count == 1 {
        // Single-fault lifetime (~86 % of the non-empty ones): the
        // only evaluation sees an empty active set, where the verdict
        // never depends on the chip or address range the fault struck
        // (`SchemeModel::evaluate_isolated`). Skip those draws, the
        // event buffer, and the expiry/view bookkeeping entirely.
        let (extent, persistence, time_hours) = sampler.sample_mode_time(&mut rng);
        let verdict = model.evaluate_isolated(&mut rng, extent, persistence);
        if matches!(verdict, Verdict::Due | Verdict::Sdc) {
            let year = ((time_hours * YEAR_RECIP) as usize).min(years - 1);
            // indexing: year is clamped to years - 1 above.
            partial.failures_by_year[year] += 1;
            partial.counts.bump(P_EXTENT0 + extent.index());
            partial.counts.bump(if verdict == Verdict::Due {
                P_DUE
            } else {
                P_SDC
            });
        }
        return;
    }
    sampler.events_into(count, &mut rng, &mut scratch.events);
    scratch.active.clear();
    for e in &scratch.events {
        scratch.active.retain(|&(expiry, _)| expiry > e.time_hours);
        scratch.view.clear();
        scratch.view.extend(scratch.active.iter().map(|&(_, f)| f));
        let verdict = model.evaluate(&mut rng, e, &scratch.view);
        match verdict {
            Verdict::Due | Verdict::Sdc => {
                let year = ((e.time_hours * YEAR_RECIP) as usize).min(years - 1);
                // indexing: year is clamped to years - 1 above.
                partial.failures_by_year[year] += 1;
                partial.counts.bump(P_EXTENT0 + e.fault.extent.index());
                partial.counts.bump(if verdict == Verdict::Due {
                    P_DUE
                } else {
                    P_SDC
                });
                break;
            }
            Verdict::Corrected | Verdict::Benign => match e.fault.persistence {
                Persistence::Permanent => scratch.active.push((f64::INFINITY, *e)),
                Persistence::Transient if exposure > 0.0 => {
                    scratch.active.push((e.time_hours + exposure, *e));
                }
                Persistence::Transient => {}
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(samples: u64) -> MonteCarlo {
        MonteCarlo::new(MonteCarloConfig {
            samples,
            seed: 7,
            ..MonteCarloConfig::default()
        })
    }

    #[test]
    fn deterministic_given_seed() {
        let mc = quick(20_000);
        let a = mc.run(Scheme::EccDimm);
        let b = mc.run(Scheme::EccDimm);
        assert_eq!(a, b);
    }

    #[test]
    fn thread_count_never_changes_results() {
        // The tentpole invariant: bit-identical SchemeResult for any
        // thread count (work assignment must not leak into randomness).
        for scheme in [Scheme::Xed, Scheme::EccDimm] {
            let results: Vec<SchemeResult> = [1usize, 3, 8]
                .iter()
                .map(|&threads| {
                    MonteCarlo::new(MonteCarloConfig {
                        samples: 50_000,
                        seed: 7,
                        threads,
                        ..MonteCarloConfig::default()
                    })
                    .run(scheme)
                })
                .collect();
            assert_eq!(results[0], results[1], "{scheme}: 1 vs 3 threads");
            assert_eq!(results[0], results[2], "{scheme}: 1 vs 8 threads");
        }
    }

    #[test]
    fn bit_sliced_kernel_is_bit_identical_to_scalar() {
        // The bit-sliced kernel must reproduce the scalar path bit for
        // bit: same streams, same draws, same verdicts per trial. Sample
        // counts straddle block boundaries (64·k, ±1) so the scalar tail
        // path is exercised too. Combined with
        // `replaying_every_trial_reproduces_the_aggregate_result` (which
        // pins the scalar semantics per trial), aggregate equality here
        // proves the per-trial failure sets are identical — each trial's
        // stream is keyed by (seed, scheme, trial), never by kernel.
        for samples in [6_336u64, 6_337, 6_399] {
            for scheme in [Scheme::EccDimm, Scheme::Xed, Scheme::XedChipkill] {
                let run = |kernel| {
                    MonteCarlo::new(MonteCarloConfig {
                        samples,
                        seed: 7,
                        kernel,
                        ..MonteCarloConfig::default()
                    })
                    .run(scheme)
                };
                assert_eq!(
                    run(TrialKernel::BitSliced),
                    run(TrialKernel::Scalar),
                    "{scheme} at {samples} samples"
                );
            }
        }
    }

    #[test]
    fn merged_range_runs_are_bit_identical_to_one_batch_run() {
        // The streaming contract: accumulating consecutive range runs with
        // merge_from reproduces the batch run of the union bit for bit.
        // Block sizes straddle both the 64-lane bit-sliced blocks and the
        // 4096-trial steal chunks, so unaligned range starts are covered.
        let mc = quick(20_000);
        for scheme in [Scheme::EccDimm, Scheme::Xed] {
            let batch = mc.run(scheme);
            for block in [1_000u64, 4_096, 4_100, 6_337] {
                let mut done = 0u64;
                let mut acc: Option<SchemeResult> = None;
                while done < 20_000 {
                    let n = block.min(20_000 - done);
                    let part = mc.run_range_timed(scheme, done, n).result;
                    match acc.as_mut() {
                        Some(acc) => acc.merge_from(&part),
                        None => acc = Some(part),
                    }
                    done += n;
                }
                assert_eq!(
                    acc.expect("at least one block"),
                    batch,
                    "{scheme} at block size {block}"
                );
            }
        }
    }

    #[test]
    fn range_prefix_matches_smaller_batch_run() {
        // A partial estimate after N trials must equal what a batch run of
        // exactly N samples reports — the bit-reproducibility claim xedd
        // makes for every streamed chunk.
        for n in [4_096u64, 5_000, 12_288] {
            let prefix = quick(20_000).run_range_timed(Scheme::Xed, 0, n).result;
            let batch = quick(n).run(Scheme::Xed);
            assert_eq!(prefix, batch, "prefix of {n} trials");
        }
    }

    #[test]
    fn replaying_every_trial_reproduces_the_aggregate_result() {
        // replay_trial must consume the identical stream the aggregate
        // run does, so folding all replays together is the aggregate
        // SchemeResult, bit for bit. This is what licenses the golden
        // traces to describe "what the simulator did" for a trial.
        let mc = quick(6_000);
        for scheme in [Scheme::EccDimm, Scheme::Xed, Scheme::XedChipkill] {
            let aggregate = mc.run(scheme);
            let years = mc.config().years.ceil() as usize;
            let mut folded = SchemeResult {
                scheme,
                samples: 6_000,
                failures_by_year: vec![0; years],
                due: 0,
                sdc: 0,
                failures_by_extent: [0; 6],
            };
            for trial in 0..6_000 {
                let replay = mc.replay_trial(scheme, trial);
                if let Some(f) = replay.failure {
                    folded.failures_by_year[f.year] += 1;
                    folded.failures_by_extent[f.extent_index] += 1;
                    if f.due {
                        folded.due += 1;
                    } else {
                        folded.sdc += 1;
                    }
                }
            }
            assert_eq!(folded, aggregate, "{scheme}");
        }
    }

    #[test]
    fn replay_timeline_is_consistent() {
        let mc = quick(4_000);
        for trial in 0..4_000 {
            let replay = mc.replay_trial(Scheme::Xed, trial);
            assert_eq!(replay.zero_fault, replay.steps.is_empty());
            // Evaluation stops at the first failure, so a failure verdict
            // may only appear on the final step.
            for step in &replay.steps[..replay.steps.len().saturating_sub(1)] {
                assert!(matches!(step.verdict, Verdict::Benign | Verdict::Corrected));
            }
            if let Some(f) = replay.failure {
                // invariant: failure implies at least one step, and its
                // verdict must agree with the failure record.
                let last = replay.steps.last().expect("failure without steps");
                assert_eq!(f.due, last.verdict == Verdict::Due);
            }
            // Arrival order is non-decreasing in time.
            for pair in replay.steps.windows(2) {
                assert!(pair[0].time_hours <= pair[1].time_hours);
            }
        }
    }

    #[test]
    fn confidence99_is_wider_than_confidence95_by_z_ratio() {
        let r = SchemeResult {
            scheme: Scheme::EccDimm,
            samples: 1_000_000,
            failures_by_year: vec![],
            due: 300,
            sdc: 100,
            failures_by_extent: [0; 6],
        };
        let ratio = r.confidence99() / r.confidence95();
        assert!((ratio - 2.576 / 1.96).abs() < 1e-12, "ratio {ratio}");
    }

    #[test]
    fn run_all_matches_individual_runs() {
        // Batching schemes into one work-stealing pool must not change any
        // scheme's result (streams are keyed by scheme, not batch).
        let mc = quick(30_000);
        let schemes = [Scheme::EccDimm, Scheme::Xed, Scheme::Chipkill];
        let batched = mc.run_all(&schemes);
        for (scheme, batched) in schemes.iter().zip(&batched) {
            assert_eq!(*batched, mc.run(*scheme), "{scheme}");
        }
    }

    #[test]
    fn run_timed_reports_consistent_stats() {
        let mc = quick(40_000);
        let report = mc.run_timed(Scheme::EccDimm);
        assert_eq!(report.result, mc.run(Scheme::EccDimm));
        assert_eq!(report.stats.samples, 40_000);
        assert!(report.stats.wall_seconds > 0.0);
        assert!(report.stats.samples_per_sec > 0.0);
        assert!(report.stats.threads >= 1);
        // λ ≈ 0.29 for a 72-chip system ⇒ ~75 % zero-fault lifetimes.
        let zero_frac = report.stats.zero_fault_samples as f64 / 40_000.0;
        assert!(
            (0.70..0.80).contains(&zero_frac),
            "zero-fault fraction {zero_frac}"
        );
    }

    #[test]
    fn run_stats_merge_adds_and_recomputes_throughput() {
        let a = RunStats {
            wall_seconds: 1.0,
            samples_per_sec: 100.0,
            threads: 2,
            samples: 100,
            zero_fault_samples: 70,
        };
        let b = RunStats {
            wall_seconds: 3.0,
            samples_per_sec: 100.0,
            threads: 4,
            samples: 300,
            zero_fault_samples: 210,
        };
        let m = a.merge(&b);
        assert_eq!(m.samples, 400);
        assert_eq!(m.zero_fault_samples, 280);
        assert_eq!(m.threads, 4);
        assert!((m.wall_seconds - 4.0).abs() < 1e-12);
        assert!((m.samples_per_sec - 100.0).abs() < 1e-9);
    }

    #[test]
    fn confidence95_matches_hand_computed_binomial_half_width() {
        // 400 failures in 10⁴ samples: p = 0.04, and
        // 1.96·√(0.04·0.96/10⁴) = 1.96·1.9595917942…e-3 = 3.8408…e-3.
        let r = SchemeResult {
            scheme: Scheme::EccDimm,
            samples: 10_000,
            failures_by_year: vec![100, 300, 0, 0, 0, 0, 0],
            due: 300,
            sdc: 100,
            failures_by_extent: [0, 0, 0, 0, 400, 0],
        };
        assert_eq!(r.lifetime_failure_probability(), 0.04);
        let expected = 3.840_799_916_684e-3;
        assert!(
            (r.confidence95() - expected).abs() < 1e-9,
            "got {}",
            r.confidence95()
        );
        // And it shrinks with sample count like 1/√n.
        let bigger = SchemeResult {
            samples: 40_000,
            failures_by_year: vec![400, 1200, 0, 0, 0, 0, 0],
            due: 1200,
            sdc: 400,
            ..r.clone()
        };
        assert!((bigger.confidence95() - expected / 2.0).abs() < 1e-9);
    }

    #[test]
    fn ecc_dimm_fails_around_13_percent() {
        // Analytic: P ≈ 1 − exp(−72 · 33.3e-9 · 61320) ≈ 0.137.
        let r = quick(60_000).run(Scheme::EccDimm);
        let p = r.failure_probability(7.0);
        assert!((0.11..0.16).contains(&p), "p = {p}");
    }

    #[test]
    fn xed_orders_of_magnitude_better_than_ecc_dimm() {
        let mc = quick(120_000);
        let ecc = mc.run(Scheme::EccDimm).failure_probability(7.0);
        let xed = mc.run(Scheme::Xed).failure_probability(7.0);
        assert!(xed > 0.0, "xed should see some failures at 120k samples");
        assert!(ecc / xed > 30.0, "ecc {ecc} / xed {xed} = {}", ecc / xed);
    }

    #[test]
    fn chipkill_between_ecc_and_xed() {
        let mc = quick(120_000);
        let ecc = mc.run(Scheme::EccDimm).failure_probability(7.0);
        let ck = mc.run(Scheme::Chipkill).failure_probability(7.0);
        let xed = mc.run(Scheme::Xed).failure_probability(7.0);
        assert!(ck < ecc, "chipkill {ck} vs ecc {ecc}");
        assert!(xed <= ck, "xed {xed} vs chipkill {ck}");
    }

    #[test]
    fn curve_is_monotone() {
        let r = quick(40_000).run(Scheme::EccDimm);
        let c = r.curve();
        assert_eq!(c.len(), 7);
        assert!(c.windows(2).all(|w| w[0] <= w[1]));
        assert!((c[6] - r.failure_probability(7.0)).abs() < 1e-12);
    }

    #[test]
    fn non_ecc_failures_are_silent() {
        let r = quick(30_000).run(Scheme::NonEcc);
        assert_eq!(r.due, 0);
        assert!(r.sdc > 0);
    }

    #[test]
    fn double_chipkill_very_reliable() {
        let r = quick(50_000).run(Scheme::DoubleChipkill);
        assert!(r.failure_probability(7.0) < 2e-3);
    }

    #[test]
    fn coarse_intersection_model_is_more_pessimistic() {
        use crate::schemes::ModelParams;
        let strict = quick(400_000).run(Scheme::Xed).failure_probability(7.0);
        let coarse = MonteCarlo::new(MonteCarloConfig {
            samples: 400_000,
            seed: 7,
            params: ModelParams {
                require_line_intersection: false,
                ..Default::default()
            },
            ..MonteCarloConfig::default()
        })
        .run(Scheme::Xed)
        .failure_probability(7.0);
        assert!(coarse > strict, "coarse {coarse} vs strict {strict}");
    }

    #[test]
    fn transient_exposure_window_increases_failures() {
        use crate::schemes::ModelParams;
        let immediate = quick(400_000).run(Scheme::Xed).failure_probability(7.0);
        // A month-long exposure lets transient faults pair up.
        let exposed = MonteCarlo::new(MonteCarloConfig {
            samples: 400_000,
            seed: 7,
            params: ModelParams {
                transient_exposure_hours: 30.0 * 24.0,
                ..Default::default()
            },
            ..MonteCarloConfig::default()
        })
        .run(Scheme::Xed)
        .failure_probability(7.0);
        assert!(
            exposed >= immediate,
            "exposure must not reduce failures: {exposed} vs {immediate}"
        );
    }
}
