//! The threaded Monte-Carlo simulation driver.
//!
//! Reproduces the paper's methodology (Section III): simulate many
//! independent systems over a 7-year lifetime, record whether and when each
//! encounters an uncorrectable (DUE) or silent (SDC) error, and report the
//! probability of system failure as a function of time.

use crate::event::sample_lifetime;
use crate::fault::{FaultExtent, Persistence};
use crate::fit::{FitRates, HOURS_PER_YEAR, LIFETIME_YEARS};
use crate::schemes::{ModelParams, Scheme, SchemeModel, Verdict};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Monte-Carlo run configuration.
#[derive(Debug, Clone)]
pub struct MonteCarloConfig {
    /// Number of independent systems to simulate per scheme. The paper uses
    /// 10⁹; 10⁶–10⁸ gives tight estimates at the probabilities involved.
    pub samples: u64,
    /// Lifetime in years (paper: 7).
    pub years: f64,
    /// Base RNG seed (runs are deterministic given the seed).
    pub seed: u64,
    /// Worker threads; `0` = use all available cores.
    pub threads: usize,
    /// Fault-response model parameters (on-die ECC, scaling faults, …).
    pub params: ModelParams,
    /// Per-chip FIT rates.
    pub rates: FitRates,
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        Self {
            samples: 1_000_000,
            years: LIFETIME_YEARS,
            seed: 0x5EED,
            threads: 0,
            params: ModelParams::default(),
            rates: FitRates::table_i(),
        }
    }
}

/// Aggregated outcome of simulating one scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeResult {
    /// The simulated scheme.
    pub scheme: Scheme,
    /// Systems simulated.
    pub samples: u64,
    /// Failures (DUE + SDC) whose failure time fell in year `i`
    /// (`failures_by_year[0]` = failures during the first year).
    pub failures_by_year: Vec<u64>,
    /// Total detected-uncorrectable failures.
    pub due: u64,
    /// Total silent failures.
    pub sdc: u64,
    /// Failures attributed to the extent of the fault whose arrival
    /// triggered them, indexed like [`FaultExtent::ALL`].
    pub failures_by_extent: [u64; 6],
}

impl SchemeResult {
    /// Total failed systems.
    pub fn failures(&self) -> u64 {
        self.due + self.sdc
    }

    /// Probability that a system fails within the first `years` years
    /// (cumulative; fractional years round up to the enclosing year bucket).
    pub fn failure_probability(&self, years: f64) -> f64 {
        let buckets = (years.ceil() as usize).min(self.failures_by_year.len());
        let failed: u64 = self.failures_by_year[..buckets].iter().sum();
        failed as f64 / self.samples as f64
    }

    /// Cumulative failure-probability curve, one point per year boundary —
    /// the series plotted in the paper's Figures 1 and 7–10.
    pub fn curve(&self) -> Vec<f64> {
        let mut acc = 0u64;
        self.failures_by_year
            .iter()
            .map(|&f| {
                acc += f;
                acc as f64 / self.samples as f64
            })
            .collect()
    }

    /// Failure share attributed to each triggering fault extent, as
    /// `(extent, count)` pairs in [`FaultExtent::ALL`] order.
    pub fn attribution(&self) -> [(FaultExtent, u64); 6] {
        let mut out = [(FaultExtent::Bit, 0u64); 6];
        for (i, (slot, &count)) in out
            .iter_mut()
            .zip(self.failures_by_extent.iter())
            .enumerate()
        {
            *slot = (FaultExtent::ALL[i], count);
        }
        out
    }

    /// Two-sided 95% binomial confidence half-width on the lifetime
    /// failure probability.
    pub fn confidence95(&self) -> f64 {
        let p = self.failure_probability(f64::INFINITY.min(self.failures_by_year.len() as f64));
        1.96 * (p * (1.0 - p) / self.samples as f64).sqrt()
    }
}

/// The Monte-Carlo simulator.
#[derive(Debug, Clone)]
pub struct MonteCarlo {
    config: MonteCarloConfig,
}

impl MonteCarlo {
    /// Creates a simulator with the given configuration.
    pub fn new(config: MonteCarloConfig) -> Self {
        assert!(config.samples > 0, "need at least one sample");
        assert!(config.years > 0.0, "lifetime must be positive");
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &MonteCarloConfig {
        &self.config
    }

    /// Simulates one scheme across all samples, in parallel.
    pub fn run(&self, scheme: Scheme) -> SchemeResult {
        let threads = if self.config.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.config.threads
        };
        let model = SchemeModel::new(scheme, self.config.params);
        let years = self.config.years.ceil() as usize;
        let per_thread = self.config.samples.div_ceil(threads as u64);

        let partials = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..threads {
                let model = &model;
                let config = &self.config;
                let start = t as u64 * per_thread;
                let count = per_thread.min(config.samples.saturating_sub(start));
                let seed = config
                    .seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(t as u64)
                    .wrapping_add(scheme.ienable());
                handles.push(scope.spawn(move || run_chunk(model, config, seed, count, years)));
            }
            handles
                .into_iter()
                .map(|h| {
                    // invariant: run_chunk never panics; a worker panic is a
                    // bug in the simulator itself, so propagate it.
                    h.join().expect("monte-carlo worker panicked")
                })
                .collect::<Vec<_>>()
        });

        let mut result = SchemeResult {
            scheme,
            samples: self.config.samples,
            failures_by_year: vec![0; years],
            due: 0,
            sdc: 0,
            failures_by_extent: [0; 6],
        };
        for p in partials {
            result.due += p.due;
            result.sdc += p.sdc;
            for (a, b) in result.failures_by_year.iter_mut().zip(&p.failures_by_year) {
                *a += b;
            }
            for (a, b) in result
                .failures_by_extent
                .iter_mut()
                .zip(&p.failures_by_extent)
            {
                *a += b;
            }
        }
        result
    }

    /// Runs every scheme in `schemes` and returns the results in order.
    pub fn run_all(&self, schemes: &[Scheme]) -> Vec<SchemeResult> {
        schemes.iter().map(|&s| self.run(s)).collect()
    }
}

struct Partial {
    failures_by_year: Vec<u64>,
    due: u64,
    sdc: u64,
    failures_by_extent: [u64; 6],
}

fn run_chunk(
    model: &SchemeModel,
    config: &MonteCarloConfig,
    seed: u64,
    count: u64,
    years: usize,
) -> Partial {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut partial = Partial {
        failures_by_year: vec![0; years],
        due: 0,
        sdc: 0,
        failures_by_extent: [0; 6],
    };
    let chips = model.config().total_chips();
    let geom = model.config().geometry;
    let exposure = model.params().transient_exposure_hours;
    // (expiry time, fault): permanent faults never expire; corrected
    // transient faults linger for the configured exposure window before a
    // read/scrub cleans them.
    let mut active: Vec<(f64, crate::event::FaultEvent)> = Vec::new();
    let mut view: Vec<crate::event::FaultEvent> = Vec::new();
    for _ in 0..count {
        let events = sample_lifetime(&mut rng, &config.rates, &geom, chips, config.years);
        if events.is_empty() {
            continue;
        }
        active.clear();
        for e in &events {
            active.retain(|&(expiry, _)| expiry > e.time_hours);
            view.clear();
            view.extend(active.iter().map(|&(_, f)| f));
            let verdict = model.evaluate(&mut rng, e, &view);
            match verdict {
                Verdict::Due | Verdict::Sdc => {
                    let year = ((e.time_hours / HOURS_PER_YEAR) as usize).min(years - 1);
                    partial.failures_by_year[year] += 1;
                    // invariant: FaultExtent::ALL enumerates every variant,
                    // so the position lookup cannot fail.
                    let extent_idx = FaultExtent::ALL
                        .iter()
                        .position(|&x| x == e.fault.extent)
                        .unwrap_or(0);
                    partial.failures_by_extent[extent_idx] += 1;
                    if verdict == Verdict::Due {
                        partial.due += 1;
                    } else {
                        partial.sdc += 1;
                    }
                    break;
                }
                Verdict::Corrected | Verdict::Benign => match e.fault.persistence {
                    Persistence::Permanent => active.push((f64::INFINITY, *e)),
                    Persistence::Transient if exposure > 0.0 => {
                        active.push((e.time_hours + exposure, *e));
                    }
                    Persistence::Transient => {}
                },
            }
        }
    }
    partial
}

/// Helper so schemes hash into distinct seeds.
trait SchemeSeed {
    fn ienable(self) -> u64;
}

impl SchemeSeed for Scheme {
    fn ienable(self) -> u64 {
        match self {
            Scheme::NonEcc => 1,
            Scheme::EccDimm => 2,
            Scheme::Xed => 3,
            Scheme::Chipkill => 4,
            Scheme::ChipkillX4 => 5,
            Scheme::XedChipkill => 6,
            Scheme::DoubleChipkill => 7,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(samples: u64) -> MonteCarlo {
        MonteCarlo::new(MonteCarloConfig {
            samples,
            seed: 7,
            ..MonteCarloConfig::default()
        })
    }

    #[test]
    fn deterministic_given_seed() {
        let mc = quick(20_000);
        let a = mc.run(Scheme::EccDimm);
        let b = mc.run(Scheme::EccDimm);
        assert_eq!(a, b);
    }

    #[test]
    fn ecc_dimm_fails_around_13_percent() {
        // Analytic: P ≈ 1 − exp(−72 · 33.3e-9 · 61320) ≈ 0.137.
        let r = quick(60_000).run(Scheme::EccDimm);
        let p = r.failure_probability(7.0);
        assert!((0.11..0.16).contains(&p), "p = {p}");
    }

    #[test]
    fn xed_orders_of_magnitude_better_than_ecc_dimm() {
        let mc = quick(120_000);
        let ecc = mc.run(Scheme::EccDimm).failure_probability(7.0);
        let xed = mc.run(Scheme::Xed).failure_probability(7.0);
        assert!(xed > 0.0, "xed should see some failures at 120k samples");
        assert!(ecc / xed > 30.0, "ecc {ecc} / xed {xed} = {}", ecc / xed);
    }

    #[test]
    fn chipkill_between_ecc_and_xed() {
        let mc = quick(120_000);
        let ecc = mc.run(Scheme::EccDimm).failure_probability(7.0);
        let ck = mc.run(Scheme::Chipkill).failure_probability(7.0);
        let xed = mc.run(Scheme::Xed).failure_probability(7.0);
        assert!(ck < ecc, "chipkill {ck} vs ecc {ecc}");
        assert!(xed <= ck, "xed {xed} vs chipkill {ck}");
    }

    #[test]
    fn curve_is_monotone() {
        let r = quick(40_000).run(Scheme::EccDimm);
        let c = r.curve();
        assert_eq!(c.len(), 7);
        assert!(c.windows(2).all(|w| w[0] <= w[1]));
        assert!((c[6] - r.failure_probability(7.0)).abs() < 1e-12);
    }

    #[test]
    fn non_ecc_failures_are_silent() {
        let r = quick(30_000).run(Scheme::NonEcc);
        assert_eq!(r.due, 0);
        assert!(r.sdc > 0);
    }

    #[test]
    fn double_chipkill_very_reliable() {
        let r = quick(50_000).run(Scheme::DoubleChipkill);
        assert!(r.failure_probability(7.0) < 2e-3);
    }

    #[test]
    fn coarse_intersection_model_is_more_pessimistic() {
        use crate::schemes::ModelParams;
        let strict = quick(400_000).run(Scheme::Xed).failure_probability(7.0);
        let coarse = MonteCarlo::new(MonteCarloConfig {
            samples: 400_000,
            seed: 7,
            params: ModelParams {
                require_line_intersection: false,
                ..Default::default()
            },
            ..MonteCarloConfig::default()
        })
        .run(Scheme::Xed)
        .failure_probability(7.0);
        assert!(coarse > strict, "coarse {coarse} vs strict {strict}");
    }

    #[test]
    fn transient_exposure_window_increases_failures() {
        use crate::schemes::ModelParams;
        let immediate = quick(400_000).run(Scheme::Xed).failure_probability(7.0);
        // A month-long exposure lets transient faults pair up.
        let exposed = MonteCarlo::new(MonteCarloConfig {
            samples: 400_000,
            seed: 7,
            params: ModelParams {
                transient_exposure_hours: 30.0 * 24.0,
                ..Default::default()
            },
            ..MonteCarloConfig::default()
        })
        .run(Scheme::Xed)
        .failure_probability(7.0);
        assert!(
            exposed >= immediate,
            "exposure must not reduce failures: {exposed} vs {immediate}"
        );
    }
}
