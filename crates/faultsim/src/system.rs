//! Channel/rank/chip organization of the simulated memory systems.

use crate::geometry::DramGeometry;

/// Device width of the DRAM parts a system is built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceWidth {
    /// x8 parts: 8 data pins, 64-bit word per cache-line access.
    X8,
    /// x4 parts: 4 data pins, 32-bit word per cache-line access.
    X4,
}

/// Physical organization of a simulated memory system.
///
/// The paper's baseline (Section III): 4 channels, each with a dual-ranked
/// 4GB DIMM of 2Gb x8 devices — i.e. 2 ranks × 9 chips per channel for
/// ECC-DIMM-based systems, or 2 ranks × 18 x4-chips per channel for
/// chipkill-based systems (Section IX).
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Number of memory channels.
    pub channels: u32,
    /// Ranks per channel.
    pub ranks_per_channel: u32,
    /// DRAM devices per rank (including ECC/check devices).
    pub chips_per_rank: u32,
    /// Device width.
    pub width: DeviceWidth,
    /// Per-device geometry.
    pub geometry: DramGeometry,
}

impl SystemConfig {
    /// The x8 baseline: 4 channels × 2 ranks × 9 chips (ECC-DIMM).
    pub fn x8_ecc_dimm() -> Self {
        Self {
            channels: 4,
            ranks_per_channel: 2,
            chips_per_rank: 9,
            width: DeviceWidth::X8,
            geometry: DramGeometry::x8_2gb(),
        }
    }

    /// The x8 non-ECC baseline: 4 channels × 2 ranks × 8 chips.
    pub fn x8_non_ecc() -> Self {
        Self {
            chips_per_rank: 8,
            ..Self::x8_ecc_dimm()
        }
    }

    /// The x4 chipkill organization: 4 channels × 2 ranks × 18 chips
    /// (16 data + 2 check devices per rank).
    pub fn x4_chipkill() -> Self {
        Self {
            channels: 4,
            ranks_per_channel: 2,
            chips_per_rank: 18,
            width: DeviceWidth::X4,
            geometry: DramGeometry::x4_2gb(),
        }
    }

    /// Total ranks in the system.
    pub fn total_ranks(&self) -> u32 {
        self.channels * self.ranks_per_channel
    }

    /// Total DRAM devices in the system.
    pub fn total_chips(&self) -> u32 {
        self.total_ranks() * self.chips_per_rank
    }

    /// The rank (0-based, global) a chip belongs to. The chip index
    /// must be in range; checked in debug builds only so the trial hot
    /// loop stays panic-free (samplers only emit in-range chips).
    pub fn rank_of(&self, chip: u32) -> u32 {
        debug_assert!(chip < self.total_chips(), "chip {chip} out of range");
        chip / self.chips_per_rank
    }

    /// The channel a chip belongs to.
    pub fn channel_of(&self, chip: u32) -> u32 {
        self.rank_of(chip) / self.ranks_per_channel
    }

    /// Index of the chip within its rank.
    pub fn slot_of(&self, chip: u32) -> u32 {
        chip % self.chips_per_rank
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::x8_ecc_dimm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x8_baseline_has_72_chips() {
        let s = SystemConfig::x8_ecc_dimm();
        assert_eq!(s.total_chips(), 72);
        assert_eq!(s.total_ranks(), 8);
    }

    #[test]
    fn x4_chipkill_has_144_chips() {
        let s = SystemConfig::x4_chipkill();
        assert_eq!(s.total_chips(), 144);
    }

    #[test]
    fn chip_addressing() {
        let s = SystemConfig::x8_ecc_dimm();
        // chip 0..9 = rank 0 (channel 0), 9..18 = rank 1 (channel 0), ...
        assert_eq!(s.rank_of(0), 0);
        assert_eq!(s.rank_of(8), 0);
        assert_eq!(s.rank_of(9), 1);
        assert_eq!(s.channel_of(9), 0);
        assert_eq!(s.channel_of(18), 1);
        assert_eq!(s.slot_of(13), 4);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic)]
    fn rank_of_out_of_range_panics() {
        SystemConfig::x8_ecc_dimm().rank_of(72);
    }

    #[test]
    fn non_ecc_has_64_chips() {
        assert_eq!(SystemConfig::x8_non_ecc().total_chips(), 64);
    }
}
