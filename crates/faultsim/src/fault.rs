//! Fault extents, persistence, and address-range intersection.
//!
//! Following FaultSim, a fault is represented by the *range* of device
//! addresses it corrupts: a specific bit, one 64-bit word, one column
//! (the same column of every row of a bank), one row, one bank, or the
//! whole chip. Two faults in different chips of the same ECC codeword
//! domain threaten the system only if their ranges *intersect* — i.e. some
//! cache-line address reads corrupted data from both chips at once.

use crate::geometry::DramGeometry;
use rand::Rng;
use std::fmt;

/// How much of the device a fault corrupts.
///
/// Table I's "multi-bank" and "multi-rank" modes are both modeled as
/// [`FaultExtent::Chip`]: a fault in shared device circuitry that corrupts
/// the entire device (the conservative single-device interpretation; see
/// DESIGN.md §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultExtent {
    /// A single bit.
    Bit,
    /// A single on-die ECC word (64 bits on x8 devices).
    Word,
    /// One column of a bank (the same word index in every row).
    Column,
    /// One row of a bank.
    Row,
    /// One whole bank.
    Bank,
    /// The entire device (multi-bank and multi-rank modes).
    Chip,
}

impl FaultExtent {
    /// All extents, in increasing size order.
    pub const ALL: [FaultExtent; 6] = [
        FaultExtent::Bit,
        FaultExtent::Word,
        FaultExtent::Column,
        FaultExtent::Row,
        FaultExtent::Bank,
        FaultExtent::Chip,
    ];

    /// The extent's position in [`FaultExtent::ALL`], as a `const`
    /// O(1) lookup (`FaultExtent::ALL[e.index()] == e` for every extent).
    ///
    /// The Monte-Carlo driver indexes its per-extent failure counters with
    /// this on every failure; it replaces an `ALL.iter().position(..)`
    /// linear scan in that hot path.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// `true` if the extent corrupts more than one bit — i.e. defeats a
    /// per-word SECDED code.
    pub fn is_multi_bit(self) -> bool {
        !matches!(self, FaultExtent::Bit)
    }

    /// `true` if the extent spans multiple cache lines, so Inter-Line Fault
    /// Diagnosis (paper Section VI-A) can identify the faulty chip by
    /// streaming neighboring lines.
    pub fn spans_lines(self) -> bool {
        matches!(
            self,
            FaultExtent::Column | FaultExtent::Row | FaultExtent::Bank | FaultExtent::Chip
        )
    }
}

impl fmt::Display for FaultExtent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultExtent::Bit => "bit",
            FaultExtent::Word => "word",
            FaultExtent::Column => "column",
            FaultExtent::Row => "row",
            FaultExtent::Bank => "bank",
            FaultExtent::Chip => "chip",
        };
        f.write_str(s)
    }
}

/// Whether the underlying fault mechanism persists.
///
/// Note that even a *transient* fault leaves corrupted cells behind until
/// they are rewritten; the distinction matters for diagnosis (a transient
/// word fault cannot be reproduced by Intra-Line diagnosis, paper §VI-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Persistence {
    /// One-shot upset (e.g. particle strike); not reproducible on re-read
    /// after correction.
    Transient,
    /// Hard fault; every access to the range returns corrupted data.
    Permanent,
}

/// The device-address range a fault corrupts. `None` fields are wildcards
/// ("all banks", "all rows", …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct FaultRange {
    /// Bank index, or `None` for all banks.
    pub bank: Option<u32>,
    /// Row index within the bank, or `None` for all rows.
    pub row: Option<u32>,
    /// Column (word) index within the row, or `None` for all columns.
    pub col: Option<u32>,
    /// Bit index within the word, or `None` for all bits.
    pub bit: Option<u32>,
}

impl FaultRange {
    /// Samples a random concrete range of the given extent within `geom`.
    ///
    /// Constant draw shape: all four coordinates are drawn (in bank, row,
    /// column, bit order) for *every* extent, and the extent then selects
    /// which become wildcards. The wildcard draws are discarded, so the
    /// distribution is the same as drawing only the pinned fields — but
    /// the Monte-Carlo hot loop sees four cheap masked draws and four
    /// branch-free selects instead of a six-way dispatch that mispredicts
    /// on almost every (randomly distributed) event.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R, extent: FaultExtent, geom: &DramGeometry) -> Self {
        // Bitmask per field over extent indices (Bit=0 … Chip=5): which
        // extents pin that coordinate.
        const PIN_BANK: u32 = 0b011111; // all but Chip
        const PIN_ROW: u32 = 0b001011; // Bit, Word, Row
        const PIN_COL: u32 = 0b000111; // Bit, Word, Column
        const PIN_BIT: u32 = 0b000001; // Bit
        let bank = rng.gen_range(0..geom.banks);
        let row = rng.gen_range(0..geom.rows);
        let col = rng.gen_range(0..geom.cols);
        let bit = rng.gen_range(0..geom.word_bits);
        let e = extent.index() as u32;
        FaultRange {
            bank: (PIN_BANK >> e & 1 != 0).then_some(bank),
            row: (PIN_ROW >> e & 1 != 0).then_some(row),
            col: (PIN_COL >> e & 1 != 0).then_some(col),
            bit: (PIN_BIT >> e & 1 != 0).then_some(bit),
        }
    }

    /// Intersection of two ranges, or `None` if they share no address.
    pub fn intersect(&self, other: &FaultRange) -> Option<FaultRange> {
        fn field(a: Option<u32>, b: Option<u32>) -> Result<Option<u32>, ()> {
            match (a, b) {
                (None, x) | (x, None) => Ok(x),
                (Some(x), Some(y)) if x == y => Ok(Some(x)),
                _ => Err(()),
            }
        }
        Some(FaultRange {
            bank: field(self.bank, other.bank).ok()?,
            row: field(self.row, other.row).ok()?,
            col: field(self.col, other.col).ok()?,
            bit: field(self.bit, other.bit).ok()?,
        })
    }

    /// `true` if the two ranges share at least one address.
    pub fn overlaps(&self, other: &FaultRange) -> bool {
        self.intersect(other).is_some()
    }

    /// `true` if the two ranges corrupt a common *cache line* (bank, row and
    /// column all overlap) — the condition under which two faulty chips
    /// contribute errors to the same ECC codeword, regardless of which bit
    /// within the word each corrupts.
    pub fn shares_line(&self, other: &FaultRange) -> bool {
        let a = FaultRange { bit: None, ..*self };
        let b = FaultRange {
            bit: None,
            ..*other
        };
        a.overlaps(&b)
    }
}

/// A concrete fault in one device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fault {
    /// Extent class.
    pub extent: FaultExtent,
    /// Transient or permanent mechanism.
    pub persistence: Persistence,
    /// Concrete address range.
    pub range: FaultRange,
}

impl Fault {
    /// Samples a concrete fault of the given mode within `geom`.
    pub fn sample<R: Rng + ?Sized>(
        rng: &mut R,
        extent: FaultExtent,
        persistence: Persistence,
        geom: &DramGeometry,
    ) -> Self {
        Self {
            extent,
            persistence,
            range: FaultRange::sample(rng, extent, geom),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn g() -> DramGeometry {
        DramGeometry::x8_2gb()
    }

    #[test]
    fn sampled_range_shape_matches_extent() {
        let mut rng = StdRng::seed_from_u64(1);
        let geom = g();
        for _ in 0..50 {
            let r = FaultRange::sample(&mut rng, FaultExtent::Bit, &geom);
            assert!(r.bank.is_some() && r.row.is_some() && r.col.is_some() && r.bit.is_some());
            let r = FaultRange::sample(&mut rng, FaultExtent::Row, &geom);
            assert!(r.bank.is_some() && r.row.is_some() && r.col.is_none() && r.bit.is_none());
            let r = FaultRange::sample(&mut rng, FaultExtent::Chip, &geom);
            assert_eq!(r, FaultRange::default());
        }
    }

    #[test]
    fn chip_range_overlaps_everything() {
        let mut rng = StdRng::seed_from_u64(2);
        let geom = g();
        let chip = FaultRange::sample(&mut rng, FaultExtent::Chip, &geom);
        for extent in FaultExtent::ALL {
            let r = FaultRange::sample(&mut rng, extent, &geom);
            assert!(chip.overlaps(&r));
            assert!(r.overlaps(&chip), "overlap must be symmetric");
        }
    }

    #[test]
    fn overlap_is_reflexive_and_symmetric() {
        let mut rng = StdRng::seed_from_u64(3);
        let geom = g();
        for _ in 0..200 {
            let e1 = FaultExtent::ALL[rng.gen_range(0..6)];
            let e2 = FaultExtent::ALL[rng.gen_range(0..6)];
            let a = FaultRange::sample(&mut rng, e1, &geom);
            let b = FaultRange::sample(&mut rng, e2, &geom);
            assert!(a.overlaps(&a));
            assert_eq!(a.overlaps(&b), b.overlaps(&a));
            assert_eq!(a.intersect(&b), b.intersect(&a));
        }
    }

    #[test]
    fn rows_in_same_bank_do_not_overlap() {
        let a = FaultRange {
            bank: Some(1),
            row: Some(10),
            col: None,
            bit: None,
        };
        let b = FaultRange {
            bank: Some(1),
            row: Some(11),
            col: None,
            bit: None,
        };
        assert!(!a.overlaps(&b));
    }

    #[test]
    fn row_and_column_cross_in_same_bank() {
        let row = FaultRange {
            bank: Some(2),
            row: Some(7),
            col: None,
            bit: None,
        };
        let col = FaultRange {
            bank: Some(2),
            row: None,
            col: Some(99),
            bit: None,
        };
        let x = row.intersect(&col).unwrap();
        assert_eq!(
            x,
            FaultRange {
                bank: Some(2),
                row: Some(7),
                col: Some(99),
                bit: None
            }
        );
        let other_bank = FaultRange {
            bank: Some(3),
            row: None,
            col: Some(99),
            bit: None,
        };
        assert!(!row.overlaps(&other_bank));
    }

    #[test]
    fn bits_in_same_word_share_line_but_not_address() {
        let a = FaultRange {
            bank: Some(0),
            row: Some(0),
            col: Some(0),
            bit: Some(3),
        };
        let b = FaultRange {
            bank: Some(0),
            row: Some(0),
            col: Some(0),
            bit: Some(5),
        };
        assert!(!a.overlaps(&b));
        assert!(a.shares_line(&b));
    }

    #[test]
    fn intersection_is_associative_on_samples() {
        let mut rng = StdRng::seed_from_u64(4);
        let geom = g();
        for _ in 0..200 {
            let (e1, e2, e3) = (
                FaultExtent::ALL[rng.gen_range(0..6)],
                FaultExtent::ALL[rng.gen_range(0..6)],
                FaultExtent::ALL[rng.gen_range(0..6)],
            );
            let a = FaultRange::sample(&mut rng, e1, &geom);
            let b = FaultRange::sample(&mut rng, e2, &geom);
            let c = FaultRange::sample(&mut rng, e3, &geom);
            let ab_c = a.intersect(&b).and_then(|x| x.intersect(&c));
            let a_bc = b.intersect(&c).and_then(|x| x.intersect(&a));
            assert_eq!(ab_c, a_bc);
        }
    }

    #[test]
    fn extent_index_round_trips_all() {
        for (i, e) in FaultExtent::ALL.iter().enumerate() {
            assert_eq!(e.index(), i, "{e}: index must match ALL position");
            assert_eq!(FaultExtent::ALL[e.index()], *e);
        }
        // Compile-time guarantee the hot path leans on.
        const _: () = assert!(FaultExtent::Chip.index() == 5);
    }

    #[test]
    fn extent_predicates() {
        assert!(!FaultExtent::Bit.is_multi_bit());
        assert!(FaultExtent::Word.is_multi_bit());
        assert!(!FaultExtent::Word.spans_lines());
        assert!(FaultExtent::Column.spans_lines());
        assert!(FaultExtent::Chip.spans_lines());
    }

    #[test]
    fn display_names() {
        assert_eq!(FaultExtent::Bank.to_string(), "bank");
        assert_eq!(FaultExtent::Chip.to_string(), "chip");
    }
}
