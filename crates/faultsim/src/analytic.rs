//! Closed-form reliability estimates used to cross-check the Monte-Carlo.
//!
//! These implement the first-order ("rare event") approximations of the
//! schemes' failure probabilities, plus the paper's Table III and Table IV
//! budgets. They deliberately mirror the Monte-Carlo response model so the
//! two can be compared in tests and in `EXPERIMENTS.md`.

use crate::fault::FaultExtent;
use crate::fit::{FitRates, HOURS_PER_YEAR};
use crate::geometry::DramGeometry;
use crate::scaling::binomial;
use crate::system::SystemConfig;

/// Probability that two independent uniformly-placed fault ranges of the
/// given extents intersect at a common cache line of one device geometry.
///
/// Bit and word extents are treated identically here (a line is the unit of
/// intersection).
pub fn p_line_overlap(a: FaultExtent, b: FaultExtent, g: &DramGeometry) -> f64 {
    use FaultExtent::*;
    let banks = g.banks as f64;
    let rows = g.rows as f64;
    let cols = g.cols as f64;
    // Normalize Bit to Word: both occupy a single line.
    let norm = |e: FaultExtent| if e == Bit { Word } else { e };
    let (a, b) = (norm(a), norm(b));
    // Symmetric: order so the smaller extent comes first.
    let (a, b) = if a <= b { (a, b) } else { (b, a) };
    match (a, b) {
        (Chip, _) | (_, Chip) => 1.0,
        (Bank, Bank) => 1.0 / banks,
        (Row, Bank) | (Column, Bank) | (Word, Bank) => 1.0 / banks,
        (Row, Row) => 1.0 / (banks * rows),
        (Column, Row) => 1.0 / banks,
        (Column, Column) => 1.0 / (banks * cols),
        (Word, Row) => 1.0 / (banks * rows),
        (Word, Column) => 1.0 / (banks * cols),
        (Word, Word) => 1.0 / (banks * rows * cols),
        // invariant: unreachable — norm maps Bit to Word and the sort puts
        // the smaller extent first, so only the ordered pairs above occur.
        // The fallback is the finest (word) granularity, the conservative
        // (smallest-probability) choice, instead of a panicking arm.
        _ => 1.0 / (banks * rows * cols),
    }
}

/// Probability that `n` independently, uniformly placed fault ranges of
/// the given extents all intersect at one common cache line.
///
/// At line granularity each extent constrains a subset of the fields
/// (bank, row, column); `k` ranges constraining a field of size `N` agree
/// with probability `N^-(k-1)`, and fields are independent — so the n-way
/// overlap probability factorizes exactly.
pub fn p_line_overlap_n(extents: &[FaultExtent], g: &DramGeometry) -> f64 {
    use FaultExtent::*;
    let mut k_bank = 0u32;
    let mut k_row = 0u32;
    let mut k_col = 0u32;
    for &e in extents {
        let (b, r, c) = match e {
            Bit | Word => (1, 1, 1),
            Column => (1, 0, 1),
            Row => (1, 1, 0),
            Bank => (1, 0, 0),
            Chip => (0, 0, 0),
        };
        k_bank += b;
        k_row += r;
        k_col += c;
    }
    let field = |k: u32, n: f64| if k > 1 { n.powi(1 - k as i32) } else { 1.0 };
    field(k_bank, g.banks as f64) * field(k_row, g.rows as f64) * field(k_col, g.cols as f64)
}

/// Per-chip probability that a fault of the given extent/persistence class
/// arrives within `hours` (first-order: rate × time).
fn p_mode(rates: &FitRates, extent: FaultExtent, transient: bool, hours: f64) -> f64 {
    use crate::fault::Persistence::*;
    rates.fit_for(extent, if transient { Transient } else { Permanent }) * 1e-9 * hours
}

/// First-order probability that an ECC-DIMM (or any scheme defeated by a
/// single multi-bit chip fault) fails within `years`.
pub fn p_fail_single_fault(rates: &FitRates, total_chips: u32, years: f64) -> f64 {
    let hours = years * HOURS_PER_YEAR;
    1.0 - (-(rates.large_fault_fit() * 1e-9 * hours * total_chips as f64)).exp()
}

/// First-order probability that an erasure/symbol scheme tolerating one
/// chip fails within `years` because **two distinct** chips in one
/// protection domain develop faults that intersect at a common line.
///
/// Only the *cross-chip* pairing is a failure mode; two faults on the
/// same chip merge into a single erasure the scheme still corrects. The
/// derivation is spelled out inline so the term-counting can be audited
/// against the Monte-Carlo response model.
pub fn p_fail_double_fault(
    rates: &FitRates,
    config: &SystemConfig,
    domain_chips: u32,
    domains: u32,
    years: f64,
) -> f64 {
    let hours = years * HOURS_PER_YEAR;
    let g = &config.geometry;
    let large: Vec<FaultExtent> = FaultExtent::ALL
        .into_iter()
        .filter(|e| e.is_multi_bit())
        .collect();

    // --- Derivation --------------------------------------------------
    //
    // Same-chip term: identically zero, not merely neglected. A second
    // fault on an already-faulty chip widens one erasure; the domain
    // still has a single faulty chip, within the correction budget. The
    // Monte-Carlo response model encodes the same fact by filtering
    // `a.chip != e.chip` in `SchemeModel::concurrent_chips`, so the two
    // sides of the analytic-vs-MC comparison agree term for term.
    //
    // Cross-chip term: fix an ordered pair of distinct chips (c₁, c₂)
    // and fault extents (e₁ on c₁, e₂ on c₂). To first order in the
    // per-chip mode probabilities p(e) = FIT(e)·10⁻⁹·hours:
    //   · permanent × permanent faults coexist regardless of arrival
    //     order: contribution ov(e₁,e₂) · p_P(e₁) · p_P(e₂);
    //   · permanent + transient coexist only when the transient arrives
    //     second (a corrected transient is scrubbed away); by
    //     exchangeability of arrival order that is half the mass:
    //     contribution ov · (p_P(e₁)p_T(e₂) + p_T(e₁)p_P(e₂)) / 2;
    //   · transient × transient pairs require two un-scrubbed transients
    //     to overlap in time — O(exposure/lifetime) smaller — and are
    //     dropped, matching the MC model at zero exposure.
    let mut p_pair_ordered = 0.0f64;
    for &e1 in &large {
        for &e2 in &large {
            let ov = p_line_overlap(e1, e2, g);
            let p1p = p_mode(rates, e1, false, hours);
            let p2p = p_mode(rates, e2, false, hours);
            let p1t = p_mode(rates, e1, true, hours);
            let p2t = p_mode(rates, e2, true, hours);
            p_pair_ordered += ov * (p1p * p2p + (p1p * p2t + p1t * p2p) * 0.5);
        }
    }
    // Chip-pair combinatorics: a physical configuration {(c₁,e₁),(c₂,e₂)}
    // appears exactly twice in the [ordered chips × ordered extents]
    // double sum — as (c₁,c₂,e₁,e₂) and (c₂,c₁,e₂,e₁) — so
    //   per_domain = p_pair_ordered · #ordered-chip-pairs / 2
    //              = p_pair_ordered · 2·C(n,2) / 2
    //              = p_pair_ordered · C(n,2).
    let ordered_chip_pairs = 2.0 * binomial(domain_chips, 2);
    let per_domain = p_pair_ordered * ordered_chip_pairs / 2.0;
    // Domains fail independently; at first order the union bound is a sum
    // (clamped for pathological inputs).
    (per_domain * domains as f64).min(1.0)
}

/// First-order probability that a scheme tolerating **two** chip failures
/// (Double-Chipkill, XED-on-Chipkill) fails within `years` because three
/// chips in one protection domain develop faults intersecting at a common
/// line.
///
/// Persistence accounting: three permanents always coexist; two permanents
/// plus one transient fail only if the transient arrives last (probability
/// 1/3 given all three occur); combinations with ≥2 transients are
/// neglected (corrected transients never coexist).
pub fn p_fail_triple_fault(
    rates: &FitRates,
    config: &SystemConfig,
    domain_chips: u32,
    domains: u32,
    years: f64,
) -> f64 {
    let hours = years * HOURS_PER_YEAR;
    let g = &config.geometry;
    let large: Vec<FaultExtent> = FaultExtent::ALL
        .into_iter()
        .filter(|e| e.is_multi_bit())
        .collect();
    let mut p_specific_triple = 0.0f64;
    for &e1 in &large {
        for &e2 in &large {
            for &e3 in &large {
                let ov = p_line_overlap_n(&[e1, e2, e3], g);
                let (p1p, p1t) = (
                    p_mode(rates, e1, false, hours),
                    p_mode(rates, e1, true, hours),
                );
                let (p2p, p2t) = (
                    p_mode(rates, e2, false, hours),
                    p_mode(rates, e2, true, hours),
                );
                let (p3p, p3t) = (
                    p_mode(rates, e3, false, hours),
                    p_mode(rates, e3, true, hours),
                );
                let ppp = p1p * p2p * p3p;
                let ppt = (p1p * p2p * p3t + p1p * p2t * p3p + p1t * p2p * p3p) / 3.0;
                p_specific_triple += ov * (ppp + ppt);
            }
        }
    }
    let triples = binomial(domain_chips, 3);
    (p_specific_triple * triples * domains as f64).min(1.0)
}

/// The paper's Table IV: XED's residual SDC/DUE budget over 7 years.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct XedVulnerability {
    /// Probability of a transient word fault escaping on-die detection and
    /// defeating both diagnoses → DUE (paper: 6.1×10⁻⁶ per DIMM).
    pub due_word_fault: f64,
    /// Probability of Inter-Line diagnosis misidentifying the faulty chip
    /// under heavy scaling faults → SDC (paper: 1.4×10⁻¹³).
    pub sdc_diagnosis: f64,
    /// Probability of data loss from multi-chip failures (the reliability
    /// floor of a single-erasure scheme; paper: 5.8×10⁻⁴).
    pub multi_chip_loss: f64,
}

/// Computes the Table IV budget.
///
/// * `chips` — chips in the accounting scope (the paper uses one 9-chip
///   DIMM rank; pass 72 for the whole 4-channel system).
/// * `on_die_miss` — multi-bit detection miss rate (0.8%).
pub fn xed_vulnerability(
    rates: &FitRates,
    config: &SystemConfig,
    chips: u32,
    on_die_miss: f64,
    years: f64,
) -> XedVulnerability {
    let hours = years * HOURS_PER_YEAR;
    let p_word_transient = p_mode(rates, FaultExtent::Word, true, hours) * chips as f64;
    let due_word_fault = p_word_transient * on_die_miss;
    // Inter-line misidentification: ≥10% of the 128 lines of a row in a
    // *healthy* chip would need scaling faults. With the paper's screened
    // scaling faults the per-line catch-word probability is p_word_faulty;
    // P(Binomial(128, p) ≥ 13) is ~1e-12 at p = 6.4e-3 — we report the
    // paper's rounded constant scaled per chip count.
    let sdc_diagnosis = 1.4e-13 * chips as f64 / 9.0;
    let domains = config.total_ranks();
    let multi_chip_loss = p_fail_double_fault(rates, config, config.chips_per_rank, domains, years);
    XedVulnerability {
        due_word_fault,
        sdc_diagnosis,
        multi_chip_loss,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fit::LIFETIME_YEARS;

    #[test]
    fn single_fault_matches_paper_magnitude() {
        // ECC-DIMM with on-die ECC: ~0.13 over 7 years for 72 chips.
        let p = p_fail_single_fault(&FitRates::table_i(), 72, LIFETIME_YEARS);
        assert!((0.12..0.15).contains(&p), "p = {p}");
    }

    #[test]
    fn overlap_probability_symmetric_and_bounded() {
        let g = DramGeometry::x8_2gb();
        for a in FaultExtent::ALL {
            for b in FaultExtent::ALL {
                let p1 = p_line_overlap(a, b, &g);
                let p2 = p_line_overlap(b, a, &g);
                assert_eq!(p1, p2, "{a} vs {b}");
                assert!((0.0..=1.0).contains(&p1));
            }
        }
    }

    #[test]
    fn chip_overlaps_everything_always() {
        let g = DramGeometry::x8_2gb();
        for e in FaultExtent::ALL {
            assert_eq!(p_line_overlap(FaultExtent::Chip, e, &g), 1.0);
        }
    }

    #[test]
    fn bank_overlap_is_one_in_eight() {
        let g = DramGeometry::x8_2gb();
        assert_eq!(
            p_line_overlap(FaultExtent::Bank, FaultExtent::Bank, &g),
            0.125
        );
        assert_eq!(
            p_line_overlap(FaultExtent::Row, FaultExtent::Bank, &g),
            0.125
        );
    }

    #[test]
    fn xed_double_fault_floor_near_paper_value() {
        // Paper: multi-chip data loss ≈ 5.8e-4 over 7 years.
        let cfg = SystemConfig::x8_ecc_dimm();
        let p = p_fail_double_fault(&FitRates::table_i(), &cfg, 9, cfg.total_ranks(), 7.0);
        assert!((1e-4..2e-3).contains(&p), "p = {p}");
    }

    #[test]
    fn same_chip_pairs_never_count_as_double_faults() {
        // A 1-chip "domain" has no distinct chip pair: C(1,2) = 0, so the
        // double-fault probability is exactly zero — the same-chip term
        // must not leak in through the extent sum.
        let cfg = SystemConfig::x8_ecc_dimm();
        let p = p_fail_double_fault(&FitRates::table_i(), &cfg, 1, 8, 7.0);
        assert_eq!(p, 0.0);
    }

    #[test]
    fn double_fault_scales_as_cross_chip_pair_count() {
        // Doubling the domain from 9 to 18 chips (same total domains)
        // multiplies the probability by C(18,2)/C(9,2) = 153/36 exactly,
        // because only the cross-chip pair count changes.
        let cfg = SystemConfig::x8_ecc_dimm();
        let rates = FitRates::table_i();
        let p9 = p_fail_double_fault(&rates, &cfg, 9, 4, 7.0);
        let p18 = p_fail_double_fault(&rates, &cfg, 18, 4, 7.0);
        let ratio = p18 / p9;
        assert!((ratio - 153.0 / 36.0).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn chipkill_domain_worse_than_xed_domain() {
        let cfg = SystemConfig::x8_ecc_dimm();
        let rates = FitRates::table_i();
        let xed = p_fail_double_fault(&rates, &cfg, 9, 8, 7.0);
        let ck = p_fail_double_fault(&rates, &cfg, 18, 4, 7.0);
        assert!(ck > xed, "chipkill {ck} vs xed {xed}");
        // Pairs scale as C(18,2)·4 / C(9,2)·8 ≈ 2.1x.
        assert!((1.5..3.0).contains(&(ck / xed)), "ratio {}", ck / xed);
    }

    #[test]
    fn n_way_overlap_consistent_with_pairwise() {
        let g = DramGeometry::x8_2gb();
        for a in FaultExtent::ALL {
            for b in FaultExtent::ALL {
                let pairwise = p_line_overlap(a, b, &g);
                let nway = p_line_overlap_n(&[a, b], &g);
                assert!(
                    (pairwise - nway).abs() < 1e-15,
                    "{a}×{b}: {pairwise} vs {nway}"
                );
            }
        }
        // Singleton and empty degenerate cases.
        assert_eq!(p_line_overlap_n(&[FaultExtent::Row], &g), 1.0);
        assert_eq!(p_line_overlap_n(&[], &g), 1.0);
        // Three banks must agree twice: 1/64.
        let p3 = p_line_overlap_n(&[FaultExtent::Bank; 3], &g);
        assert!((p3 - 1.0 / 64.0).abs() < 1e-15);
    }

    #[test]
    fn triple_fault_matches_double_chipkill_monte_carlo_magnitude() {
        // The Fig. 9 Monte-Carlo measured ≈ 1.8e-5 for Double-Chipkill
        // (36-chip domains, 4 domains).
        let cfg = SystemConfig::x4_chipkill();
        let p = p_fail_triple_fault(&FitRates::table_i(), &cfg, 36, 4, 7.0);
        assert!((4e-6..8e-5).contains(&p), "p = {p}");
        // XED+Chipkill (18-chip domains, 8 of them) must be several times
        // smaller: C(18,3)·8 / C(36,3)·4 ≈ 0.23.
        let p_xed = p_fail_triple_fault(&FitRates::table_i(), &cfg, 18, 8, 7.0);
        assert!(p_xed < p / 2.0, "xed+ck {p_xed} vs dck {p}");
    }

    #[test]
    fn table_iv_budget() {
        let cfg = SystemConfig::x8_ecc_dimm();
        let v = xed_vulnerability(&FitRates::table_i(), &cfg, 9, 0.008, 7.0);
        // Paper: 7.7e-4 transient-word probability per 9-chip DIMM → DUE
        // 6.1e-6.
        assert!(
            (v.due_word_fault - 6.1e-6).abs() / 6.1e-6 < 0.05,
            "{}",
            v.due_word_fault
        );
        assert!(v.sdc_diagnosis < 1e-12);
        assert!(v.multi_chip_loss > v.due_word_fault * 10.0);
    }
}
