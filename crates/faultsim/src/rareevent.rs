//! Importance-sampled rare-event estimation of tail failure probabilities.
//!
//! Plain Monte-Carlo wastes almost every trial on the Table-IV-class
//! schemes: a Double-Chipkill system fails with probability ~10⁻⁸ per
//! lifetime, so resolving it to a usable confidence interval needs ~10¹⁰
//! unweighted trials. This module estimates the same probabilities with
//! two nested variance-reduction layers (derivations in DESIGN.md §14):
//!
//! 1. **Count conditioning.** A scheme that needs at least `k` faults to
//!    fail (see [`min_failing_faults`]) draws its Poisson count from the
//!    truncated distribution `P(N = n | N ≥ k)` and multiplies every
//!    trial's contribution by the analytic factor `P(N ≥ k)`. Trials that
//!    cannot fail are never simulated; the estimator stays exactly
//!    unbiased because those trials contribute zero to the plain-MC mean.
//! 2. **Clique forcing** ([`TailMode::CliqueForced`]). Chipkill-class
//!    failures additionally require `k` *multi-bit* faults on distinct
//!    chips of one protection domain intersecting at a common cache line
//!    (an *A-clique*). The proposal plants such a clique: it tilts `k`
//!    fault modes by their clique weight, places them on distinct chips of
//!    one domain, and conditions their address ranges on sharing a line.
//!    The likelihood ratio is `C(n,k) · ρ / S(x)` where `ρ` — the
//!    probability that `k` independent faults form an A-clique — is exact
//!    and analytic, and `S(x)` counts the A-cliques actually realized in
//!    the trial (≥ 1 by construction).
//!
//! Both layers keep the counter-based `(seed, scheme, trial)` stream
//! discipline of the plain driver: every trial's randomness is a pure
//! function of its index, worker partial sums are folded in chunk order,
//! and the resulting [`TailEstimate`] is **bit-identical for any thread
//! count**.

use crate::analytic::p_line_overlap_n;
use crate::event::{FaultEvent, LifetimeSampler, POISSON_CHUNK};
use crate::fault::{Fault, FaultExtent, FaultRange, Persistence};
use crate::fit::{FitRates, HOURS_PER_YEAR, LIFETIME_YEARS};
use crate::montecarlo::{MonteCarlo, MonteCarloConfig};
use crate::schemes::{ModelParams, Scheme, SchemeModel, Verdict};
use rand::rngs::{StdRng, Streams};
use rand::Rng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use xed_telemetry::registry::metrics;

/// Trials claimed per scheduler steal. Conditioned trials are ~10× the
/// cost of plain ones (no zero-fault fast path), so the chunk is smaller
/// than the plain driver's 4096 while the `fetch_add` stays noise.
const TAIL_CHUNK: u64 = 1024;

/// Largest forced-clique size (Double-Chipkill needs three faults).
const MAX_CLIQUE: usize = 3;

/// Extra stream-key salt separating the rare-event stream family from the
/// plain Monte-Carlo family of the same `(seed, scheme)` — the two engines
/// must never replay each other's draws. Part of the reproducibility
/// contract, like `Scheme::stream_tag`.
const TAIL_STREAM_SALT: u64 = 0x7A11_5EED_CA5C_ADE5;

/// Ceiling of the truncated-count walk past the conditioning threshold.
/// The Poisson pmf decays faster than geometrically once `n > λ`, so for
/// the λ ≤ 30 regime this is unreachable in practice; it bounds the walk
/// against a floating-point stall where the partial sums converge a ulp
/// below the precomputed `P(N ≥ k)`.
const COUNT_WALK_CAP: u32 = 400;

/// How the rare-event engine conditioned a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailMode {
    /// Count conditioning *and* a forced fault clique: trials draw
    /// `N | N ≥ k` and plant `k` multi-bit faults on distinct chips of
    /// one protection domain at a common cache line, reweighted by the
    /// analytic likelihood ratio. The sharpest estimator; requires a
    /// Chipkill-class scheme (`k ≥ 2`) and scaling faults disabled (with
    /// scaling, a single-bit arrival can complete a failure, so the
    /// clique structure no longer covers every failing trial).
    CliqueForced,
    /// Count conditioning only: trials draw `N | N ≥ k` and are otherwise
    /// unweighted except for the `P(N ≥ k)` factor. Valid for every
    /// scheme and parameter set (with λ ≤ 30).
    CountConditioned,
    /// Plain Monte-Carlo (delegates to [`MonteCarlo`]): the fallback when
    /// λ exceeds the truncated-walk regime.
    PlainMc,
}

impl TailMode {
    /// Short stable identifier used in reports and JSON sidecars.
    pub fn label(self) -> &'static str {
        match self {
            TailMode::CliqueForced => "clique-forced",
            TailMode::CountConditioned => "count-conditioned",
            TailMode::PlainMc => "plain-mc",
        }
    }
}

/// Rare-event run configuration (mirrors [`MonteCarloConfig`]).
#[derive(Debug, Clone)]
pub struct TailConfig {
    /// Conditioned trials to simulate per scheme.
    pub samples: u64,
    /// Lifetime in years (paper: 7).
    pub years: f64,
    /// Base RNG seed. Results are a pure function of `(seed, scheme,
    /// samples)` — the thread count never changes them.
    pub seed: u64,
    /// Worker threads; `0` = use all available cores.
    pub threads: usize,
    /// Fault-response model parameters.
    pub params: ModelParams,
    /// Per-chip FIT rates.
    pub rates: FitRates,
    /// Force a specific mode instead of auto-selecting the sharpest valid
    /// one. A forced [`TailMode::CliqueForced`] still falls back to
    /// count conditioning when the scheme or parameters make clique
    /// forcing unsound — the override can weaken the estimator, never
    /// bias it.
    pub force_mode: Option<TailMode>,
}

impl Default for TailConfig {
    fn default() -> Self {
        Self {
            samples: 1_000_000,
            years: LIFETIME_YEARS,
            seed: 0x5EED,
            threads: 0,
            params: ModelParams::default(),
            rates: FitRates::table_i(),
            force_mode: None,
        }
    }
}

/// The importance-sampled estimate for one scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct TailEstimate {
    /// The estimated scheme.
    pub scheme: Scheme,
    /// Conditioning mode the engine actually ran.
    pub mode: TailMode,
    /// Conditioned trials simulated (for [`TailMode::PlainMc`], plain
    /// trials).
    pub samples: u64,
    /// The conditioning threshold `k`: the minimum number of lifetime
    /// faults a failing trial of this scheme can have (0 for plain MC).
    pub min_faults: u32,
    /// `P(N ≥ k)` under the unconditioned Poisson count (1 for plain MC).
    pub conditioning_probability: f64,
    /// `ρ`: probability that `k` independent faults form an A-clique
    /// (0 unless [`TailMode::CliqueForced`]).
    pub clique_rho: f64,
    /// Estimated lifetime failure probability (DUE + SDC).
    pub p_fail: f64,
    /// Estimated lifetime detected-uncorrectable probability.
    pub p_due: f64,
    /// Estimated lifetime silent-corruption probability.
    pub p_sdc: f64,
    /// Raw failing conditioned trials (unweighted count).
    pub failures: u64,
    /// Sample variance of the `p_fail` estimator,
    /// `s²/T` with `s²` the per-trial weight variance.
    pub variance: f64,
    /// Wall-clock seconds of this invocation (metadata; the estimate
    /// itself is deterministic).
    pub wall_seconds: f64,
    /// Worker threads used.
    pub threads: usize,
}

impl TailEstimate {
    /// Two-sided 95 % confidence half-width on [`Self::p_fail`].
    pub fn ci95(&self) -> f64 {
        1.96 * self.variance.sqrt()
    }

    /// Two-sided 99 % confidence half-width on [`Self::p_fail`].
    pub fn ci99(&self) -> f64 {
        2.576 * self.variance.sqrt()
    }

    /// Relative precision: `ci95 / p_fail` (∞ when no failure was seen).
    pub fn relative_ci95(&self) -> f64 {
        if self.p_fail > 0.0 {
            self.ci95() / self.p_fail
        } else {
            f64::INFINITY
        }
    }

    /// Number of *plain* Monte-Carlo trials that would be needed for the
    /// same variance: `p(1−p)/var`. The effective-throughput multiplier
    /// of the importance sampler is this divided by [`Self::samples`].
    pub fn effective_trials(&self) -> f64 {
        if self.variance > 0.0 {
            self.p_fail * (1.0 - self.p_fail) / self.variance
        } else {
            0.0
        }
    }
}

/// The minimum number of lifetime faults a failing trial of `scheme` can
/// contain, for any [`ModelParams`].
///
/// * 1 for the schemes a single multi-bit chip fault defeats (and NonECC,
///   which even a bit fault defeats);
/// * 2 for the single-erasure/single-symbol schemes: with one lifetime
///   fault the driver's evaluation sees an empty active set, where
///   `SchemeModel::evaluate_isolated` never fails these schemes;
/// * 3 for Double-Chipkill: its budget of two chips means a failure needs
///   `concurrent_chips ≥ 3`, i.e. an arrival plus two active faults.
pub fn min_failing_faults(scheme: Scheme) -> u32 {
    match scheme {
        Scheme::NonEcc | Scheme::EccDimm | Scheme::Xed => 1,
        Scheme::Chipkill | Scheme::ChipkillX4 | Scheme::XedChipkill => 2,
        Scheme::DoubleChipkill => 3,
    }
}

/// Which line-address fields (bank, row, column) a fault extent pins.
/// `Bit` pins like `Word` at line granularity (mirrors
/// [`crate::analytic::p_line_overlap_n`]).
const fn line_pins(e: FaultExtent) -> (bool, bool, bool) {
    match e {
        FaultExtent::Bit | FaultExtent::Word => (true, true, true),
        FaultExtent::Column => (true, false, true),
        FaultExtent::Row => (true, true, false),
        FaultExtent::Bank => (true, false, false),
        FaultExtent::Chip => (false, false, false),
    }
}

/// One fault mode eligible for clique membership, with its probability
/// mass `q = FIT_mode / FIT_total` under the unconditioned mode draw.
#[derive(Debug, Clone, Copy)]
struct CliqueMode {
    q: f64,
    extent: FaultExtent,
    persistence: Persistence,
}

/// Precompiled clique-forcing proposal for one scheme.
#[derive(Debug, Clone)]
struct CliquePlan {
    /// Clique size `k` (2 or 3).
    j: usize,
    /// `ρ = Z · (s−1)⋯(s−k+1) / C^(k−1)`: the probability that `k`
    /// independent, unconditioned faults form an A-clique.
    rho: f64,
    /// `Z = Σ q₁⋯q_k · ov(e₁…e_k)` over ordered mode tuples: the
    /// mode/range part of `ρ`, and the normalizer of the *untilted* tuple
    /// distribution.
    z: f64,
    /// Per-tuple target weight `wᵢ = q₁⋯q_k · ov` (sums to `z`).
    weights: Vec<f64>,
    /// Cumulative **proposal** weights (ascending), scanned with
    /// `partition_point` to draw a tuple. Initially the prefix sums of
    /// `weights`; [`Self::apply_tilt`] rebuilds them as `Σ wᵢ·tᵢ`.
    cum: Vec<f64>,
    /// Per-tuple likelihood-ratio factor replacing `ρ` in the trial
    /// weight: `lrᵢ = chipfactor · W̃ / tᵢ` where `W̃ = Σ wᵢ·tᵢ` is the
    /// tilted normalizer. Untilted (`tᵢ = 1`) this is `ρ` for every
    /// tuple, so tilting is a strict generalization.
    lr: Vec<f64>,
    /// The mode tuple of each `cum` entry (`MAX_CLIQUE` slots; entries
    /// past `j` are padding).
    tuples: Vec<[(FaultExtent, Persistence); MAX_CLIQUE]>,
    /// Chips per protection domain (`s`). Domains are contiguous chip
    /// blocks of this span (rank or channel).
    domain_span: u32,
    /// Whether ranges must share a cache line (strict model) or merely
    /// coexist in the domain (coarse model).
    strict: bool,
    /// Time-ordered, persistence-restricted roles: member slots are
    /// assigned in arrival order and every member except the last must be
    /// a **permanent** fault. Sound only with a zero transient-exposure
    /// window, where the active set the evaluator consults contains
    /// permanent faults exclusively — a failing trial then always
    /// contains a permanent-until-last witness, so `S'` stays ≥ 1 on the
    /// support of `f`. Shrinks `Z` (and hence the weight) by the
    /// transient mass of the non-final slots.
    ordered: bool,
}

impl CliquePlan {
    /// Compiles the clique proposal, or `None` when clique forcing is
    /// unsound or degenerate for this scheme/parameter combination. With
    /// `ordered`, non-final clique slots draw only permanent modes (see
    /// [`Self::ordered`]); the caller must ensure the exposure window is
    /// zero before asking for it.
    fn build(model: &SchemeModel, rates: &FitRates, k: u32, ordered: bool) -> Option<CliquePlan> {
        // With scaling faults enabled a single-bit arrival can complete a
        // failure, so failing trials need not contain an all-multi-bit
        // clique — the structural argument below would be unsound.
        if k < 2 || k as usize > MAX_CLIQUE || model.params().scaling.enabled() {
            return None;
        }
        let total = rates.total_fit();
        if total <= 0.0 {
            return None;
        }
        let all_modes: Vec<CliqueMode> = rates
            .rows()
            .iter()
            .filter(|r| r.extent.is_multi_bit())
            .flat_map(|r| {
                [
                    (r.transient_fit, Persistence::Transient),
                    (r.permanent_fit, Persistence::Permanent),
                ]
                .into_iter()
                .filter(|&(fit, _)| fit > 0.0)
                .map(move |(fit, persistence)| CliqueMode {
                    q: fit / total,
                    extent: r.extent,
                    persistence,
                })
            })
            .collect();
        let perm_modes: Vec<CliqueMode> = all_modes
            .iter()
            .copied()
            .filter(|m| m.persistence == Persistence::Permanent)
            .collect();
        // Per-slot mode pools: ordered mode restricts every slot but the
        // last (the arrival that completes the failure) to permanent
        // faults.
        let slot_modes = |slot: usize| -> &[CliqueMode] {
            if ordered && slot + 1 < k as usize {
                &perm_modes
            } else {
                &all_modes
            }
        };
        if (0..k as usize).any(|slot| slot_modes(slot).is_empty()) {
            return None;
        }
        let scheme = model.scheme();
        let config = model.config();
        let domain_span = if scheme.domain_is_channel() {
            config.ranks_per_channel * config.chips_per_rank
        } else {
            config.chips_per_rank
        };
        debug_assert_eq!(domain_span, scheme.domain_chips());
        if domain_span < k {
            return None;
        }
        let strict = model.params().require_line_intersection;
        let j = k as usize;
        let geom = &config.geometry;

        // Enumerate ordered mode j-tuples with an odometer; weight each by
        // ∏ qᵢ times the probability the tuple's ranges share a line.
        let mut cum = Vec::new();
        let mut weights = Vec::new();
        let mut tuples = Vec::new();
        let mut z = 0.0f64;
        let mut idx = [0usize; MAX_CLIQUE];
        let mut extents = [FaultExtent::Chip; MAX_CLIQUE];
        loop {
            let mut w = 1.0f64;
            let mut tuple = [(FaultExtent::Chip, Persistence::Transient); MAX_CLIQUE];
            for slot in 0..j {
                let m = slot_modes(slot)[idx[slot]];
                w *= m.q;
                tuple[slot] = (m.extent, m.persistence);
                extents[slot] = m.extent;
            }
            let ov = if strict {
                p_line_overlap_n(&extents[..j], geom)
            } else {
                1.0
            };
            let w = w * ov;
            if w > 0.0 {
                z += w;
                cum.push(z);
                weights.push(w);
                tuples.push(tuple);
            }
            // Odometer over the per-slot pools, least-significant slot
            // first.
            let mut carry = 0;
            while carry < j {
                idx[carry] += 1;
                if idx[carry] < slot_modes(carry).len() {
                    break;
                }
                idx[carry] = 0;
                carry += 1;
            }
            if carry == j {
                break;
            }
        }
        if z <= 0.0 {
            return None;
        }
        // Chip part: the first clique chip is free (any of the C chips);
        // each further chip must land on a distinct chip of the same
        // domain — (s−1)(s−2)⋯ of the C choices.
        let c_total = config.total_chips() as f64;
        let mut rho = z;
        for i in 1..k {
            rho *= f64::from(domain_span - i) / c_total;
        }
        let lr = vec![rho; tuples.len()];
        Some(CliquePlan {
            j,
            rho,
            z,
            weights,
            cum,
            lr,
            tuples,
            domain_span,
            strict,
            ordered,
        })
    }

    /// Draws one tuple index proportionally to its (possibly tilted)
    /// proposal weight.
    fn draw_index(&self, rng: &mut StdRng) -> usize {
        // invariant: cum is non-empty (build rejects z == 0) and the clamp
        // absorbs the floating-point edge u == total.
        let total = *self.cum.last().expect("build rejects empty tuple sets");
        let u = rng.gen::<f64>() * total;
        self.cum
            .partition_point(|&c| c <= u)
            .min(self.cum.len() - 1)
    }

    /// Re-weights the tuple proposal by per-tuple tilt factors `tᵢ > 0`
    /// (importance tilting): tuples are drawn `∝ wᵢ·tᵢ` and each drawn
    /// tuple's trial weight uses `lrᵢ = chipfactor·W̃/tᵢ` in place of `ρ`.
    /// The estimator stays unbiased for *any* positive tilt because the
    /// support is unchanged and the likelihood ratio is exact; the tilt
    /// only moves variance. Minimal variance sits near `tᵢ ∝ √fᵢ` (the
    /// tuple's conditional failure propensity), which the pilot probe
    /// approximates.
    fn apply_tilt(&mut self, tilts: &[f64]) {
        debug_assert_eq!(tilts.len(), self.weights.len());
        let chip_factor = self.rho / self.z;
        let mut acc = 0.0f64;
        for (i, (&w, &t)) in self.weights.iter().zip(tilts).enumerate() {
            debug_assert!(t > 0.0, "tilt factors must keep the full support");
            acc += w * t;
            self.cum[i] = acc;
        }
        let tilted_norm = acc;
        for (l, &t) in self.lr.iter_mut().zip(tilts) {
            *l = chip_factor * tilted_norm / t;
        }
    }
}

/// Importance tilt over the conditioned fault-count draw, bucketed as
/// `N = k`, `N = k+1`, `N = k+2`, `N ≥ k+3`. Failure propensity usually
/// *rises* with extra unforced faults (any broad-extent arrival can
/// complete a clique), so oversampling the higher buckets — with the
/// exact pmf-ratio reweighting `T̃ / t_b` — trades wasted low-count
/// trials for variance. Unbiased for any positive tilt.
#[derive(Debug, Clone)]
struct CountTilt {
    /// Cumulative tilted bucket masses `Σ P_b·t_b` (ascending).
    cum: [f64; 4],
    /// Per-bucket weight multiplier `T̃ / t_b` applied to the trial weight.
    weight: [f64; 4],
    /// `P(N ≥ k+3)` — normalizer of the lump bucket's in-bucket walk.
    p_lump: f64,
    /// `P(N = k+3)` — the lump walk's starting pmf.
    pmf_lump: f64,
}

/// The per-scheme plan a conditioned run executes.
struct TailPlan<'a> {
    model: SchemeModel,
    sampler: LifetimeSampler<'a>,
    mode: TailMode,
    k: u32,
    /// `P(N ≥ k)`.
    p_ge_k: f64,
    /// `P(N = k)` — the truncated count walk starts here.
    pmf_k: f64,
    lambda: f64,
    hours: f64,
    exposure: f64,
    clique: Option<CliquePlan>,
    /// Count-draw tilt for the clique-forced path (`None` until the pilot
    /// probe installs it, and always `None` for the fallback modes).
    count_tilt: Option<CountTilt>,
}

/// Per-worker reusable buffers, like the plain driver's scratch.
struct Scratch {
    events: Vec<FaultEvent>,
    active: Vec<(f64, FaultEvent)>,
    view: Vec<FaultEvent>,
}

/// Per-chunk accumulator. Chunks are folded in ascending chunk-id order at
/// the join, so the floating-point sums are bit-identical for any thread
/// count.
#[derive(Debug, Clone, Copy, Default)]
struct ChunkSums {
    y: f64,
    y2: f64,
    due: f64,
    sdc: f64,
    failures: u64,
}

impl<'a> TailPlan<'a> {
    /// Draws from the truncated count distribution `P(N = n | N ≥ k)` by
    /// walking the Poisson pmf upward from `k` (exact inverse-CDF).
    fn draw_count(&self, rng: &mut StdRng) -> u32 {
        let target = rng.gen::<f64>() * self.p_ge_k;
        let mut n = self.k;
        let mut pmf = self.pmf_k;
        let mut cdf = pmf;
        // invariant: the pmf decays geometrically once n > λ, so the walk
        // terminates; COUNT_WALK_CAP only guards a floating-point stall.
        while cdf <= target && pmf > 0.0 && n < self.k + COUNT_WALK_CAP {
            n += 1;
            pmf *= self.lambda / f64::from(n);
            cdf += pmf;
        }
        n
    }

    /// Draws the conditioned count through the bucket tilt (when
    /// installed), returning `(n, T̃/t_b)` — the count and the exact
    /// likelihood-ratio multiplier for its bucket.
    fn draw_count_tilted(&self, rng: &mut StdRng) -> (u32, f64) {
        let Some(tilt) = &self.count_tilt else {
            return (self.draw_count(rng), 1.0);
        };
        let total = tilt.cum[3];
        let u = rng.gen::<f64>() * total;
        let b = tilt.cum.partition_point(|&c| c <= u).min(3);
        let n = match b {
            0 => self.k,
            1 => self.k + 1,
            2 => self.k + 2,
            _ => {
                // In-bucket draw from `P(N = n | N ≥ k+3)`: same walk as
                // `draw_count`, started at the lump boundary.
                let target = rng.gen::<f64>() * tilt.p_lump;
                let mut n = self.k + 3;
                let mut pmf = tilt.pmf_lump;
                let mut cdf = pmf;
                while cdf <= target && pmf > 0.0 && n < self.k + COUNT_WALK_CAP {
                    n += 1;
                    pmf *= self.lambda / f64::from(n);
                    cdf += pmf;
                }
                n
            }
        };
        // indexing: b is a partition_point over the 4-entry cum array,
        // clamped to 3 = weight.len() - 1.
        (n, tilt.weight[b])
    }

    /// Plants the forced clique: `j` faults with tilted modes, on distinct
    /// chips of one domain, at a shared cache line (strict model). Pushes
    /// the events into `out` and returns the drawn tuple's index (its
    /// likelihood-ratio factor lives in `plan.lr`).
    fn plant_clique(
        &self,
        plan: &CliquePlan,
        rng: &mut StdRng,
        out: &mut Vec<FaultEvent>,
    ) -> usize {
        let config = self.model.config();
        let geom = &config.geometry;
        let tuple_index = plan.draw_index(rng);
        // indexing: draw_index clamps into cum, and tuples is built in
        // lockstep with cum.
        let tuple = plan.tuples[tuple_index];
        // Distinct chips of one domain: the first is any chip of the
        // system; the rest are drawn without replacement from its
        // (contiguous) domain block.
        let chip0 = rng.gen_range(0..config.total_chips());
        let start = (chip0 / plan.domain_span) * plan.domain_span;
        let mut offsets = [chip0 - start, 0, 0];
        for i in 1..plan.j {
            let mut t = rng.gen_range(0..plan.domain_span - i as u32);
            let mut taken = offsets;
            // indexing: i < j ≤ MAX_CLIQUE, the length of both arrays.
            taken[..i].sort_unstable();
            for &o in &taken[..i] {
                if t >= o {
                    t += 1;
                }
            }
            // indexing: i < j ≤ MAX_CLIQUE, the length of offsets.
            offsets[i] = t;
        }
        let mut times = [0.0f64; MAX_CLIQUE];
        for slot in times.iter_mut().take(plan.j) {
            *slot = rng.gen::<f64>() * self.hours;
        }
        if plan.ordered {
            // Role i must arrive i-th: the permanent-restricted slots come
            // first, the unrestricted final slot lands last. Sorting the
            // iid uniforms and assigning them in slot order is exactly the
            // order statistics of j uniform arrivals, so the joint time
            // density is unchanged up to the j! role permutations that the
            // tuple weight (mode product) already accounts for per ordered
            // tuple.
            // indexing: j ≤ MAX_CLIQUE, the length of times.
            times[..plan.j].sort_unstable_by(f64::total_cmp);
        }
        if plan.strict {
            // Condition all j ranges on sharing one cache line: draw the
            // line's coordinates once and give them to every member that
            // pins that field. Per field, the unconditioned densities
            // contribute (1/N)^k and the overlap probability divides out
            // (1/N)^(k−1), leaving exactly one uniform draw — so this is
            // the exact conditional distribution given a shared line.
            let bank = rng.gen_range(0..geom.banks);
            let row = rng.gen_range(0..geom.rows);
            let col = rng.gen_range(0..geom.cols);
            for i in 0..plan.j {
                // indexing: i < j ≤ MAX_CLIQUE, the common array length.
                let (extent, persistence) = tuple[i];
                // indexing: i < j ≤ MAX_CLIQUE, the common array length.
                let (time_hours, chip) = (times[i], start + offsets[i]);
                let (pin_bank, pin_row, pin_col) = line_pins(extent);
                out.push(FaultEvent {
                    time_hours,
                    chip,
                    fault: Fault {
                        extent,
                        persistence,
                        range: FaultRange {
                            bank: pin_bank.then_some(bank),
                            row: pin_row.then_some(row),
                            col: pin_col.then_some(col),
                            bit: None,
                        },
                    },
                });
            }
        } else {
            // Coarse model: coexistence in the domain is the whole
            // condition, so ranges stay unconditioned.
            for i in 0..plan.j {
                // indexing: i < j ≤ MAX_CLIQUE, the common array length.
                let (extent, persistence) = tuple[i];
                // indexing: i < j ≤ MAX_CLIQUE, the common array length.
                let (time_hours, chip) = (times[i], start + offsets[i]);
                out.push(FaultEvent {
                    time_hours,
                    chip,
                    fault: Fault::sample(rng, extent, persistence, geom),
                });
            }
        }
        tuple_index
    }

    /// Estimates one tuple's conditional failure propensity `f̂ᵢ` — the
    /// probability a trial fails given the forced clique drew this tuple
    /// and no extra faults arrived — by evaluating a synthetic exact-`k`
    /// timeline `rounds` times. Deterministic verdicts settle after the
    /// first batch; only rng-dependent tuples (e.g. XED's on-die-miss
    /// roll) consume the full budget. Feeds the proposal tilt only, so
    /// estimation error cannot bias the estimator.
    fn probe_tuple(
        &self,
        plan: &CliquePlan,
        index: usize,
        rng: &mut StdRng,
        scratch: &mut Scratch,
    ) -> f64 {
        const BATCH: u32 = 64;
        const MIN_ROUNDS: u32 = 512;
        const MAX_ROUNDS: u32 = 2048;
        const TARGET_FAILURES: u32 = 24;
        let tuple = plan.tuples[index];
        let geom = &self.model.config().geometry;
        let mut failures = 0u32;
        let mut rounds = 0u32;
        while rounds < MAX_ROUNDS {
            for _ in 0..BATCH {
                scratch.events.clear();
                for (i, &(extent, persistence)) in tuple.iter().enumerate().take(plan.j) {
                    let fault = if plan.strict {
                        // The canonical shared line: failure propensity is
                        // translation-invariant in the line coordinates.
                        let (pin_bank, pin_row, pin_col) = line_pins(extent);
                        Fault {
                            extent,
                            persistence,
                            range: FaultRange {
                                bank: pin_bank.then_some(0),
                                row: pin_row.then_some(0),
                                col: pin_col.then_some(0),
                                bit: None,
                            },
                        }
                    } else {
                        Fault::sample(rng, extent, persistence, geom)
                    };
                    // Chips 0..j sit in the first domain block
                    // (`domain_span ≥ k` was checked by `build`); slot
                    // order = time order, matching the ordered proposal.
                    scratch.events.push(FaultEvent {
                        time_hours: (i + 1) as f64,
                        chip: i as u32,
                        fault,
                    });
                }
                if self.evaluate_timeline(rng, scratch).is_some() {
                    failures += 1;
                }
            }
            rounds += BATCH;
            // Unanimous batches are (almost surely) deterministic verdicts;
            // mixed ones keep sampling until the propensity is resolved.
            if failures == rounds
                || (rounds >= MIN_ROUNDS && (failures == 0 || failures >= TARGET_FAILURES))
            {
                break;
            }
        }
        f64::from(failures) / f64::from(rounds)
    }

    /// Estimates `P(fail | N ∈ bucket)` for one count bucket by full-trial
    /// simulation: plant a clique through the (still untilted) proposal,
    /// append the bucket's unforced faults, and evaluate — the same
    /// machinery as a real trial, minus the weights. `lump` carries
    /// `(P(N ≥ k+3), P(N = k+3))` to draw in-bucket counts for the open
    /// bucket; `None` uses `fixed_n` exactly.
    fn probe_bucket(
        &self,
        plan: &CliquePlan,
        fixed_n: u32,
        lump: Option<(f64, f64)>,
        rng: &mut StdRng,
        scratch: &mut Scratch,
    ) -> f64 {
        const ROUNDS: u32 = 768;
        let mut failures = 0u32;
        for _ in 0..ROUNDS {
            let n = match lump {
                None => fixed_n,
                Some((p_lump, pmf_start)) => {
                    let target = rng.gen::<f64>() * p_lump;
                    let mut n = fixed_n;
                    let mut pmf = pmf_start;
                    let mut cdf = pmf;
                    while cdf <= target && pmf > 0.0 && n < self.k + COUNT_WALK_CAP {
                        n += 1;
                        pmf *= self.lambda / f64::from(n);
                        cdf += pmf;
                    }
                    n
                }
            };
            scratch.events.clear();
            self.plant_clique(plan, rng, &mut scratch.events);
            self.sampler
                .events_append(n - plan.j as u32, rng, &mut scratch.events);
            scratch
                .events
                .sort_unstable_by(|a, b| a.time_hours.total_cmp(&b.time_hours));
            if self.evaluate_timeline(rng, scratch).is_some() {
                failures += 1;
            }
        }
        f64::from(failures) / f64::from(ROUNDS)
    }

    /// Counts the A-cliques of size `j` among `events`: all members
    /// multi-bit, pairwise-distinct chips, one protection domain, and (in
    /// the strict model) a common cache line. This is the `S(x)` of the
    /// likelihood ratio; computed only for failing trials.
    ///
    /// In `ordered` mode the clique is a time-ordered witness: `events` is
    /// already sorted by arrival time, and every member except the
    /// latest-arriving one must be permanent (the loops visit subsets in
    /// ascending index = ascending time, so "all but the innermost loop's
    /// member" is exactly "all but the latest").
    fn count_cliques(&self, plan: &CliquePlan, events: &[FaultEvent]) -> u64 {
        let strip = |e: &FaultEvent| FaultRange {
            bit: None,
            ..e.fault.range
        };
        let compatible = |a: &FaultEvent, b: &FaultEvent| {
            a.chip != b.chip
                && b.fault.extent.is_multi_bit()
                && self.model.same_domain(a.chip, b.chip)
        };
        let is_perm = |e: &FaultEvent| e.fault.persistence == Persistence::Permanent;
        let mut count = 0u64;
        let n = events.len();
        for i in 0..n {
            // indexing: i < n = events.len().
            let a = &events[i];
            if !a.fault.extent.is_multi_bit() {
                continue;
            }
            // `a` is the earliest member of every subset the inner loops
            // complete, so ordered witnesses need it permanent.
            if plan.ordered && !is_perm(a) {
                continue;
            }
            for l in i + 1..n {
                // indexing: l < n = events.len().
                let b = &events[l];
                if !compatible(a, b) {
                    continue;
                }
                // For triples `b` is the middle member (for pairs it is the
                // last, which ordered mode leaves unrestricted).
                if plan.ordered && plan.j == 3 && !is_perm(b) {
                    continue;
                }
                let ab = if plan.strict {
                    let x = strip(a).intersect(&strip(b));
                    if x.is_none() {
                        continue;
                    }
                    x
                } else {
                    None
                };
                if plan.j == 2 {
                    count += 1;
                    continue;
                }
                for c in events.iter().skip(l + 1) {
                    if !compatible(a, c) || c.chip == b.chip {
                        continue;
                    }
                    if plan.strict {
                        // invariant: ab is Some here — the strict arm above
                        // skipped the pair otherwise.
                        let line = ab.as_ref().expect("strict pair intersection");
                        if line.intersect(&strip(c)).is_none() {
                            continue;
                        }
                    }
                    count += 1;
                }
            }
        }
        count
    }

    /// Runs one conditioned trial; returns its weighted contribution
    /// `(y, verdict)` with `y = 0` and no verdict when the trial survives.
    fn run_trial(
        &self,
        trial: u64,
        streams: &Streams,
        scratch: &mut Scratch,
    ) -> (f64, Option<Verdict>) {
        let mut rng = streams.stream(trial);
        match (&self.clique, self.mode) {
            (Some(plan), TailMode::CliqueForced) => {
                let (n, count_weight) = self.draw_count_tilted(&mut rng);
                // invariant: the count draws return n ≥ k = j, so the
                // subtraction cannot underflow.
                let normal = n - plan.j as u32;
                scratch.events.clear();
                let tuple_index = self.plant_clique(plan, &mut rng, &mut scratch.events);
                self.sampler
                    .events_append(normal, &mut rng, &mut scratch.events);
                scratch
                    .events
                    .sort_unstable_by(|a, b| a.time_hours.total_cmp(&b.time_hours));
                match self.evaluate_timeline(&mut rng, scratch) {
                    Some(verdict) => {
                        let s = self.count_cliques(plan, &scratch.events).max(1);
                        let pairs = choose(u64::from(n), plan.j as u64);
                        let y = self.p_ge_k * count_weight * pairs as f64
                            // indexing: plant_clique's index; lr is built
                            // in lockstep with the tuple arrays.
                            * plan.lr[tuple_index]
                            / s as f64;
                        (y, Some(verdict))
                    }
                    None => (0.0, None),
                }
            }
            _ => {
                let n = self.draw_count(&mut rng);
                self.sampler.events_into(n, &mut rng, &mut scratch.events);
                match self.evaluate_timeline(&mut rng, scratch) {
                    Some(verdict) => (self.p_ge_k, Some(verdict)),
                    None => (0.0, None),
                }
            }
        }
    }

    /// Replays the event timeline against the scheme model — the same
    /// expiry/first-failure loop as the plain driver's multi-fault path.
    fn evaluate_timeline(&self, rng: &mut StdRng, scratch: &mut Scratch) -> Option<Verdict> {
        scratch.active.clear();
        for e in &scratch.events {
            scratch.active.retain(|&(expiry, _)| expiry > e.time_hours);
            scratch.view.clear();
            scratch.view.extend(scratch.active.iter().map(|&(_, f)| f));
            let verdict = self.model.evaluate(rng, e, &scratch.view);
            match verdict {
                Verdict::Due | Verdict::Sdc => return Some(verdict),
                Verdict::Corrected | Verdict::Benign => match e.fault.persistence {
                    Persistence::Permanent => scratch.active.push((f64::INFINITY, *e)),
                    Persistence::Transient if self.exposure > 0.0 => {
                        scratch.active.push((e.time_hours + self.exposure, *e));
                    }
                    Persistence::Transient => {}
                },
            }
        }
        None
    }
}

/// `C(n, k)` in `u64` (clique sizes are ≤ 3, counts are small).
fn choose(n: u64, k: u64) -> u64 {
    match k {
        2 => n * (n - 1) / 2,
        3 => n * (n - 1) * (n - 2) / 6,
        _ => {
            debug_assert!(k <= 1);
            if k == 0 {
                1
            } else {
                n
            }
        }
    }
}

/// The rare-event simulator.
#[derive(Debug, Clone)]
pub struct TailSimulator {
    config: TailConfig,
}

impl TailSimulator {
    /// Creates a simulator with the given configuration.
    pub fn new(config: TailConfig) -> Self {
        assert!(config.samples > 0, "need at least one sample");
        assert!(config.years > 0.0, "lifetime must be positive");
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &TailConfig {
        &self.config
    }

    /// Worker threads this configuration resolves to.
    pub fn threads(&self) -> usize {
        if self.config.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.config.threads
        }
    }

    /// Estimates the tail failure probability of one scheme.
    ///
    /// Auto-selects the sharpest sound mode (clique forcing where valid,
    /// else count conditioning, else plain MC), unless
    /// [`TailConfig::force_mode`] overrides it. The estimate is a pure
    /// function of `(seed, scheme, samples, years, params, rates)` — the
    /// thread count never changes it.
    pub fn run(&self, scheme: Scheme) -> TailEstimate {
        let config = &self.config;
        let model = SchemeModel::new(scheme, config.params);
        let sampler = LifetimeSampler::new(
            &config.rates,
            model.config().geometry,
            model.config().total_chips(),
            config.years,
        );
        let lambda = sampler.lambda();
        let k = min_failing_faults(scheme);

        if lambda > POISSON_CHUNK || config.force_mode == Some(TailMode::PlainMc) {
            return self.run_plain(scheme);
        }
        // xed-lint: allow(XL004) — exact zero-rate sentinel
        if lambda == 0.0 {
            // No faults ever arrive: the tail probability is exactly zero.
            return self.zero_estimate(scheme, k);
        }

        // P(N ≥ k) and P(N = k) for the truncated count draw.
        let exp_neg = (-lambda).exp();
        let mut pmf = exp_neg; // P(N = 0)
        let mut below = 0.0f64;
        for n in 0..k {
            below += pmf;
            pmf *= lambda / f64::from(n + 1);
        }
        let p_ge_k = (1.0 - below).max(0.0);
        // xed-lint: allow(XL004) — clamped to exactly 0 above
        if p_ge_k == 0.0 {
            return self.zero_estimate(scheme, k);
        }

        let clique = match config.force_mode {
            Some(TailMode::CountConditioned) => None,
            _ => {
                // Prefer the time-ordered, persistence-restricted proposal:
                // with a zero exposure window the evaluator's active set
                // holds only permanent faults, so every failing trial
                // carries a permanent-until-last witness and the tighter
                // `Z'` buys variance for free. Any positive window breaks
                // that structural guarantee (a transient can still be
                // active when the completing fault lands), so fall back to
                // unrestricted cliques — which never relied on persistence.
                // xed-lint: allow(XL004) — an exactly-zero configured window
                let restricted = config.params.transient_exposure_hours == 0.0;
                let ordered = if restricted {
                    CliquePlan::build(&model, &config.rates, k, true)
                } else {
                    None
                };
                ordered.or_else(|| CliquePlan::build(&model, &config.rates, k, false))
            }
        };
        let mode = if clique.is_some() {
            TailMode::CliqueForced
        } else {
            TailMode::CountConditioned
        };
        let clique_rho = clique.as_ref().map_or(0.0, |c| c.rho);
        let mut plan = TailPlan {
            model,
            sampler,
            mode,
            k,
            p_ge_k,
            pmf_k: pmf,
            lambda,
            hours: config.years * HOURS_PER_YEAR,
            exposure: config.params.transient_exposure_hours,
            clique,
            count_tilt: None,
        };

        let threads = self.threads();
        let streams = Streams::new(
            config
                .seed
                .wrapping_add(scheme.stream_tag().wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .wrapping_add(TAIL_STREAM_SALT),
        );
        let chunks = config.samples.div_ceil(TAIL_CHUNK);
        let next_chunk = AtomicU64::new(0);

        let start = Instant::now(); // xed-lint: allow(XL005)

        // Pilot probe: tilt both proposals toward where failures actually
        // live (near-optimal tilt is ∝ √f per stratum). Stage 1 measures
        // each tuple's exact-`k` propensity f2ᵢ (e.g. only Word-final
        // tuples can defeat XED's on-die code at N = k); stage 2 measures
        // the per-count-bucket propensity f_b with full trials (extra
        // broad-extent arrivals complete cliques regardless of the forced
        // modes, so propensity rises with N). The tuple tilt uses the
        // composite propensity P(N=k|·)·f2ᵢ + Σ_b P_b·f_b, the count tilt
        // uses √f_b; both carry exact likelihood-ratio reweighting and a
        // floor that keeps the full support, so probe noise moves only
        // variance, never the mean. On schemes where every clique fails
        // deterministically all propensities are 1 and both tilts are the
        // identity. Runs single-threaded on a dedicated deterministic
        // stream (thread-count-invariant), inside the timed region because
        // it is part of the run's cost.
        let pilot: Option<(Vec<f64>, CountTilt)> = plan.clique.as_ref().map(|clique| {
            let mut probe_rng = streams.stream(u64::MAX);
            let mut scratch = Scratch {
                events: Vec::new(),
                active: Vec::new(),
                view: Vec::new(),
            };
            // Conditional bucket probabilities P(N ∈ b | N ≥ k) for
            // buckets {k, k+1, k+2, ≥k+3}.
            let pmf_k1 = pmf * lambda / f64::from(k + 1);
            let pmf_k2 = pmf_k1 * lambda / f64::from(k + 2);
            let pmf_k3 = pmf_k2 * lambda / f64::from(k + 3);
            let p_lump = (p_ge_k - pmf - pmf_k1 - pmf_k2).max(0.0);
            let pb = [
                pmf / p_ge_k,
                pmf_k1 / p_ge_k,
                pmf_k2 / p_ge_k,
                p_lump / p_ge_k,
            ];

            // Stage 1: exact-k tuple propensities.
            let f2: Vec<f64> = (0..clique.tuples.len())
                .map(|i| plan.probe_tuple(clique, i, &mut probe_rng, &mut scratch))
                .collect();

            // Stage 2: count-bucket propensities (skip negligible buckets).
            let mut fb = [0.0f64; 4];
            for b in 1..4usize {
                if pb[b] < 1e-6 {
                    continue;
                }
                let fixed_n = k + b as u32;
                let lump = (b == 3).then_some((p_lump, pmf_k3));
                fb[b] = plan.probe_bucket(clique, fixed_n, lump, &mut probe_rng, &mut scratch);
            }

            let rest: f64 = (1..4).map(|b| pb[b] * fb[b]).sum();
            let tilts: Vec<f64> = f2
                .iter()
                .map(|&f| (pb[0] * f + rest).max(1e-4).sqrt())
                .collect();

            // Exact-k bucket propensity under the *tilted* tuple draw.
            let tilted_mass: f64 = clique.weights.iter().zip(&tilts).map(|(w, t)| w * t).sum();
            fb[0] = clique
                .weights
                .iter()
                .zip(&tilts)
                .zip(&f2)
                .map(|((w, t), f)| w * t * f)
                .sum::<f64>()
                / tilted_mass;

            let tb: [f64; 4] = std::array::from_fn(|b| fb[b].max(1e-4).sqrt());
            let mut cum = [0.0f64; 4];
            let mut acc = 0.0;
            for b in 0..4 {
                acc += pb[b] * tb[b];
                cum[b] = acc;
            }
            let weight: [f64; 4] = std::array::from_fn(|b| acc / tb[b]);
            let count_tilt = CountTilt {
                cum,
                weight,
                p_lump,
                pmf_lump: pmf_k3,
            };
            (tilts, count_tilt)
        });
        if let Some((tilts, count_tilt)) = pilot {
            // invariant: the pilot closure is entered only under
            // `plan.clique.is_some()`, so the Option is still populated here.
            plan.clique
                .as_mut()
                .expect("the pilot runs only when the clique exists")
                .apply_tilt(&tilts);
            plan.count_tilt = Some(count_tilt);
        }
        let plan = plan;
        let per_worker: Vec<Vec<(u64, ChunkSums)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let plan = &plan;
                    let streams = &streams;
                    let next_chunk = &next_chunk;
                    scope.spawn(move || {
                        let mut scratch = Scratch {
                            events: Vec::new(),
                            active: Vec::new(),
                            view: Vec::new(),
                        };
                        let mut out: Vec<(u64, ChunkSums)> = Vec::new();
                        loop {
                            let c = next_chunk.fetch_add(1, Ordering::Relaxed);
                            if c >= chunks {
                                break;
                            }
                            let first = c * TAIL_CHUNK;
                            let count = TAIL_CHUNK.min(config.samples - first);
                            let mut sums = ChunkSums::default();
                            for trial in first..first + count {
                                let (y, verdict) = plan.run_trial(trial, streams, &mut scratch);
                                if let Some(v) = verdict {
                                    sums.y += y;
                                    sums.y2 += y * y;
                                    sums.failures += 1;
                                    if v == Verdict::Due {
                                        sums.due += y;
                                    } else {
                                        sums.sdc += y;
                                    }
                                }
                            }
                            out.push((c, sums));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    // invariant: workers never panic; a worker panic is a
                    // bug in the estimator itself, so propagate it.
                    h.join().expect("rare-event worker panicked")
                })
                .collect()
        });
        let wall_seconds = start.elapsed().as_secs_f64();

        // Deterministic fold: gather every worker's chunk partials, order
        // by chunk id, and sum in that fixed order — the floating-point
        // result is bit-identical for any thread count.
        let mut chunks_sorted: Vec<(u64, ChunkSums)> = per_worker.into_iter().flatten().collect();
        chunks_sorted.sort_unstable_by_key(|&(c, _)| c);
        let mut total = ChunkSums::default();
        for (_, s) in &chunks_sorted {
            total.y += s.y;
            total.y2 += s.y2;
            total.due += s.due;
            total.sdc += s.sdc;
            total.failures += s.failures;
        }

        let t = config.samples as f64;
        let p_fail = total.y / t;
        let variance = if config.samples > 1 {
            (((total.y2 - t * p_fail * p_fail) / (t - 1.0)) / t).max(0.0)
        } else {
            0.0
        };

        if xed_telemetry::enabled() {
            metrics::FAULTSIM_TAIL_RUNS.incr();
            metrics::FAULTSIM_TAIL_TRIALS.add(config.samples);
            if mode == TailMode::CliqueForced {
                metrics::FAULTSIM_TAIL_FORCED_PAIRS.add(config.samples);
            } else if k >= 2 {
                // A Chipkill-class scheme that could not be clique-forced
                // (scaling enabled, degenerate rates, or an override).
                metrics::FAULTSIM_TAIL_FALLBACKS.incr();
            }
        }

        TailEstimate {
            scheme,
            mode,
            samples: config.samples,
            min_faults: k,
            conditioning_probability: p_ge_k,
            clique_rho,
            p_fail,
            p_due: total.due / t,
            p_sdc: total.sdc / t,
            failures: total.failures,
            variance,
            wall_seconds,
            threads,
        }
    }

    /// Estimates every scheme in `schemes`, in order.
    pub fn run_all(&self, schemes: &[Scheme]) -> Vec<TailEstimate> {
        schemes.iter().map(|&s| self.run(s)).collect()
    }

    /// The plain-MC delegate (λ too large for the truncated walk, or an
    /// explicit override).
    fn run_plain(&self, scheme: Scheme) -> TailEstimate {
        let config = &self.config;
        let report = MonteCarlo::new(MonteCarloConfig {
            samples: config.samples,
            years: config.years,
            seed: config.seed,
            threads: config.threads,
            params: config.params,
            rates: config.rates.clone(),
            ..MonteCarloConfig::default()
        })
        .run_timed(scheme);
        if xed_telemetry::enabled() {
            metrics::FAULTSIM_TAIL_RUNS.incr();
            metrics::FAULTSIM_TAIL_TRIALS.add(config.samples);
            metrics::FAULTSIM_TAIL_FALLBACKS.incr();
        }
        let r = &report.result;
        let t = config.samples as f64;
        let p = r.lifetime_failure_probability();
        TailEstimate {
            scheme,
            mode: TailMode::PlainMc,
            samples: config.samples,
            min_faults: 0,
            conditioning_probability: 1.0,
            clique_rho: 0.0,
            p_fail: p,
            p_due: r.due as f64 / t,
            p_sdc: r.sdc as f64 / t,
            failures: r.failures(),
            variance: p * (1.0 - p) / t,
            wall_seconds: report.stats.wall_seconds,
            threads: report.stats.threads,
        }
    }

    /// The exact-zero estimate (no fault can arrive, or `P(N ≥ k) = 0`).
    fn zero_estimate(&self, scheme: Scheme, k: u32) -> TailEstimate {
        if xed_telemetry::enabled() {
            metrics::FAULTSIM_TAIL_RUNS.incr();
        }
        TailEstimate {
            scheme,
            mode: TailMode::CountConditioned,
            samples: self.config.samples,
            min_faults: k,
            conditioning_probability: 0.0,
            clique_rho: 0.0,
            p_fail: 0.0,
            p_due: 0.0,
            p_sdc: 0.0,
            failures: 0,
            variance: 0.0,
            wall_seconds: 0.0,
            threads: self.threads(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::{p_fail_single_fault, p_fail_triple_fault};

    fn tail(samples: u64) -> TailSimulator {
        TailSimulator::new(TailConfig {
            samples,
            seed: 7,
            ..TailConfig::default()
        })
    }

    #[test]
    fn min_failing_faults_per_scheme() {
        assert_eq!(min_failing_faults(Scheme::NonEcc), 1);
        assert_eq!(min_failing_faults(Scheme::EccDimm), 1);
        assert_eq!(min_failing_faults(Scheme::Xed), 1);
        assert_eq!(min_failing_faults(Scheme::Chipkill), 2);
        assert_eq!(min_failing_faults(Scheme::ChipkillX4), 2);
        assert_eq!(min_failing_faults(Scheme::XedChipkill), 2);
        assert_eq!(min_failing_faults(Scheme::DoubleChipkill), 3);
    }

    #[test]
    fn deterministic_given_seed() {
        let sim = tail(20_000);
        let a = sim.run(Scheme::XedChipkill);
        let b = sim.run(Scheme::XedChipkill);
        assert_eq!(a.p_fail.to_bits(), b.p_fail.to_bits());
        assert_eq!(a.variance.to_bits(), b.variance.to_bits());
        assert_eq!(a.failures, b.failures);
    }

    #[test]
    fn thread_count_never_changes_estimates() {
        // Same invariant as the plain driver: chunk-ordered folding makes
        // the floating-point sums bit-identical for any thread count.
        let estimates: Vec<TailEstimate> = [1usize, 2, 5]
            .iter()
            .map(|&threads| {
                TailSimulator::new(TailConfig {
                    samples: 30_000,
                    seed: 7,
                    threads,
                    ..TailConfig::default()
                })
                .run(Scheme::XedChipkill)
            })
            .collect();
        for e in &estimates[1..] {
            assert_eq!(e.p_fail.to_bits(), estimates[0].p_fail.to_bits());
            assert_eq!(e.p_due.to_bits(), estimates[0].p_due.to_bits());
            assert_eq!(e.variance.to_bits(), estimates[0].variance.to_bits());
            assert_eq!(e.failures, estimates[0].failures);
        }
    }

    #[test]
    fn count_conditioned_matches_closed_form_on_ecc_dimm() {
        // Every multi-bit fault defeats SECDED on arrival and bit faults
        // are benign, so the lifetime failure probability is exactly
        // P(≥ 1 large fault) — a closed form the conditioned estimator
        // must reproduce within its own confidence interval.
        let est = tail(150_000).run(Scheme::EccDimm);
        assert_eq!(est.mode, TailMode::CountConditioned);
        assert_eq!(est.min_faults, 1);
        let exact = p_fail_single_fault(&FitRates::table_i(), 72, LIFETIME_YEARS);
        assert!(
            (est.p_fail - exact).abs() < 4.0 * est.ci95().max(1e-6),
            "estimate {} vs exact {exact}",
            est.p_fail
        );
    }

    #[test]
    fn clique_forced_agrees_with_count_conditioned() {
        // The two estimators are unbiased for the same quantity; their
        // estimates must agree within joint confidence bounds.
        let forced = tail(150_000).run(Scheme::XedChipkill);
        assert_eq!(forced.mode, TailMode::CliqueForced);
        let conditioned = TailSimulator::new(TailConfig {
            samples: 2_000_000,
            seed: 11,
            force_mode: Some(TailMode::CountConditioned),
            ..TailConfig::default()
        })
        .run(Scheme::XedChipkill);
        assert_eq!(conditioned.mode, TailMode::CountConditioned);
        assert!(forced.failures > 50, "forced failures {}", forced.failures);
        let joint = (forced.variance + conditioned.variance).sqrt();
        assert!(
            (forced.p_fail - conditioned.p_fail).abs() < 5.0 * joint,
            "forced {} vs conditioned {} (joint σ {joint})",
            forced.p_fail,
            conditioned.p_fail
        );
    }

    #[test]
    fn triple_forcing_brackets_double_chipkill_closed_form() {
        // Double-Chipkill's failure probability (~10⁻⁸) is far beyond
        // plain MC at test budgets; the triple-forced estimator resolves
        // it in 100k trials and must land near the first-order analytic
        // triple-fault probability.
        let est = tail(100_000).run(Scheme::DoubleChipkill);
        assert_eq!(est.mode, TailMode::CliqueForced);
        assert_eq!(est.min_faults, 3);
        assert!(est.failures > 20, "failures {}", est.failures);
        let config = Scheme::DoubleChipkill.system_config();
        let exact = p_fail_triple_fault(
            &FitRates::table_i(),
            &config,
            Scheme::DoubleChipkill.domain_chips(),
            config.total_chips() / Scheme::DoubleChipkill.domain_chips(),
            LIFETIME_YEARS,
        );
        assert!(
            est.p_fail > exact / 4.0 && est.p_fail < exact * 4.0,
            "estimate {} vs analytic {exact}",
            est.p_fail
        );
    }

    #[test]
    fn triple_forcing_agrees_with_count_conditioned() {
        // Cross-check the ordered triple proposal against the
        // proposal-free count-conditioned estimator on Double-Chipkill;
        // both are unbiased for the same tail probability.
        let forced = tail(200_000).run(Scheme::DoubleChipkill);
        assert_eq!(forced.mode, TailMode::CliqueForced);
        let conditioned = TailSimulator::new(TailConfig {
            samples: 3_000_000,
            seed: 23,
            force_mode: Some(TailMode::CountConditioned),
            ..TailConfig::default()
        })
        .run(Scheme::DoubleChipkill);
        assert_eq!(conditioned.mode, TailMode::CountConditioned);
        assert!(forced.failures > 30, "forced failures {}", forced.failures);
        let joint = (forced.variance + conditioned.variance).sqrt();
        assert!(
            (forced.p_fail - conditioned.p_fail).abs() < 5.0 * joint,
            "forced {} vs conditioned {} (joint σ {joint})",
            forced.p_fail,
            conditioned.p_fail
        );
    }

    #[test]
    fn clique_forcing_beats_plain_mc_variance_by_orders_of_magnitude() {
        // The acceptance criterion's engine-level form: effective plain-MC
        // trials per conditioned trial must exceed 100× (the bench
        // measures the wall-clock-normalized version).
        let est = tail(50_000).run(Scheme::XedChipkill);
        assert!(est.p_fail > 0.0);
        let gain = est.effective_trials() / est.samples as f64;
        assert!(gain > 100.0, "effective-trial gain {gain}");
    }

    #[test]
    fn scaling_faults_disable_clique_forcing() {
        use crate::scaling::ScalingFaults;
        let sim = TailSimulator::new(TailConfig {
            samples: 5_000,
            params: ModelParams {
                scaling: ScalingFaults::with_rate(1e-4),
                ..ModelParams::default()
            },
            ..TailConfig::default()
        });
        let est = sim.run(Scheme::XedChipkill);
        assert_eq!(est.mode, TailMode::CountConditioned);
        assert_eq!(est.min_faults, 2);
    }

    #[test]
    fn forced_mode_overrides_are_safe() {
        // Forcing clique mode on a k = 1 scheme falls back to count
        // conditioning instead of producing a biased estimator.
        let sim = TailSimulator::new(TailConfig {
            samples: 5_000,
            force_mode: Some(TailMode::CliqueForced),
            ..TailConfig::default()
        });
        assert_eq!(sim.run(Scheme::EccDimm).mode, TailMode::CountConditioned);
        let plain = TailSimulator::new(TailConfig {
            samples: 5_000,
            force_mode: Some(TailMode::PlainMc),
            ..TailConfig::default()
        });
        assert_eq!(plain.run(Scheme::EccDimm).mode, TailMode::PlainMc);
    }

    #[test]
    fn large_lambda_falls_back_to_plain_mc() {
        use crate::fit::ModeRate;
        let rates = FitRates::custom(vec![ModeRate {
            extent: FaultExtent::Chip,
            transient_fit: 8_000.0,
            permanent_fit: 0.0,
        }]);
        let sampler_lambda = 8_000.0e-9 * LIFETIME_YEARS * HOURS_PER_YEAR * 144.0;
        assert!(sampler_lambda > 30.0, "test premise: λ {sampler_lambda}");
        let sim = TailSimulator::new(TailConfig {
            samples: 2_000,
            rates,
            ..TailConfig::default()
        });
        let est = sim.run(Scheme::DoubleChipkill);
        assert_eq!(est.mode, TailMode::PlainMc);
        assert_eq!(est.conditioning_probability, 1.0);
    }

    #[test]
    fn zero_rates_give_exact_zero() {
        let sim = TailSimulator::new(TailConfig {
            samples: 1_000,
            rates: FitRates::custom(vec![]),
            ..TailConfig::default()
        });
        let est = sim.run(Scheme::XedChipkill);
        assert_eq!(est.p_fail, 0.0);
        assert_eq!(est.failures, 0);
        assert_eq!(est.variance, 0.0);
        assert_eq!(est.conditioning_probability, 0.0);
    }

    #[test]
    fn coarse_intersection_model_supports_clique_forcing() {
        // With require_line_intersection off the clique condition drops
        // the shared-line constraint but the estimator stays valid (and
        // more pessimistic, like the plain driver).
        let coarse = TailSimulator::new(TailConfig {
            samples: 60_000,
            seed: 7,
            params: ModelParams {
                require_line_intersection: false,
                ..ModelParams::default()
            },
            ..TailConfig::default()
        })
        .run(Scheme::XedChipkill);
        assert_eq!(coarse.mode, TailMode::CliqueForced);
        let strict = tail(60_000).run(Scheme::XedChipkill);
        assert!(
            coarse.p_fail > strict.p_fail,
            "coarse {} vs strict {}",
            coarse.p_fail,
            strict.p_fail
        );
    }

    #[test]
    fn estimate_accessors_are_consistent() {
        let est = tail(40_000).run(Scheme::XedChipkill);
        assert!((est.ci99() / est.ci95() - 2.576 / 1.96).abs() < 1e-12);
        assert!((est.relative_ci95() - est.ci95() / est.p_fail).abs() < 1e-15);
        assert!((est.p_due + est.p_sdc - est.p_fail).abs() < 1e-18);
        assert!(est.clique_rho > 0.0);
        assert!(est.conditioning_probability > 0.0 && est.conditioning_probability < 1.0);
    }
}
