//! Vendored, deterministic subset of the `rand` 0.8 API.
//!
//! The workspace builds fully offline; this crate replaces the crates.io
//! `rand` with the small slice of its API the simulators use:
//!
//! * [`rngs::StdRng`] — a xoshiro256++ generator;
//! * [`SeedableRng::seed_from_u64`] — seed-based construction;
//! * [`rngs::Streams`] — counter-based derivation of per-trial stream
//!   generators from one seed (a SplitMix64 key schedule; this is the
//!   workspace extension that makes Monte-Carlo results independent of
//!   thread count);
//! * [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`].
//!
//! Two deliberate omissions enforce the repo's Monte-Carlo determinism
//! policy (see `cargo run -p xtask -- lint`, rule `XL005`): there is no
//! `thread_rng()` and no `from_entropy()`. Every generator in the
//! workspace must flow from an explicit `u64` seed, so any simulation
//! result is reproducible from its logged seed.
//!
//! The streams produced are *not* bit-compatible with crates.io `rand`'s
//! `StdRng` (ChaCha12); all in-tree expectations are statistical or pinned
//! against this implementation.

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from an RNG (the `Standard` distribution of
/// crates.io `rand`, restricted to what the workspace uses).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, bound)` via Lemire's nearly-divisionless
/// multiply-shift rejection (unbiased).
///
/// The common path is a single widening multiply; the `% bound` needed to
/// compute the exact rejection threshold only runs when the low product
/// word falls below `bound` (probability `bound / 2⁶⁴`), so non-power-of-two
/// bounds cost no division in the Monte-Carlo hot loop.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let mut m = u128::from(rng.next_u64()) * u128::from(bound);
    let mut lo = m as u64;
    if lo < bound {
        // `2⁶⁴ mod bound` values of each residue class are over-represented
        // by the multiply-shift map; reject exactly those.
        let threshold = bound.wrapping_neg() % bound;
        while lo < threshold {
            m = u128::from(rng.next_u64()) * u128::from(bound);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

/// Types with a uniform range sampler (the `SampleUniform` of crates.io
/// `rand`). A single blanket impl over `Range`/`RangeInclusive` keeps type
/// inference identical to the real crate (`gen_range(0..6)` as an index
/// infers `usize`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                // Two's-complement wrapping makes the span math valid for
                // signed types as well.
                let span = (hi as u64).wrapping_sub(lo as u64);
                if inclusive {
                    let span = span.wrapping_add(1);
                    if span == 0 {
                        // Full-width range: every value is admissible.
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(uniform_below(rng, span) as $t)
                } else {
                    lo.wrapping_add(uniform_below(rng, span) as $t)
                }
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self {
        let u: f64 = Standard::sample(rng);
        let v = lo + (hi - lo) * u;
        // Guard against round-up to the excluded endpoint.
        if !inclusive && v >= hi {
            lo
        } else {
            v
        }
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    // An empty range is a caller bug; the check is debug-only so
    // simulation hot loops stay panic-free in release.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        debug_assert!(self.start < self.end, "gen_range: empty range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    // Same debug-only precondition as `Range` above.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        debug_assert!(lo <= hi, "gen_range: empty range");
        T::sample_uniform(lo, hi, true, rng)
    }
}

/// The user-facing sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        let u: f64 = Standard::sample(self);
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it with
    /// SplitMix64 so similar seeds give uncorrelated streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64 (Blackman & Vigna). Fast, 256-bit state, passes BigCrush.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        #[inline]
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    /// A family of counter-based [`StdRng`] streams derived from one seed.
    ///
    /// `Streams::new(seed).stream(i)` is a pure function of `(seed, i)`:
    /// the seed is scrambled once with SplitMix64, the stream index is
    /// folded in as a Weyl increment (`i · φ`, the SplitMix64 constant),
    /// and the result is expanded into xoshiro256++ state exactly like
    /// [`SeedableRng::seed_from_u64`]. Adjacent indices therefore yield
    /// statistically independent generators, and *which* stream a consumer
    /// draws is decoupled from *who* draws it — the property the
    /// Monte-Carlo driver relies on to make results independent of thread
    /// count and work-assignment order.
    ///
    /// Construction of one stream costs five SplitMix64 rounds (a handful
    /// of multiplies), cheap enough to build a fresh generator per
    /// Monte-Carlo trial.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Streams {
        base: u64,
    }

    impl Streams {
        /// Creates the stream family rooted at `seed`.
        pub fn new(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                base: splitmix64(&mut sm),
            }
        }

        /// The generator for stream `index`.
        #[inline]
        pub fn stream(&self, index: u64) -> StdRng {
            let mut sm = self
                .base
                .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }

        /// Stream `index`'s *headline* value: one uniform 64-bit draw at a
        /// single SplitMix64 round, without materializing a generator.
        ///
        /// Consumers that can usually decide everything from one uniform —
        /// the Monte-Carlo zero-fault test is the motivating case — call
        /// this first and only pay for [`Self::split_rest`] when they need
        /// more randomness. `(split_first(i), split_rest(i))` together form
        /// one logical per-index stream; it is a *different* stream than
        /// [`Self::stream`]`(i)` (the headline draw is SplitMix64 output 1,
        /// and the tail generator is seeded from outputs 2–5).
        #[inline]
        pub fn split_first(&self, index: u64) -> u64 {
            let mut sm = self
                .base
                .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            splitmix64(&mut sm)
        }

        /// Headline draws ([`Self::split_first`]) for the 64 consecutive
        /// streams `first .. first + 64`, one per output lane.
        ///
        /// Bit-identical to 64 individual `split_first` calls: the
        /// per-stream SplitMix64 key is `base + index·φ`, which advances
        /// by a single Weyl add (`key += φ`) between adjacent indices, so
        /// the block form hoists the index multiply out of the lane loop
        /// and leaves a straight-line add+mix per lane — the shape the
        /// bit-sliced Monte-Carlo kernel wants for classifying a 64-trial
        /// block.
        #[inline]
        pub fn split_first_block(&self, first: u64, out: &mut [u64; 64]) {
            let mut key = self
                .base
                .wrapping_add(first.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            for slot in out.iter_mut() {
                let mut sm = key;
                *slot = splitmix64(&mut sm);
                key = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
            }
        }

        /// The generator carrying stream `index`'s draws *after* its
        /// [`Self::split_first`] headline value.
        #[inline]
        pub fn split_rest(&self, index: u64) -> StdRng {
            let mut sm = self
                .base
                .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let _first = splitmix64(&mut sm);
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            let v = r.gen_range(0..6usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
        for _ in 0..1_000 {
            let v = r.gen_range(5..=7u8);
            assert!((5..=7).contains(&v));
            let f = r.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        let p = hits as f64 / 10_000.0;
        assert!((p - 0.25).abs() < 0.02, "p {p}");
        let mut r2 = StdRng::seed_from_u64(4);
        assert!((0..100).all(|_| !r2.gen_bool(0.0)));
        let mut r3 = StdRng::seed_from_u64(5);
        assert!((0..100).all(|_| r3.gen_bool(1.0)));
    }

    #[test]
    fn works_through_unsized_refs() {
        // Mirrors the `R: Rng + ?Sized` bounds used across the workspace.
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0..100u64)
        }
        let mut r = StdRng::seed_from_u64(6);
        assert!(draw(&mut r) < 100);
    }

    #[test]
    fn streams_are_deterministic_and_distinct() {
        use super::rngs::Streams;
        let s = Streams::new(42);
        let mut a = s.stream(7);
        let mut b = Streams::new(42).stream(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        // Adjacent indices and adjacent seeds both give different streams.
        assert_ne!(s.stream(7).gen::<u64>(), s.stream(8).gen::<u64>());
        assert_ne!(
            Streams::new(42).stream(0).gen::<u64>(),
            Streams::new(43).stream(0).gen::<u64>()
        );
    }

    #[test]
    fn split_first_block_matches_individual_split_first() {
        // The bit-sliced Monte-Carlo kernel relies on the block form being
        // draw-for-draw identical to the scalar headline draws, including
        // across wrapping key arithmetic.
        use super::rngs::Streams;
        let s = Streams::new(0xDEAD_BEEF);
        for &first in &[0u64, 1, 63, 64, 4096, u64::MAX - 70] {
            let mut block = [0u64; 64];
            s.split_first_block(first, &mut block);
            for (lane, &got) in block.iter().enumerate() {
                let want = s.split_first(first.wrapping_add(lane as u64));
                assert_eq!(got, want, "first {first}, lane {lane}");
            }
        }
    }

    #[test]
    fn streams_statistically_uniform_across_indices() {
        // First draw of consecutive streams must itself look uniform —
        // the Monte-Carlo fast path consumes exactly one draw per trial.
        use super::rngs::Streams;
        let s = Streams::new(9);
        let n = 40_000u64;
        let mean = (0..n)
            .map(|i| {
                let x: f64 = s.stream(i).gen();
                x
            })
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn rejection_sampling_unbiased_small_range() {
        let mut r = StdRng::seed_from_u64(7);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[r.gen_range(0..3usize)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 / 10_000.0 - 1.0).abs() < 0.05, "{counts:?}");
        }
    }
}
