#!/usr/bin/env bash
# Monte-Carlo engine benchmark trajectory (DESIGN.md §9).
#
# Builds the workspace in release mode and runs the `mc_throughput`
# harness, which measures per-scheme samples/sec, a thread-scaling curve
# and a whole-suite run_all sweep, then writes BENCH_faultsim.json at the
# repo root. Pass extra arguments through, e.g.:
#
#   scripts/bench.sh --samples 4000000 --repeats 9
#   scripts/bench.sh --smoke            # sub-second sanity pass
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -q -p xed-bench --bin mc_throughput

# --baseline: throughput of the engine before the counter-based-stream
# rewrite (static partitioning, per-trial allocation), measured on this
# container at commit f846d95 with EccDimm, 1M samples, seed 2016. The
# rewrite's acceptance bar is >=3x this number.
exec ./target/release/mc_throughput --baseline 23780432 "$@"
