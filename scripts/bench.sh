#!/usr/bin/env bash
# Benchmark trajectory (DESIGN.md §9, §10).
#
# Builds the workspace in release mode and runs both harnesses:
#
#   mc_throughput   Monte-Carlo engine — per-scheme samples/sec, thread
#                   scaling, whole-suite run_all sweep; writes
#                   BENCH_faultsim.json at the repo root.
#   mc_tail         rare-event engine — importance-sampled tail CIs vs
#                   plain MC at fixed wall-clock; merges a "tail"
#                   section into BENCH_faultsim.json (must run after
#                   mc_throughput) and gates on the >=10x CI-width bar.
#   ecc_throughput  ECC kernel decode path — words/sec for the
#                   word-parallel Hamming/CRC8/RS kernels vs the
#                   bit-serial `reference` module; writes BENCH_ecc.json.
#
# Extra arguments are passed through to both, e.g.:
#
#   scripts/bench.sh --samples 4000000 --repeats 9
#   scripts/bench.sh --smoke            # sub-second sanity pass
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -q -p xed-bench --bin mc_throughput --bin mc_tail --bin ecc_throughput --bin xedd_load

# --baseline: throughput of the engine before the counter-based-stream
# rewrite (static partitioning, per-trial allocation), measured on this
# container at commit f846d95 with EccDimm, 1M samples, seed 2016. The
# rewrite's acceptance bar is >=3x this number.
./target/release/mc_throughput --baseline 23780432 "$@"

# Runs after mc_throughput so its "tail" section merges into the report
# that run just wrote. --check gates the PR acceptance bar: >=10x
# fixed-wall-clock CI-width improvement on XedChipkill and
# DoubleChipkill.
./target/release/mc_tail --check "$@"

# ecc_throughput measures its bit-serial baseline live (the `reference`
# module ships in the same binary), so no frozen --baseline is needed.
./target/release/ecc_throughput "$@"

# xedd_load drives the reliability daemon's request path over real TCP:
# cold misses, the memoized O(1) repeat path, and coalesced concurrent
# identical requests; writes BENCH_xedd.json. --check gates the PR
# acceptance bar (warm-cache p50 >=100x below cold; auto-ignored under
# --smoke, where the ratio is noise).
./target/release/xedd_load --check "$@"

# Non-gating: bound the tracing overhead (DESIGN.md §16.5). Same
# workload with span recording live (--trace installs a root span, so
# every work-stealing chunk records a scheduler_chunk span) vs. the
# default; the EccDimm headline must stay within 2%. Contention on a
# loaded box can exceed that, so report, don't gate.
(
    off=$(./target/release/mc_throughput --out target/BENCH_faultsim.trace-off.json "$@" |
        sed -n 's/.*headline (EccDimm): \([0-9]*\) samples\/sec.*/\1/p')
    on=$(./target/release/mc_throughput --trace --out target/BENCH_faultsim.trace-on.json "$@" |
        sed -n 's/.*headline (EccDimm): \([0-9]*\) samples\/sec.*/\1/p')
    awk -v on="$on" -v off="$off" 'BEGIN {
        pct = (off - on) * 100.0 / off;
        printf "tracing on: %d samples/sec, off: %d samples/sec, overhead: %.1f%%\n",
            on, off, pct;
        if (pct > 2.0) printf "warning: tracing overhead above the 2%% budget (non-gating)\n";
    }'
) || printf 'warning: tracing overhead check failed (non-gating)\n'

# Non-gating: the full verification matrix (every same-domain chip pair in
# the exhaustive oracle, 4M-sample analytic gate). ci.sh gates on --quick;
# the full sweep is informational here so a loaded box can't fail a bench
# run.
cargo run -q -p xtask -- verify-matrix --full ||
    printf 'warning: verify-matrix --full failed (non-gating here; run it locally)\n'

# Non-gating: run the ECC kernels under miri to catch UB the test suite
# can't (the workspace forbids unsafe, so this guards std/core misuse
# and future regressions). Skips cleanly where the miri component is
# not installed — CI images bake only the stable toolchain.
if cargo miri --version >/dev/null 2>&1; then
    cargo miri test -p xed-ecc ||
        printf 'warning: cargo miri test -p xed-ecc failed (non-gating)\n'
else
    printf 'miri not installed; skipping the xed-ecc miri lane\n'
fi
