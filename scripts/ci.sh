#!/usr/bin/env bash
# Tier-1 gate for the XED reproduction workspace (see DESIGN.md §8).
#
# Runs entirely offline: the workspace has no crates.io dependencies and
# Cargo.lock is committed. Any step failing fails the gate.
set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n==> %s\n' "$*"; }

step "cargo fmt --check"
cargo fmt --check

step "cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

step "xed-lint (static analysis + golden constants)"
cargo run -q -p xtask -- lint

# Gating: call-graph proofs over the named hot paths (DESIGN.md §13) —
# transitive panic/alloc freedom, atomic-ordering audit, registry
# closure. Budget: well under 2 s including the cargo wrapper.
step "xed-analyze (call-graph hot-path proofs)"
cargo run -q -p xtask -- analyze

# --workspace: the root manifest is both package and workspace, and a
# bare build would compile only the `xed` facade — the smoke steps below
# need the xed-bench binaries. XEDD_GIT_HASH bakes the commit into the
# daemon's /healthz build info (option_env!; "unknown" when absent).
step "cargo build --release --workspace"
XEDD_GIT_HASH="$(git rev-parse --short=12 HEAD 2>/dev/null || echo unknown)" \
    cargo build --release --workspace

step "cargo test -q"
cargo test -q --workspace

# Gating: the bit-sliced trial kernel must stay bit-identical to the
# scalar path under *release* codegen too — the debug `cargo test`
# above proves the unoptimized build, this re-runs the equivalence and
# thread-invariance sweeps at the optimization level the benchmarks
# and figure binaries actually ship (DESIGN.md §14.1).
step "bit-sliced vs scalar kernel equivalence (release)"
cargo test -q --release -p xed-faultsim --lib \
    bit_sliced_kernel_is_bit_identical_to_scalar

# Gating: the xed-testkit cross-validation matrix (DESIGN.md §12) —
# exhaustive small-geometry oracle, analytic gate, metamorphic laws,
# golden xed-trace-v1 conformance, de-flake audit, telemetry-diff pin.
step "verify-matrix --quick"
cargo run -q -p xtask -- verify-matrix --quick

# Gating: the daemon's end-to-end smoke (DESIGN.md §15, §16) — boots on
# an ephemeral port, then exercises cold miss / warm hit byte-equality,
# canonical-key spelling invariance, streamed-partials consistency with
# batch, 400 rejection of unknown params, the /metrics registry (JSON
# and Prometheus exposition), and the tracing path, all in-process over
# real TCP. The grep re-asserts the trace case ran: a real traced
# request must export admission/cache/coalesce/evaluate/scheduler spans
# through /debug/flight.
step "xedd --selftest (incl. trace-propagation gate)"
./target/release/xedd --selftest | tee target/xedd.selftest.log
grep -q "traced request exports" target/xedd.selftest.log

# Non-gating: exercise the benchmark harness end to end (engine, thread
# sweep, JSON writer) at smoke scale. Throughput numbers from a loaded CI
# box are noise, so a slow run must not fail the gate — only a crash or a
# determinism assertion inside the harness would.
step "mc_throughput --smoke (non-gating)"
./target/release/mc_throughput --smoke --out target/BENCH_faultsim.smoke.json ||
    printf 'warning: mc_throughput smoke failed (non-gating)\n'

# Non-gating: the rare-event tail lane at smoke scale — exercises the
# clique-forced/count-conditioned estimators, the plain-MC comparison,
# and the "tail" JSON merge into the report mc_throughput just wrote.
# The >=10x CI-width gate only runs in scripts/bench.sh at full scale;
# smoke-scale ratios are noise.
step "mc_tail --smoke (non-gating)"
./target/release/mc_tail --smoke --out target/BENCH_faultsim.smoke.json ||
    printf 'warning: mc_tail smoke failed (non-gating)\n'

step "ecc_throughput --smoke (non-gating)"
./target/release/ecc_throughput --smoke --out target/BENCH_ecc.smoke.json ||
    printf 'warning: ecc_throughput smoke failed (non-gating)\n'

# Non-gating: the telemetry report pipeline end to end. xedstat asserts
# legacy-stats/registry equivalence internally, so a divergence crashes it.
step "xedstat --smoke (non-gating)"
./target/release/xedstat --smoke --telemetry target/xedstat.smoke.json ||
    printf 'warning: xedstat smoke failed (non-gating)\n'

# Non-gating: bound the telemetry overhead. Same smoke workload with the
# counters live vs. gated off; on a quiet box the two agree within noise
# (DESIGN.md §11.3 budgets < 3%). CI-box contention can exceed that, so
# report, don't gate.
step "telemetry overhead check (non-gating)"
(
    on=$(./target/release/mc_throughput --smoke --out target/BENCH_faultsim.tel-on.json |
        sed -n 's/.*headline (EccDimm): \([0-9]*\) samples\/sec.*/\1/p')
    off=$(./target/release/mc_throughput --smoke --no-telemetry \
        --out target/BENCH_faultsim.tel-off.json |
        sed -n 's/.*headline (EccDimm): \([0-9]*\) samples\/sec.*/\1/p')
    awk -v on="$on" -v off="$off" 'BEGIN {
        pct = (off - on) * 100.0 / off;
        printf "telemetry on: %d samples/sec, off: %d samples/sec, overhead: %.1f%%\n",
            on, off, pct;
        if (pct > 3.0) printf "warning: telemetry overhead above the 3%% budget (non-gating)\n";
    }'
) || printf 'warning: telemetry overhead check failed (non-gating)\n'

printf '\nci.sh: all tier-1 checks passed\n'
